//! Performance portability in one program (the paper's headline claim):
//! the same SDFG source runs on the CPU executor, the GPU model, and the
//! FPGA model — "without modifying the original scientific code".
//!
//! ```text
//! cargo run --release --example portability
//! ```

use dace::fpga_sim::{run_fpga, vcu1525, FpgaMode};
use dace::gpu_sim::{p100, run_gpu};
use dace::transforms::{apply_first, FpgaTransform, GpuTransform, Params};
use dace::workloads::kernels;
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let n = 128usize;
    // One source: the Jacobi stencil (§6.1), never edited again.
    let w = kernels::jacobi2d(n, 16);
    println!("kernel: {} (N={n}, T=16)\n", w.name);

    // CPU: the optimizing executor.
    let t0 = Instant::now();
    let (cpu_out, stats, _) = w.run_exec().expect("cpu run");
    println!(
        "CPU     : {:>9.2} ms  ({} points, {} compiled)",
        t0.elapsed().as_secs_f64() * 1e3,
        stats.tasklet_points,
        stats.native_points + stats.jit_points
    );

    // GPU: GPUTransform + the P100 model.
    let mut gpu_sdfg = w.sdfg.clone();
    apply_first(&mut gpu_sdfg, &GpuTransform, &Params::new()).expect("gpu transform");
    let syms: Vec<(&str, i64)> = w.symbols.iter().map(|(s, v)| (s.as_str(), *v)).collect();
    let mut gpu_arrays: HashMap<String, Vec<f64>> = w.arrays.clone();
    let rep = run_gpu(&gpu_sdfg, &p100(), &syms, &mut gpu_arrays).expect("gpu model");
    assert_eq!(gpu_arrays["A"], cpu_out["A"], "GPU results match CPU");
    println!(
        "GPU P100: {:>9.2} ms modeled  (kernels {}, copies {:.2} ms, {:.1}% peak)",
        rep.time_s * 1e3,
        rep.kernels,
        rep.copy_time_s * 1e3,
        100.0 * rep.peak_fraction(&p100())
    );

    // FPGA: FPGATransform + the VCU1525 model, pipelined vs naive HLS.
    let mut fpga_sdfg = w.sdfg.clone();
    apply_first(&mut fpga_sdfg, &FpgaTransform, &Params::new()).expect("fpga transform");
    let mut fa = w.arrays.clone();
    let pipe =
        run_fpga(&fpga_sdfg, &vcu1525(), FpgaMode::Pipelined, &syms, &mut fa).expect("fpga model");
    assert_eq!(fa["A"], cpu_out["A"], "FPGA results match CPU");
    let naive = run_fpga(
        &fpga_sdfg,
        &vcu1525(),
        FpgaMode::NaiveHls,
        &syms,
        &mut w.arrays.clone(),
    )
    .expect("fpga model");
    println!(
        "FPGA    : {:>9.2} ms modeled pipelined vs {:.2} ms naive HLS ({:.0}× from dataflow)",
        pipe.time_s * 1e3,
        naive.time_s * 1e3,
        naive.time_s / pipe.time_s
    );
    println!("\nsame source, three targets — results bit-identical.");
}
