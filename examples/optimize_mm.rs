//! The §6.2 case study as a runnable example: start from the naive
//! map-reduce matrix multiplication (Fig. 9b) and apply the Fig. 15
//! transformation chain step by step, measuring after each one.
//!
//! ```text
//! cargo run --release --example optimize_mm [n]
//! ```

use dace::workloads::{mm_chain, tuned, workload::pseudo_random};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(128);
    let flops = 2.0 * (n as f64).powi(3);
    println!("GEMM {n}×{n}×{n} — transformation chain (paper Fig. 15)\n");
    println!("{:<20} {:>10} {:>10}", "variant", "time[ms]", "GFLOP/s");
    for step in 0..mm_chain::num_steps() {
        let w = mm_chain::build_step(step, n);
        let t0 = Instant::now();
        let (out, _, _) = w.run_exec().expect("runs");
        let dt = t0.elapsed().as_secs_f64();
        // Sanity: C is nonzero.
        assert!(out["C"].iter().any(|&v| v != 0.0));
        let name = mm_chain::chain_steps()[step].0;
        println!("{:<20} {:>10.2} {:>10.3}", name, dt * 1e3, flops / dt / 1e9);
    }
    // Baselines.
    let a = pseudo_random(n * n, 1);
    let b = pseudo_random(n * n, 2);
    for (name, f) in [
        (
            "naive (gcc proxy)",
            tuned::gemm_naive as fn(&[f64], &[f64], &mut [f64], usize, usize, usize),
        ),
        (
            "tuned (MKL proxy)",
            tuned::gemm_tuned as fn(&[f64], &[f64], &mut [f64], usize, usize, usize),
        ),
    ] {
        let mut c = vec![0.0; n * n];
        let t0 = Instant::now();
        f(&a, &b, &mut c, n, n, n);
        let dt = t0.elapsed().as_secs_f64();
        println!("{:<20} {:>10.2} {:>10.3}", name, dt * 1e3, flops / dt / 1e9);
    }
}
