//! Quickstart: write a data-centric program, look at its SDFG, transform
//! it, and run it — the full §2 workflow on one page.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dace::core::DType;
use dace::exec::Executor;
use dace::frontend::parse_program;
use dace::interp::Interpreter;
use dace::transforms::{apply_first, Chain, MapTiling, Params};

fn main() {
    // 1. The domain scientist writes restricted Python (paper §2.1).
    let src = r#"
def saxpy(X: dace.float64[N], Y: dace.float64[N]):
    for i in dace.map[0:N]:
        Y[i] = 2.5 * X[i] + Y[i]
"#;
    let mut sdfg = parse_program(src).expect("program parses");
    println!("== SDFG for `saxpy` ==");
    println!("{}", dace::core::dot::to_dot(&sdfg));

    // 2. The performance engineer transforms the dataflow (§4).
    let params = Params::new().with("tile_sizes", 256i64);
    apply_first(&mut sdfg, &MapTiling, &params).expect("tiling applies");
    println!("== After MapTiling (map dimensions doubled) ==");
    let chain = Chain::new().then("Vectorization", &[("width", "4")]);
    chain.apply(&mut sdfg).expect("vectorization applies");
    println!("{}", dace::codegen::generate_cpu(&sdfg));

    // 3. Run it — reference interpreter and optimizing executor agree.
    let n = 1 << 16;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let y: Vec<f64> = vec![1.0; n];

    let mut interp = Interpreter::new(&sdfg);
    interp.set_symbol("N", n as i64);
    interp.set_array("X", x.clone());
    interp.set_array("Y", y.clone());
    interp.run().expect("interpreter runs");

    let mut exec = Executor::new(&sdfg);
    exec.set_symbol("N", n as i64);
    exec.set_array("X", x);
    exec.set_array("Y", y);
    let stats = exec.run().expect("executor runs");

    assert_eq!(interp.array("Y"), exec.array("Y"), "engines agree");
    println!(
        "ran {} map points ({} through compiled tiers); Y[7] = {}",
        stats.tasklet_points,
        stats.native_points + stats.jit_points,
        exec.array("Y")[7]
    );
    let _ = DType::F64;
}
