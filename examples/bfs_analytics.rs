//! Graph analytics on SDFGs: the §6.3 breadth-first search on the paper's
//! five dataset regimes (Appendix E), base and transformed, against the
//! tuned native baseline.
//!
//! ```text
//! cargo run --release --example bfs_analytics [scale]
//! ```

use dace::workloads::{bfs, graphs};
use std::time::Instant;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let base = bfs::build_bfs();
    let opt = bfs::build_bfs_optimized(64);
    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>11} {:>11}  result",
        "graph", "nodes", "edges", "sdfg[ms]", "opt[ms]", "native[ms]"
    );
    for (name, g) in graphs::paper_datasets(scale) {
        let st = g.stats();
        let t0 = Instant::now();
        let d_base = bfs::run_bfs(&base, &g, 0);
        let t_base = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let d_opt = bfs::run_bfs(&opt, &g, 0);
        let t_opt = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let d_ref = bfs::bfs_baseline(&g, 0);
        let t_ref = t0.elapsed().as_secs_f64();
        let ok = d_base == d_ref && d_opt == d_ref;
        let reached = d_ref.iter().filter(|&&d| d < bfs::UNREACHED).count();
        println!(
            "{:<10} {:>9} {:>10} {:>11.2} {:>11.2} {:>11.2}  {} ({} reached)",
            name,
            st.nodes,
            st.edges,
            t_base * 1e3,
            t_opt * 1e3,
            t_ref * 1e3,
            if ok { "OK" } else { "MISMATCH" },
            reached
        );
        assert!(ok, "{name}: depths disagree");
    }
}
