//! Properties of the VF2-style subgraph matcher.
//!
//! 1. *Soundness*: every returned match is a monomorphism — node labels
//!    are compatible and each pattern edge has a host edge between the
//!    mapped endpoints, counted with multiplicity (this is a multigraph).
//! 2. *Completeness on planted patterns*: if the pattern is embedded into
//!    a larger host verbatim (plus arbitrary noise nodes and edges), the
//!    planted embedding is among the returned matches.
//! 3. *Induced mode*: with `induced: true`, host edges between matched
//!    node pairs are exactly covered by pattern edges.
//! 4. *Determinism*: the matcher returns the same matches in the same
//!    order when run twice.

use proptest::prelude::*;
use sdfg_graph::vf2::{find_subgraph_matches, Match, MatchOptions};
use sdfg_graph::{MultiGraph, NodeId};
use std::collections::HashMap;

/// A generated directed multigraph: node labels plus labeled edges given
/// as (src_index, dst_index, label).
#[derive(Debug, Clone)]
struct RawGraph {
    labels: Vec<u8>,
    edges: Vec<(usize, usize, u8)>,
}

fn raw_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = RawGraph> {
    (1..=max_nodes).prop_flat_map(move |n| {
        (
            proptest::collection::vec(0u8..4, n),
            proptest::collection::vec((0..n, 0..n, 0u8..3), 0..=max_edges),
        )
            .prop_map(|(labels, edges)| RawGraph { labels, edges })
    })
}

fn build(raw: &RawGraph) -> (MultiGraph<u8, u8>, Vec<NodeId>) {
    let mut g: MultiGraph<u8, u8> = MultiGraph::new();
    let ids: Vec<NodeId> = raw.labels.iter().map(|&l| g.add_node(l)).collect();
    for &(s, d, l) in &raw.edges {
        g.add_edge(ids[s], ids[d], l);
    }
    (g, ids)
}

/// Counts edges with label `l` from `s` to `d`.
fn edge_count(g: &MultiGraph<u8, u8>, s: NodeId, d: NodeId, l: u8) -> usize {
    g.out_edges(s)
        .filter(|&e| g.edge_dst(e) == d && *g.edge(e) == l)
        .count()
}

/// Checks that `m` maps `pattern` into `host` as a monomorphism.
fn is_monomorphism(pattern: &MultiGraph<u8, u8>, host: &MultiGraph<u8, u8>, m: &Match) -> bool {
    // Injective on nodes, labels compatible.
    let mut seen = std::collections::HashSet::new();
    for p in pattern.node_ids() {
        let Some(&h) = m.get(&p) else { return false };
        if !seen.insert(h) || pattern.node(p) != host.node(h) {
            return false;
        }
    }
    // Each pattern edge needs a distinct host edge: multiplicity per
    // (src, dst, label) must not exceed the host's.
    let mut need: HashMap<(NodeId, NodeId, u8), usize> = HashMap::new();
    for e in pattern.edge_ids() {
        let (s, d) = pattern.edge_endpoints(e);
        *need.entry((m[&s], m[&d], *pattern.edge(e))).or_default() += 1;
    }
    need.iter()
        .all(|(&(s, d, l), &k)| edge_count(host, s, d, l) >= k)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Soundness + determinism on arbitrary pattern/host pairs.
    #[test]
    fn matches_are_monomorphisms(
        p in raw_graph(4, 5),
        h in raw_graph(8, 16),
    ) {
        let (pg, _) = build(&p);
        let (hg, _) = build(&h);
        let opts = MatchOptions { limit: 200, ..MatchOptions::default() };
        let nm = |_: NodeId, pl: &u8, _: NodeId, hl: &u8| pl == hl;
        let em = |pl: &u8, hl: &u8| pl == hl;
        let found = find_subgraph_matches(&pg, &hg, &nm, &em, opts);
        for m in &found {
            prop_assert!(is_monomorphism(&pg, &hg, m));
        }
        // Determinism.
        let again = find_subgraph_matches(&pg, &hg, &nm, &em, opts);
        prop_assert_eq!(found.len(), again.len());
        for (a, b) in found.iter().zip(&again) {
            prop_assert_eq!(a, b);
        }
    }

    /// Completeness: a pattern planted verbatim inside a noisy host is
    /// found, and the planted embedding itself is among the matches.
    #[test]
    fn planted_pattern_is_found(
        p in raw_graph(4, 4),
        noise in raw_graph(5, 8),
        cross in proptest::collection::vec((0usize..4, 0usize..5, 0u8..3), 0..6),
    ) {
        let (pg, _) = build(&p);
        // Host = copy of pattern + noise nodes/edges + cross edges from
        // pattern copies to noise nodes (extra edges are fine for
        // monomorphism semantics).
        let mut hg: MultiGraph<u8, u8> = MultiGraph::new();
        let planted: Vec<NodeId> = p.labels.iter().map(|&l| hg.add_node(l)).collect();
        for &(s, d, l) in &p.edges {
            hg.add_edge(planted[s], planted[d], l);
        }
        let extra: Vec<NodeId> = noise.labels.iter().map(|&l| hg.add_node(l)).collect();
        for &(s, d, l) in &noise.edges {
            hg.add_edge(extra[s], extra[d], l);
        }
        for &(s, d, l) in &cross {
            if s < planted.len() && d < extra.len() {
                hg.add_edge(planted[s], extra[d], l);
            }
        }
        let nm = |_: NodeId, pl: &u8, _: NodeId, hl: &u8| pl == hl;
        let em = |pl: &u8, hl: &u8| pl == hl;
        let found = find_subgraph_matches(
            &pg, &hg, &nm, &em, MatchOptions::default(),
        );
        let pat_ids: Vec<NodeId> = pg.node_ids().collect();
        let hit = found.iter().any(|m| {
            pat_ids.iter().enumerate().all(|(i, pid)| m[pid] == planted[i])
        });
        prop_assert!(hit, "planted embedding missing among {} matches", found.len());
    }

    /// Induced mode: host edges between matched pairs are exactly the
    /// pattern's edges (per label, with multiplicity).
    #[test]
    fn induced_matches_have_no_extra_edges(
        p in raw_graph(3, 4),
        h in raw_graph(7, 14),
    ) {
        let (pg, _) = build(&p);
        let (hg, _) = build(&h);
        let nm = |_: NodeId, pl: &u8, _: NodeId, hl: &u8| pl == hl;
        let em = |pl: &u8, hl: &u8| pl == hl;
        let found = find_subgraph_matches(
            &pg, &hg, &nm, &em,
            MatchOptions { induced: true, limit: 100 },
        );
        for m in &found {
            prop_assert!(is_monomorphism(&pg, &hg, m));
            // Exact cover: per mapped (src, dst) pair and label, host
            // multiplicity equals pattern multiplicity.
            let mut pat: HashMap<(NodeId, NodeId, u8), usize> = HashMap::new();
            for e in pg.edge_ids() {
                let (s, d) = pg.edge_endpoints(e);
                *pat.entry((m[&s], m[&d], *pg.edge(e))).or_default() += 1;
            }
            let mapped: Vec<NodeId> = m.values().copied().collect();
            for &s in &mapped {
                for e in hg.out_edges(s) {
                    let d = hg.edge_dst(e);
                    if mapped.contains(&d) {
                        let k = pat.get(&(s, d, *hg.edge(e))).copied().unwrap_or(0);
                        prop_assert!(
                            edge_count(&hg, s, d, *hg.edge(e)) <= k,
                            "extra host edge {s:?}->{d:?} in induced match"
                        );
                    }
                }
            }
        }
    }
}
