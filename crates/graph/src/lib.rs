//! Graph substrate for SDFGs.
//!
//! An SDFG is "a directed graph of directed acyclic multigraphs" (paper §3):
//! the top level is a state machine, and each state is a DAG multigraph of
//! dataflow. Both levels are instances of [`MultiGraph`], a directed
//! multigraph with stable node/edge identifiers and tombstone deletion, so
//! identifiers held by transformations stay valid across rewrites.
//!
//! On top of the container, this crate provides the graph algorithms the
//! paper's machinery needs:
//!
//! * [`algo::topological_sort`] — state dataflow is executed in topological
//!   order (Appendix A.2.2).
//! * [`algo::dominators`] / [`algo::postdominators`] — Map/Consume scopes
//!   are "nodes dominated by a scope entry and post-dominated by an exit"
//!   (§3.3).
//! * [`algo::weakly_connected_components`] — separate components of a state
//!   run concurrently (§3.3).
//! * [`vf2`] — VF2-style subgraph matching, used to find transformation
//!   pattern occurrences (§4.1, citing Cordella et al.).

pub mod algo;
pub mod multigraph;
pub mod vf2;

pub use multigraph::{EdgeId, MultiGraph, NodeId};
