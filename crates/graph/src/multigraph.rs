//! A directed multigraph with stable identifiers.
//!
//! Nodes and edges are stored in slot vectors; deletion leaves a tombstone
//! so that `NodeId`/`EdgeId` values held elsewhere (e.g. by a transformation
//! match) never dangle onto a *different* element. Accessing a deleted
//! element panics with a clear message — that is a bug in the caller.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`MultiGraph`]. Stable across mutations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an edge in a [`MultiGraph`]. Stable across mutations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl NodeId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct EdgeSlot<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A directed multigraph: parallel edges and self-loops are allowed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiGraph<N, E> {
    nodes: Vec<Option<N>>,
    edges: Vec<Option<EdgeSlot<E>>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    live_nodes: usize,
    live_edges: usize,
}

impl<N, E> Default for MultiGraph<N, E> {
    fn default() -> Self {
        MultiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        }
    }
}

impl<N, E> MultiGraph<N, E> {
    /// Creates an empty multigraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(weight));
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        self.live_nodes += 1;
        id
    }

    /// Adds a directed edge `src -> dst` and returns its identifier.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(self.contains_node(src), "add_edge: src {src:?} not live");
        assert!(self.contains_node(dst), "add_edge: dst {dst:?} not live");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Some(EdgeSlot { src, dst, weight }));
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.live_edges += 1;
        id
    }

    /// True if the node exists and is live.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|s| s.is_some())
    }

    /// True if the edge exists and is live.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|s| s.is_some())
    }

    /// Node payload. Panics if deleted.
    pub fn node(&self, n: NodeId) -> &N {
        self.nodes[n.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("node {n:?} was removed"))
    }

    /// Mutable node payload. Panics if deleted.
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        self.nodes[n.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("node {n:?} was removed"))
    }

    /// Edge payload. Panics if deleted.
    pub fn edge(&self, e: EdgeId) -> &E {
        self.edges[e.index()]
            .as_ref()
            .map(|s| &s.weight)
            .unwrap_or_else(|| panic!("edge {e:?} was removed"))
    }

    /// Mutable edge payload. Panics if deleted.
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut E {
        self.edges[e.index()]
            .as_mut()
            .map(|s| &mut s.weight)
            .unwrap_or_else(|| panic!("edge {e:?} was removed"))
    }

    /// Source node of an edge.
    pub fn edge_src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("edge {e:?} was removed"))
            .src
    }

    /// Destination node of an edge.
    pub fn edge_dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("edge {e:?} was removed"))
            .dst
    }

    /// `(src, dst)` endpoints of an edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let s = self.edges[e.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("edge {e:?} was removed"));
        (s.src, s.dst)
    }

    /// Removes an edge; its id becomes invalid.
    pub fn remove_edge(&mut self, e: EdgeId) -> E {
        let slot = self.edges[e.index()]
            .take()
            .unwrap_or_else(|| panic!("edge {e:?} already removed"));
        self.out_adj[slot.src.index()].retain(|&x| x != e);
        self.in_adj[slot.dst.index()].retain(|&x| x != e);
        self.live_edges -= 1;
        slot.weight
    }

    /// Removes a node and all incident edges.
    pub fn remove_node(&mut self, n: NodeId) -> N {
        let weight = self.nodes[n.index()]
            .take()
            .unwrap_or_else(|| panic!("node {n:?} already removed"));
        let incident: Vec<EdgeId> = self.out_adj[n.index()]
            .iter()
            .chain(self.in_adj[n.index()].iter())
            .copied()
            .collect();
        for e in incident {
            if self.contains_edge(e) {
                self.remove_edge(e);
            }
        }
        self.live_nodes -= 1;
        weight
    }

    /// Live node identifiers, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| NodeId(i as u32)))
    }

    /// Live edge identifiers, ascending.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| EdgeId(i as u32)))
    }

    /// Outgoing edges of a node (insertion order).
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[n.index()].iter().copied()
    }

    /// Incoming edges of a node (insertion order).
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[n.index()].iter().copied()
    }

    /// Out-degree.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// In-degree.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.index()].len()
    }

    /// Successor nodes (with multiplicity, per parallel edge).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(move |e| self.edge_dst(e))
    }

    /// Predecessor nodes (with multiplicity, per parallel edge).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(move |e| self.edge_src(e))
    }

    /// All parallel edges from `src` to `dst`.
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges(src)
            .filter(move |&e| self.edge_dst(e) == dst)
    }

    /// Highest node slot ever allocated (for building side tables).
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (MultiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = MultiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.successors(a).count(), 2);
        assert_eq!(g.predecessors(b).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn parallel_edges_supported() {
        let mut g: MultiGraph<(), u32> = MultiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edges_between(a, b).count(), 2);
        assert_eq!(g.successors(a).count(), 2);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _, _]) = diamond();
        let e = g.edges_between(a, b).next().unwrap();
        assert_eq!(g.remove_edge(e), 1);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 1);
        assert!(!g.contains_edge(e));
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [_, b, _, d]) = diamond();
        g.remove_node(b);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.in_degree(d), 1);
    }

    #[test]
    fn ids_stay_stable_after_removal() {
        let (mut g, [a, b, c, d]) = diamond();
        g.remove_node(b);
        // Other ids still resolve to the same payloads.
        assert_eq!(*g.node(a), "a");
        assert_eq!(*g.node(c), "c");
        assert_eq!(*g.node(d), "d");
        // New nodes get fresh ids, never recycling b's.
        let e = g.add_node("e");
        assert_ne!(e, b);
    }

    #[test]
    #[should_panic(expected = "was removed")]
    fn access_removed_node_panics() {
        let (mut g, [a, ..]) = diamond();
        g.remove_node(a);
        let _ = g.node(a);
    }

    #[test]
    fn self_loops() {
        let mut g: MultiGraph<(), ()> = MultiGraph::new();
        let a = g.add_node(());
        let e = g.add_edge(a, a, ());
        assert_eq!(g.edge_endpoints(e), (a, a));
        g.remove_node(a);
        assert_eq!(g.edge_count(), 0);
    }
}
