//! Graph algorithms over [`MultiGraph`]: topological sort, cycle detection,
//! weakly connected components, reachability, and (post-)dominators.

use crate::multigraph::{MultiGraph, NodeId};
use std::collections::HashMap;

/// Error returned by [`topological_sort`] when the graph has a cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// A node that participates in a cycle.
    pub witness: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle through {:?}", self.witness)
    }
}

impl std::error::Error for CycleError {}

/// Kahn's algorithm. Ties are broken by ascending `NodeId`, making the
/// order deterministic (important for reproducible code generation).
pub fn topological_sort<N, E>(g: &MultiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    let mut indeg: HashMap<NodeId, usize> = g.node_ids().map(|n| (n, g.in_degree(n))).collect();
    // BinaryHeap of Reverse would work; for small graphs a sorted vec is fine.
    let mut ready: Vec<NodeId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    ready.sort_unstable_by(|a, b| b.cmp(a)); // pop from the back = smallest
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = ready.pop() {
        order.push(n);
        let mut newly = Vec::new();
        for s in g.successors(n) {
            let d = indeg.get_mut(&s).expect("successor must be live");
            *d -= 1;
            if *d == 0 {
                newly.push(s);
            }
        }
        for s in newly {
            let pos = ready.binary_search_by(|x| s.cmp(x)).unwrap_or_else(|p| p);
            ready.insert(pos, s);
        }
    }
    if order.len() != g.node_count() {
        let witness = g
            .node_ids()
            .find(|n| !order.contains(n))
            .expect("cycle witness exists");
        return Err(CycleError { witness });
    }
    Ok(order)
}

/// True if the directed graph contains a cycle.
pub fn has_cycle<N, E>(g: &MultiGraph<N, E>) -> bool {
    topological_sort(g).is_err()
}

/// Weakly connected components, each sorted ascending; components ordered
/// by their smallest node.
pub fn weakly_connected_components<N, E>(g: &MultiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let mut seen: HashMap<NodeId, bool> = g.node_ids().map(|n| (n, false)).collect();
    let mut comps = Vec::new();
    for start in g.node_ids() {
        if seen[&start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen.insert(start, true);
        while let Some(n) = stack.pop() {
            comp.push(n);
            for m in g.successors(n).chain(g.predecessors(n)) {
                if !seen[&m] {
                    seen.insert(m, true);
                    stack.push(m);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Nodes reachable from `start` along edge direction (including `start`).
pub fn reachable<N, E>(g: &MultiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_bound()];
    let mut stack = vec![start];
    let mut out = Vec::new();
    seen[start.index()] = true;
    while let Some(n) = stack.pop() {
        out.push(n);
        for m in g.successors(n) {
            if !seen[m.index()] {
                seen[m.index()] = true;
                stack.push(m);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// iterative algorithm. Returns `idom[n]` for every node reachable from
/// `entry`; the entry maps to itself. Unreachable nodes are absent.
pub fn dominators<N, E>(g: &MultiGraph<N, E>, entry: NodeId) -> HashMap<NodeId, NodeId> {
    // Reverse postorder of the reachable subgraph.
    let rpo = reverse_postorder(g, entry, false);
    let index: HashMap<NodeId, usize> = rpo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut idom: Vec<Option<usize>> = vec![None; rpo.len()];
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for (i, &n) in rpo.iter().enumerate().skip(1) {
            let mut new_idom: Option<usize> = None;
            for p in g.predecessors(n) {
                let Some(&pi) = index.get(&p) else { continue };
                if idom[pi].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => pi,
                    Some(cur) => intersect(&idom, pi, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[i] != Some(ni) {
                    idom[i] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    rpo.iter()
        .enumerate()
        .filter_map(|(i, &n)| idom[i].map(|d| (n, rpo[d])))
        .collect()
}

/// Immediate post-dominators: dominators of the reversed graph rooted at
/// `exit`.
pub fn postdominators<N, E>(g: &MultiGraph<N, E>, exit: NodeId) -> HashMap<NodeId, NodeId> {
    let rpo = reverse_postorder(g, exit, true);
    let index: HashMap<NodeId, usize> = rpo.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut idom: Vec<Option<usize>> = vec![None; rpo.len()];
    if rpo.is_empty() {
        return HashMap::new();
    }
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for (i, &n) in rpo.iter().enumerate().skip(1) {
            let mut new_idom: Option<usize> = None;
            for p in g.successors(n) {
                let Some(&pi) = index.get(&p) else { continue };
                if idom[pi].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => pi,
                    Some(cur) => intersect(&idom, pi, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[i] != Some(ni) {
                    idom[i] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    rpo.iter()
        .enumerate()
        .filter_map(|(i, &n)| idom[i].map(|d| (n, rpo[d])))
        .collect()
}

/// Walks up the (partial) dominator tree to the common ancestor.
fn intersect(idom: &[Option<usize>], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while a > b {
            a = idom[a].expect("intersect: undefined idom");
        }
        while b > a {
            b = idom[b].expect("intersect: undefined idom");
        }
    }
    a
}

/// True if `dom` dominates `n` under the given immediate-dominator map
/// (reflexive: every node dominates itself).
pub fn dominates(idom: &HashMap<NodeId, NodeId>, dom: NodeId, mut n: NodeId) -> bool {
    loop {
        if n == dom {
            return true;
        }
        match idom.get(&n) {
            Some(&p) if p != n => n = p,
            _ => return false,
        }
    }
}

fn reverse_postorder<N, E>(g: &MultiGraph<N, E>, entry: NodeId, reversed: bool) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_bound()];
    let mut post = Vec::new();
    // Iterative DFS with explicit phase tracking.
    let mut stack: Vec<(NodeId, bool)> = vec![(entry, false)];
    while let Some((n, processed)) = stack.pop() {
        if processed {
            post.push(n);
            continue;
        }
        if visited[n.index()] {
            continue;
        }
        visited[n.index()] = true;
        stack.push((n, true));
        let nexts: Vec<NodeId> = if reversed {
            g.predecessors(n).collect()
        } else {
            g.successors(n).collect()
        };
        for m in nexts {
            if !visited[m.index()] {
                stack.push((m, false));
            }
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g_from(edges: &[(u32, u32)], n: u32) -> MultiGraph<(), ()> {
        let mut g = MultiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a as usize], ids[b as usize], ());
        }
        g
    }

    #[test]
    fn toposort_diamond() {
        let g = g_from(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn toposort_detects_cycles() {
        let g = g_from(&[(0, 1), (1, 2), (2, 0)], 3);
        assert!(topological_sort(&g).is_err());
        assert!(has_cycle(&g));
        let dag = g_from(&[(0, 1)], 2);
        assert!(!has_cycle(&dag));
    }

    #[test]
    fn toposort_respects_all_edges() {
        // Random-ish DAG; check pairwise order constraint.
        let edges = [(3, 1), (3, 0), (1, 4), (0, 4), (4, 2)];
        let g = g_from(&edges, 5);
        let order = topological_sort(&g).unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &(a, b) in &edges {
            assert!(pos[&NodeId(a)] < pos[&NodeId(b)]);
        }
    }

    #[test]
    fn components() {
        let g = g_from(&[(0, 1), (2, 3)], 5);
        let comps = weakly_connected_components(&g);
        assert_eq!(
            comps,
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2), NodeId(3)],
                vec![NodeId(4)]
            ]
        );
    }

    #[test]
    fn dominators_diamond() {
        //    0
        //   / \
        //  1   2
        //   \ /
        //    3
        let g = g_from(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let idom = dominators(&g, NodeId(0));
        assert_eq!(idom[&NodeId(1)], NodeId(0));
        assert_eq!(idom[&NodeId(2)], NodeId(0));
        assert_eq!(idom[&NodeId(3)], NodeId(0)); // join dominated by fork, not branches
        assert!(dominates(&idom, NodeId(0), NodeId(3)));
        assert!(!dominates(&idom, NodeId(1), NodeId(3)));
    }

    #[test]
    fn postdominators_diamond() {
        let g = g_from(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let pdom = postdominators(&g, NodeId(3));
        assert_eq!(pdom[&NodeId(1)], NodeId(3));
        assert_eq!(pdom[&NodeId(2)], NodeId(3));
        assert_eq!(pdom[&NodeId(0)], NodeId(3));
    }

    #[test]
    fn dominators_chain_in_scope_shape() {
        // map-entry(0) -> a(1) -> b(2) -> map-exit(3); plus 0 -> 2 memlet.
        let g = g_from(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let idom = dominators(&g, NodeId(0));
        let pdom = postdominators(&g, NodeId(3));
        // Scope membership test from the paper: dominated by entry and
        // post-dominated by exit.
        for n in [NodeId(1), NodeId(2)] {
            assert!(dominates(&idom, NodeId(0), n));
            assert!(dominates(&pdom, NodeId(3), n));
        }
    }

    #[test]
    fn reachable_ignores_unconnected() {
        let g = g_from(&[(0, 1), (1, 2), (3, 4)], 5);
        assert_eq!(
            reachable(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn dominators_skip_unreachable() {
        let g = g_from(&[(0, 1), (2, 1)], 3);
        let idom = dominators(&g, NodeId(0));
        assert!(idom.contains_key(&NodeId(1)));
        assert!(!idom.contains_key(&NodeId(2)));
    }
}
