//! VF2-style subgraph matching.
//!
//! The transformation engine of the paper finds pattern occurrences with
//! "the VF2 algorithm to find isomorphic subgraphs" (§4.1). We implement
//! backtracking search in the VF2 spirit: pattern nodes are matched one at a
//! time in a connectivity-aware order, candidates are drawn from the
//! neighborhood of already-matched nodes, and feasibility is checked against
//! every pattern edge incident to the frontier.
//!
//! Two match semantics are offered:
//!
//! * **monomorphism** (default for transformations): every pattern edge must
//!   have a distinct matching host edge, but the host may have extra edges
//!   among matched nodes — e.g. the `RedundantArray` pattern (two access
//!   nodes in a path) matches even when the host state has additional
//!   unrelated edges.
//! * **induced**: additionally, host edges between matched nodes must be
//!   covered by pattern edges.

use crate::multigraph::{MultiGraph, NodeId};
use std::collections::HashMap;

/// A single match: pattern node → host node.
pub type Match = HashMap<NodeId, NodeId>;

/// Options controlling the search.
#[derive(Clone, Copy, Debug)]
pub struct MatchOptions {
    /// Require induced subgraphs (no extra host edges between matched nodes).
    pub induced: bool,
    /// Stop after this many matches (`usize::MAX` for all).
    pub limit: usize,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            induced: false,
            limit: usize::MAX,
        }
    }
}

/// Finds occurrences of `pattern` in `host`.
///
/// `node_match(p, h)` and `edge_match(pe, he)` decide label compatibility.
/// Matches are returned in a deterministic order (host candidates are tried
/// in ascending `NodeId` order).
pub fn find_subgraph_matches<PN, PE, N, E>(
    pattern: &MultiGraph<PN, PE>,
    host: &MultiGraph<N, E>,
    node_match: &dyn Fn(NodeId, &PN, NodeId, &N) -> bool,
    edge_match: &dyn Fn(&PE, &E) -> bool,
    options: MatchOptions,
) -> Vec<Match> {
    let pat_nodes: Vec<NodeId> = pattern.node_ids().collect();
    if pat_nodes.is_empty() || pat_nodes.len() > host.node_count() {
        return Vec::new();
    }
    let order = connectivity_order(pattern, &pat_nodes);
    let mut state = SearchState {
        pattern,
        host,
        node_match,
        edge_match,
        options,
        order,
        mapping: HashMap::new(),
        used: vec![false; host.node_bound()],
        results: Vec::new(),
    };
    state.search(0);
    state.results
}

/// Orders pattern nodes so that each node (after the first) is adjacent to an
/// earlier one whenever the pattern is connected; disconnected parts follow.
fn connectivity_order<PN, PE>(pattern: &MultiGraph<PN, PE>, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = Vec::with_capacity(nodes.len());
    let mut placed = vec![false; pattern.node_bound()];
    // Start from the most constrained node (highest degree).
    let mut remaining: Vec<NodeId> = nodes.to_vec();
    remaining.sort_by_key(|&n| std::cmp::Reverse(pattern.in_degree(n) + pattern.out_degree(n)));
    while order.len() < nodes.len() {
        // Prefer an unplaced node adjacent to the placed set.
        let next = remaining
            .iter()
            .copied()
            .filter(|&n| !placed[n.index()])
            .find(|&n| {
                pattern
                    .successors(n)
                    .chain(pattern.predecessors(n))
                    .any(|m| placed[m.index()])
            })
            .or_else(|| remaining.iter().copied().find(|&n| !placed[n.index()]));
        let n = next.expect("some node remains");
        placed[n.index()] = true;
        order.push(n);
    }
    order
}

struct SearchState<'a, PN, PE, N, E> {
    pattern: &'a MultiGraph<PN, PE>,
    host: &'a MultiGraph<N, E>,
    node_match: &'a dyn Fn(NodeId, &PN, NodeId, &N) -> bool,
    edge_match: &'a dyn Fn(&PE, &E) -> bool,
    options: MatchOptions,
    order: Vec<NodeId>,
    mapping: Match,
    used: Vec<bool>,
    results: Vec<Match>,
}

impl<PN, PE, N, E> SearchState<'_, PN, PE, N, E> {
    fn search(&mut self, depth: usize) {
        if self.results.len() >= self.options.limit {
            return;
        }
        if depth == self.order.len() {
            self.results.push(self.mapping.clone());
            return;
        }
        let p = self.order[depth];
        let candidates = self.candidates_for(p);
        for h in candidates {
            if self.used[h.index()] {
                continue;
            }
            if !(self.node_match)(p, self.pattern.node(p), h, self.host.node(h)) {
                continue;
            }
            if !self.edges_feasible(p, h) {
                continue;
            }
            self.mapping.insert(p, h);
            self.used[h.index()] = true;
            self.search(depth + 1);
            self.used[h.index()] = false;
            self.mapping.remove(&p);
            if self.results.len() >= self.options.limit {
                return;
            }
        }
    }

    /// Host candidates for pattern node `p`: if `p` has a matched pattern
    /// neighbor, restrict to the corresponding host neighborhood; otherwise
    /// all host nodes.
    fn candidates_for(&self, p: NodeId) -> Vec<NodeId> {
        // Matched pattern predecessor: candidates are successors of its image.
        for e in self.pattern.in_edges(p) {
            let src = self.pattern.edge_src(e);
            if let Some(&hsrc) = self.mapping.get(&src) {
                let mut c: Vec<NodeId> = self.host.successors(hsrc).collect();
                c.sort_unstable();
                c.dedup();
                return c;
            }
        }
        for e in self.pattern.out_edges(p) {
            let dst = self.pattern.edge_dst(e);
            if let Some(&hdst) = self.mapping.get(&dst) {
                let mut c: Vec<NodeId> = self.host.predecessors(hdst).collect();
                c.sort_unstable();
                c.dedup();
                return c;
            }
        }
        self.host.node_ids().collect()
    }

    /// Checks every pattern edge between `p` and already-matched nodes, with
    /// multiplicity (distinct host edges per pattern edge, greedy matching).
    fn edges_feasible(&self, p: NodeId, h: NodeId) -> bool {
        // Self-loops: `p` is not yet in the mapping when it is placed, so
        // they are invisible to the matched-neighbor walk below.
        if !self.direction_feasible(p, p, h, h) {
            return false;
        }
        if self.options.induced
            && self.host.edges_between(h, h).count() > self.pattern.edges_between(p, p).count()
        {
            return false;
        }
        // Outgoing pattern edges p -> q with q matched.
        for q in self.matched_pattern_nodes_adjacent(p) {
            let hq = self.mapping[&q];
            if !self.multiedges_feasible(p, q, h, hq) {
                return false;
            }
        }
        if self.options.induced {
            // No extra host edges between h and matched host nodes beyond
            // what pattern edges account for — checked as exact counts.
            for (&q, &hq) in &self.mapping {
                let pf = self.pattern.edges_between(p, q).count();
                let hf = self.host.edges_between(h, hq).count();
                let pb = self.pattern.edges_between(q, p).count();
                let hb = self.host.edges_between(hq, h).count();
                if hf > pf || hb > pb {
                    return false;
                }
            }
        }
        true
    }

    fn matched_pattern_nodes_adjacent(&self, p: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .pattern
            .successors(p)
            .chain(self.pattern.predecessors(p))
            .filter(|q| self.mapping.contains_key(q))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Greedy bipartite check: each pattern edge between (p,q) needs its own
    /// compatible host edge between (h,hq), in both directions.
    fn multiedges_feasible(&self, p: NodeId, q: NodeId, h: NodeId, hq: NodeId) -> bool {
        self.direction_feasible(p, q, h, hq) && self.direction_feasible(q, p, hq, h)
    }

    fn direction_feasible(&self, pa: NodeId, pb: NodeId, ha: NodeId, hb: NodeId) -> bool {
        let pedges: Vec<_> = self.pattern.edges_between(pa, pb).collect();
        if pedges.is_empty() {
            return true;
        }
        let hedges: Vec<_> = self.host.edges_between(ha, hb).collect();
        if hedges.len() < pedges.len() {
            return false;
        }
        // Greedy assignment (pattern edge predicates are usually uniform).
        let mut taken = vec![false; hedges.len()];
        'outer: for pe in &pedges {
            for (i, he) in hedges.iter().enumerate() {
                if !taken[i] && (self.edge_match)(self.pattern.edge(*pe), self.host.edge(*he)) {
                    taken[i] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> MultiGraph<u32, ()> {
        let mut g = MultiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(i)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    fn any_node(_: NodeId, _: &u32, _: NodeId, _: &u32) -> bool {
        true
    }
    fn any_edge(_: &(), _: &()) -> bool {
        true
    }

    #[test]
    fn self_loop_in_pattern_requires_host_self_loop() {
        let mut pat: MultiGraph<u32, ()> = MultiGraph::new();
        let pn = pat.add_node(0);
        pat.add_edge(pn, pn, ());
        // Host without a self-loop: no match.
        let mut bare: MultiGraph<u32, ()> = MultiGraph::new();
        bare.add_node(0);
        let found =
            find_subgraph_matches(&pat, &bare, &any_node, &any_edge, MatchOptions::default());
        assert!(found.is_empty());
        // Host with the self-loop: exactly one match.
        let mut looped: MultiGraph<u32, ()> = MultiGraph::new();
        let hn = looped.add_node(0);
        looped.add_edge(hn, hn, ());
        let found =
            find_subgraph_matches(&pat, &looped, &any_node, &any_edge, MatchOptions::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0][&pn], hn);
    }

    #[test]
    fn path_in_path() {
        let pattern = path(2);
        let host = path(4);
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &any_node,
            &any_edge,
            MatchOptions::default(),
        );
        // Three consecutive pairs.
        assert_eq!(m.len(), 3);
        for mm in &m {
            let a = mm[&NodeId(0)];
            let b = mm[&NodeId(1)];
            assert!(host.edges_between(a, b).count() == 1);
        }
    }

    #[test]
    fn label_restriction() {
        let pattern = path(2);
        let host = path(4);
        // Only match pattern node 0 onto host node 1.
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &|p, _, h, _| p != NodeId(0) || h == NodeId(1),
            &any_edge,
            MatchOptions::default(),
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0][&NodeId(0)], NodeId(1));
        assert_eq!(m[0][&NodeId(1)], NodeId(2));
    }

    #[test]
    fn injectivity() {
        // Pattern: two nodes, no edges; host: single node.
        let mut pattern: MultiGraph<u32, ()> = MultiGraph::new();
        pattern.add_node(0);
        pattern.add_node(1);
        let mut host: MultiGraph<u32, ()> = MultiGraph::new();
        host.add_node(0);
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &any_node,
            &any_edge,
            MatchOptions::default(),
        );
        assert!(m.is_empty());
    }

    #[test]
    fn monomorphism_allows_extra_host_edges() {
        // Pattern a->b; host has a->b and b->a (cycle).
        let pattern = path(2);
        let mut host: MultiGraph<u32, ()> = MultiGraph::new();
        let a = host.add_node(0);
        let b = host.add_node(1);
        host.add_edge(a, b, ());
        host.add_edge(b, a, ());
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &any_node,
            &any_edge,
            MatchOptions::default(),
        );
        assert_eq!(m.len(), 2); // both directions
        let induced = find_subgraph_matches(
            &pattern,
            &host,
            &any_node,
            &any_edge,
            MatchOptions {
                induced: true,
                limit: usize::MAX,
            },
        );
        assert!(induced.is_empty()); // back edge is not in the pattern
    }

    #[test]
    fn parallel_edge_multiplicity() {
        // Pattern has a double edge a=>b; host must too.
        let mut pattern: MultiGraph<u32, ()> = MultiGraph::new();
        let pa = pattern.add_node(0);
        let pb = pattern.add_node(1);
        pattern.add_edge(pa, pb, ());
        pattern.add_edge(pa, pb, ());
        let single = path(2);
        assert!(find_subgraph_matches(
            &pattern,
            &single,
            &any_node,
            &any_edge,
            MatchOptions::default()
        )
        .is_empty());
        let mut dbl: MultiGraph<u32, ()> = MultiGraph::new();
        let a = dbl.add_node(0);
        let b = dbl.add_node(1);
        dbl.add_edge(a, b, ());
        dbl.add_edge(a, b, ());
        assert_eq!(
            find_subgraph_matches(
                &pattern,
                &dbl,
                &any_node,
                &any_edge,
                MatchOptions::default()
            )
            .len(),
            1
        );
    }

    #[test]
    fn edge_labels_checked() {
        let mut pattern: MultiGraph<(), u8> = MultiGraph::new();
        let pa = pattern.add_node(());
        let pb = pattern.add_node(());
        pattern.add_edge(pa, pb, 7);
        let mut host: MultiGraph<(), u8> = MultiGraph::new();
        let a = host.add_node(());
        let b = host.add_node(());
        let c = host.add_node(());
        host.add_edge(a, b, 7);
        host.add_edge(b, c, 9);
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &|_, _, _, _| true,
            &|pe, he| pe == he,
            MatchOptions::default(),
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0][&pa], a);
    }

    #[test]
    fn limit_stops_early() {
        let pattern = path(1);
        let host = path(10);
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &any_node,
            &any_edge,
            MatchOptions {
                induced: false,
                limit: 3,
            },
        );
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn triangle_in_clique() {
        // Directed triangle pattern in a 4-clique (all ordered pairs).
        let mut pattern: MultiGraph<(), ()> = MultiGraph::new();
        let p: Vec<_> = (0..3).map(|_| pattern.add_node(())).collect();
        pattern.add_edge(p[0], p[1], ());
        pattern.add_edge(p[1], p[2], ());
        pattern.add_edge(p[2], p[0], ());
        let mut host: MultiGraph<(), ()> = MultiGraph::new();
        let h: Vec<_> = (0..4).map(|_| host.add_node(())).collect();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    host.add_edge(h[i], h[j], ());
                }
            }
        }
        let m = find_subgraph_matches(
            &pattern,
            &host,
            &|_, _, _, _| true,
            &any_edge,
            MatchOptions::default(),
        );
        // 4 choose 3 triangles × 3 rotations × 2 orientations... directed:
        // each ordered 3-cycle; count = 4C3 * 2 cycles * 3 rotations = 24.
        assert_eq!(m.len(), 24);
    }
}
