//! Process-global metrics registry with Prometheus text exposition.
//!
//! The registry holds **families** (one name + help + type) of **series**
//! (one label set each). Callers resolve a handle ([`Counter`], [`Gauge`],
//! [`Histogram`]) once, off the hot path, and then update it freely:
//! counters are backed by cache-line-padded sharded atomics so concurrent
//! workers pay one relaxed `fetch_add` on a (likely) private cache line,
//! never a lock. Handles are cheap `Arc` clones; the same
//! `(name, labels)` pair always resolves to the same underlying series.
//!
//! [`MetricsRegistry::render_prometheus`] emits the Prometheus text
//! exposition format (`# HELP` / `# TYPE` headers, cumulative histogram
//! buckets with an explicit `+Inf`). Families and series render in
//! deterministic sorted order. [`validate_exposition`] is a small
//! line-oriented checker used by tests and the bench harness's
//! `obs-check` mode.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of per-counter shards. Threads hash onto shards by arrival
/// order; 16 covers typical core counts without false sharing.
const SHARDS: usize = 16;

/// One cache line per shard so two workers bumping the same counter
/// never contend on a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Stable per-thread shard index (assigned on first use, round-robin).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(i);
        }
        i
    })
}

/// Monotonically increasing counter; `add` is one relaxed atomic add on
/// a per-thread shard. Clones share the same series.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: Arc::new(std::array::from_fn(|_| PaddedU64::default())),
        }
    }

    /// Adds `v` (relaxed, sharded — safe on any hot path).
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable signed gauge.
#[derive(Clone)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            v: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: i64) {
        self.v.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram. Bucket upper bounds are set at registration
/// and immutable; `observe` is a bucket search plus three relaxed adds.
/// The sum is kept in fixed-point micro-units so it needs no
/// compare-exchange loop.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    /// Ascending finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A standalone histogram (not attached to any registry) — useful
    /// for local percentile computations, e.g. the bench harness.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|x| x.is_finite()).collect();
        b.sort_by(|x, y| x.partial_cmp(y).expect("finite bounds"));
        b.dedup();
        let buckets = (0..b.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: b,
                buckets,
                count: AtomicU64::new(0),
                sum_micros: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // First bucket whose upper bound admits v (`v <= bound`);
        // everything past the last bound lands in the overflow slot.
        let i = self.inner.bounds.partition_point(|&b| v > b);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let micros = (v.max(0.0) * 1e6).round() as u64;
        self.inner.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (micro-unit fixed point, so ~1e-6 resolution).
    pub fn sum(&self) -> f64 {
        self.inner.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Non-cumulative per-bucket counts (last entry is the `+Inf`
    /// overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper bounds (finite only; the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Estimated quantile `q` in `[0, 1]`, linearly interpolated inside
    /// the containing bucket (the standard Prometheus estimate). Returns
    /// 0.0 when empty; observations past the last bound clamp to it.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1e-12);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if rank <= next as f64 {
                let lower = if i == 0 {
                    0.0
                } else {
                    self.inner.bounds[i - 1]
                };
                let upper = match self.inner.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: clamp to the last finite bound.
                    None => return self.inner.bounds.last().copied().unwrap_or(0.0),
                };
                let frac = (rank - cum as f64) / c as f64;
                return lower + (upper - lower) * frac;
            }
            cum = next;
        }
        self.inner.bounds.last().copied().unwrap_or(0.0)
    }
}

/// Default millisecond buckets for launch-duration histograms: 10 µs to
/// 5 s in a 1-2.5-5 ladder.
pub fn default_duration_buckets_ms() -> Vec<f64> {
    vec![
        0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
        1000.0, 2500.0, 5000.0,
    ]
}

/// `count` log-spaced bounds starting at `start`, each `factor` apart —
/// for fine-grained local percentiles.
pub fn log_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b *= factor;
    }
    v
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the rendered, sorted label block (`""` for no labels).
    series: BTreeMap<String, Series>,
}

/// A registry of metric families. Most callers use the process-global
/// [`global()`]; separate registries exist for tests.
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with("__")
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders a label set as the canonical sorted `{k="v",...}` block
/// (empty string when there are no labels).
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| {
            debug_assert!(valid_label_name(k), "invalid label name {k:?}");
            format!("{k}=\"{}\"", escape_label_value(v))
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Injects one extra label into an already-rendered block (for
/// histogram `le`).
fn with_extra_label(block: &str, k: &str, v: &str) -> String {
    if block.is_empty() {
        format!("{{{k}=\"{v}\"}}")
    } else {
        format!("{},{k}=\"{v}\"}}", &block[..block.len() - 1])
    }
}

/// Shortest round-trip rendering of an `le` bound (Prometheus accepts
/// any float literal; `{}` keeps `0.25` as-is).
fn fmt_bound(b: f64) -> String {
    format!("{b}")
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn family<'a>(
        map: &'a mut BTreeMap<String, Family>,
        name: &str,
        help: &str,
        kind: MetricKind,
    ) -> &'a mut Family {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let fam = map.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name} already registered as {}",
            fam.kind.name()
        );
        fam
    }

    /// Resolves (registering if needed) a counter series. Idempotent:
    /// the same `(name, labels)` always returns the same series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let block = label_block(labels);
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let fam = Self::family(&mut map, name, help, MetricKind::Counter);
        match fam
            .series
            .entry(block)
            .or_insert_with(|| Series::Counter(Counter::new()))
        {
            Series::Counter(c) => c.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Resolves (registering if needed) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let block = label_block(labels);
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let fam = Self::family(&mut map, name, help, MetricKind::Gauge);
        match fam
            .series
            .entry(block)
            .or_insert_with(|| Series::Gauge(Gauge::new()))
        {
            Series::Gauge(g) => g.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Resolves (registering if needed) a histogram series with the
    /// given bucket bounds (bounds of an existing series win).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let block = label_block(labels);
        let mut map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let fam = Self::family(&mut map, name, help, MetricKind::Histogram);
        match fam
            .series
            .entry(block)
            .or_insert_with(|| Series::Histogram(Histogram::with_bounds(bounds)))
        {
            Series::Histogram(h) => h.clone(),
            _ => unreachable!("kind checked above"),
        }
    }

    /// Current value of a counter series, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let block = label_block(labels);
        let map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match map.get(name)?.series.get(&block)? {
            Series::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// Renders the whole registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        for (name, fam) in map.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.name()));
            for (block, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{block} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{block} {}\n", g.get()));
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cum += c;
                            let le = match h.bounds().get(i) {
                                Some(&b) => fmt_bound(b),
                                None => "+Inf".to_string(),
                            };
                            let lb = with_extra_label(block, "le", &le);
                            out.push_str(&format!("{name}_bucket{lb} {cum}\n"));
                        }
                        out.push_str(&format!("{name}_sum{block} {}\n", h.sum()));
                        out.push_str(&format!("{name}_count{block} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }
}

/// The process-global registry, with the core SDFG metric families
/// pre-registered (see [`core()`]) so required families render even at
/// zero.
pub fn global() -> &'static MetricsRegistry {
    &core_handles().registry
}

/// Pre-resolved handles for the metric families the execution stack
/// updates on its hot paths. Resolved exactly once per process; all
/// updates through these are single relaxed atomic adds.
pub struct CoreMetrics {
    registry: MetricsRegistry,
    /// `sdfg_launches_total{backend="cpu"}` — executor/runtime runs.
    pub launches: Counter,
    /// `sdfg_launch_duration_ms{backend="cpu"}` — per-run wall time.
    pub launch_duration_ms: Histogram,
    /// `sdfg_plan_cache_hits_total`.
    pub plan_cache_hits: Counter,
    /// `sdfg_plan_cache_misses_total`.
    pub plan_cache_misses: Counter,
    /// `sdfg_pool_acquires_total`.
    pub pool_acquires: Counter,
    /// `sdfg_pool_reuses_total`.
    pub pool_reuses: Counter,
    /// `sdfg_bytes_moved_total{direction="local"}` — copies/writebacks.
    pub bytes_local: Counter,
    /// `sdfg_bytes_moved_total{direction="h2d"}`.
    pub bytes_h2d: Counter,
    /// `sdfg_bytes_moved_total{direction="d2h"}`.
    pub bytes_d2h: Counter,
    /// `sdfg_sched_tiles_total`.
    pub sched_tiles: Counter,
    /// `sdfg_sched_steals_total`.
    pub sched_steals: Counter,
    /// `sdfg_states_executed_total`.
    pub states_executed: Counter,
    /// `sdfg_map_launches_total{schedule="sequential"}`.
    pub map_launches_seq: Counter,
    /// `sdfg_map_launches_total{schedule="parallel"}`.
    pub map_launches_par: Counter,
    /// `sdfg_opt_passes_total{outcome="applied"}`.
    pub opt_applied: Counter,
    /// `sdfg_opt_passes_total{outcome="rolled_back"}`.
    pub opt_rolled_back: Counter,
    /// `sdfg_interp_runs_total`.
    pub interp_runs: Counter,
    /// `sdfg_autotune_trials_total{outcome="improved"}` — trial beat the
    /// incumbent configuration.
    pub autotune_improved: Counter,
    /// `sdfg_autotune_trials_total{outcome="no_gain"}` — trial measured
    /// correct but not faster.
    pub autotune_no_gain: Counter,
    /// `sdfg_autotune_trials_total{outcome="rejected"}` — trial discarded
    /// (optimization failed or results diverged from the reference).
    pub autotune_rejected: Counter,
    /// `sdfg_jit_compiles_total` — map bodies compiled to native code by
    /// the JIT tier (cache misses that invoked the system C compiler).
    pub jit_compiles: Counter,
    /// `sdfg_jit_cache_hits_total` — JIT kernel requests served from the
    /// in-process registry or the on-disk artifact cache.
    pub jit_cache_hits: Counter,
    /// `sdfg_jit_fallbacks_total` — JIT-eligible bodies that fell back to
    /// the VM tier (no compiler, failed compile/dlopen, or `SDFG_JIT=off`).
    pub jit_fallbacks: Counter,
    /// `sdfg_nest_calls_total` — whole-nest native kernel invocations
    /// (collapsed interstate loops plus tile→nest-call map dispatches).
    pub nest_calls: Counter,
    /// `sdfg_nest_points_total` — map-body points executed inside
    /// whole-nest native kernels.
    pub nest_points: Counter,
    /// `sdfg_interstate_evals_total` — interstate edge conditions
    /// evaluated by the state-machine driver (collapsed loops skip their
    /// per-iteration share).
    pub interstate_evals: Counter,
}

/// The process-global core handles.
pub fn core() -> &'static CoreMetrics {
    core_handles()
}

/// Pre-resolved handles for the serving layer's metric families
/// (`crates/serve`). Registered in the same global registry as the core
/// families, so one `GET /metrics` exposition carries both. Resolved
/// lazily — batch processes that never serve pay nothing.
pub struct ServeMetrics {
    /// `sdfg_serve_requests_total{endpoint="submit"}`.
    pub requests_submit: Counter,
    /// `sdfg_serve_requests_total{endpoint="invoke"}`.
    pub requests_invoke: Counter,
    /// `sdfg_serve_requests_total{endpoint="other"}` — metrics, health,
    /// listings, and anything unrecognized.
    pub requests_other: Counter,
    /// `sdfg_serve_rejected_total{reason="queue_full"}` — admission-queue
    /// overflow, shed with 429.
    pub rejected_queue: Counter,
    /// `sdfg_serve_rejected_total{reason="tenant_cap"}` — per-tenant
    /// in-flight cap, shed with 429.
    pub rejected_tenant: Counter,
    /// `sdfg_serve_rejected_total{reason="timeout"}` — invoke cancelled at
    /// its wall-clock deadline, reported as 504.
    pub rejected_timeout: Counter,
    /// `sdfg_serve_inflight` — invokes currently executing or queued.
    pub inflight: Gauge,
    /// `sdfg_serve_request_duration_ms` — end-to-end invoke latency.
    pub request_duration_ms: Histogram,
}

/// The process-global serving-layer handles.
pub fn serve() -> &'static ServeMetrics {
    static SERVE: OnceLock<ServeMetrics> = OnceLock::new();
    SERVE.get_or_init(|| {
        let r = global();
        let endpoint = |which: &str| {
            r.counter(
                "sdfg_serve_requests_total",
                "Serving-layer requests by endpoint.",
                &[("endpoint", which)],
            )
        };
        let rejected = |reason: &str| {
            r.counter(
                "sdfg_serve_rejected_total",
                "Serving-layer requests shed, by reason (queue_full, tenant_cap, timeout).",
                &[("reason", reason)],
            )
        };
        ServeMetrics {
            requests_submit: endpoint("submit"),
            requests_invoke: endpoint("invoke"),
            requests_other: endpoint("other"),
            rejected_queue: rejected("queue_full"),
            rejected_tenant: rejected("tenant_cap"),
            rejected_timeout: rejected("timeout"),
            inflight: r.gauge(
                "sdfg_serve_inflight",
                "Invoke requests currently queued or executing.",
                &[],
            ),
            request_duration_ms: r.histogram(
                "sdfg_serve_request_duration_ms",
                "End-to-end invoke latency at the serving layer, milliseconds.",
                &[],
                &default_duration_buckets_ms(),
            ),
        }
    })
}

fn core_handles() -> &'static CoreMetrics {
    static CORE: OnceLock<CoreMetrics> = OnceLock::new();
    CORE.get_or_init(|| {
        let r = MetricsRegistry::new();
        let launches = r.counter(
            "sdfg_launches_total",
            "Executor/runtime run invocations by backend.",
            &[("backend", "cpu")],
        );
        let launch_duration_ms = r.histogram(
            "sdfg_launch_duration_ms",
            "End-to-end wall time of executor runs, milliseconds.",
            &[("backend", "cpu")],
            &default_duration_buckets_ms(),
        );
        let plan_cache_hits = r.counter(
            "sdfg_plan_cache_hits_total",
            "Plan-cache lookups that found an existing lowered plan.",
            &[],
        );
        let plan_cache_misses = r.counter(
            "sdfg_plan_cache_misses_total",
            "Plan-cache lookups that lowered a fresh plan.",
            &[],
        );
        let pool_acquires = r.counter("sdfg_pool_acquires_total", "Buffer-pool acquisitions.", &[]);
        let pool_reuses = r.counter(
            "sdfg_pool_reuses_total",
            "Buffer-pool acquisitions served by recycling.",
            &[],
        );
        let bytes = |dir: &str| {
            r.counter(
                "sdfg_bytes_moved_total",
                "Bytes moved, by direction (local copies, host-to-device, device-to-host).",
                &[("direction", dir)],
            )
        };
        let bytes_local = bytes("local");
        let bytes_h2d = bytes("h2d");
        let bytes_d2h = bytes("d2h");
        let sched_tiles = r.counter(
            "sdfg_sched_tiles_total",
            "Tiles executed by the work-stealing scheduler.",
            &[],
        );
        let sched_steals = r.counter(
            "sdfg_sched_steals_total",
            "Tiles acquired by stealing from another worker's deque.",
            &[],
        );
        let states_executed =
            r.counter("sdfg_states_executed_total", "SDFG state executions.", &[]);
        let map_launches_seq = r.counter(
            "sdfg_map_launches_total",
            "Map-scope launches by schedule class.",
            &[("schedule", "sequential")],
        );
        let map_launches_par = r.counter(
            "sdfg_map_launches_total",
            "Map-scope launches by schedule class.",
            &[("schedule", "parallel")],
        );
        let opt_applied = r.counter(
            "sdfg_opt_passes_total",
            "Optimization passes by outcome.",
            &[("outcome", "applied")],
        );
        let opt_rolled_back = r.counter(
            "sdfg_opt_passes_total",
            "Optimization passes by outcome.",
            &[("outcome", "rolled_back")],
        );
        let interp_runs = r.counter(
            "sdfg_interp_runs_total",
            "Reference-interpreter run invocations.",
            &[],
        );
        let autotune = |outcome: &str| {
            r.counter(
                "sdfg_autotune_trials_total",
                "Autotuner trials by outcome (improved, no_gain, rejected).",
                &[("outcome", outcome)],
            )
        };
        let autotune_improved = autotune("improved");
        let autotune_no_gain = autotune("no_gain");
        let autotune_rejected = autotune("rejected");
        let jit_compiles = r.counter(
            "sdfg_jit_compiles_total",
            "Map bodies compiled to native code by the JIT tier.",
            &[],
        );
        let jit_cache_hits = r.counter(
            "sdfg_jit_cache_hits_total",
            "JIT kernel requests served from the in-process or on-disk cache.",
            &[],
        );
        let jit_fallbacks = r.counter(
            "sdfg_jit_fallbacks_total",
            "JIT-eligible map bodies that fell back to the VM tier.",
            &[],
        );
        let nest_calls = r.counter(
            "sdfg_nest_calls_total",
            "Whole-nest native kernel invocations (loop collapses and tile dispatches).",
            &[],
        );
        let nest_points = r.counter(
            "sdfg_nest_points_total",
            "Map-body points executed inside whole-nest native kernels.",
            &[],
        );
        let interstate_evals = r.counter(
            "sdfg_interstate_evals_total",
            "Interstate edge conditions evaluated by the state-machine driver.",
            &[],
        );
        CoreMetrics {
            registry: r,
            launches,
            launch_duration_ms,
            plan_cache_hits,
            plan_cache_misses,
            pool_acquires,
            pool_reuses,
            bytes_local,
            bytes_h2d,
            bytes_d2h,
            sched_tiles,
            sched_steals,
            states_executed,
            map_launches_seq,
            map_launches_par,
            opt_applied,
            opt_rolled_back,
            interp_runs,
            autotune_improved,
            autotune_no_gain,
            autotune_rejected,
            jit_compiles,
            jit_cache_hits,
            jit_fallbacks,
            nest_calls,
            nest_points,
            interstate_evals,
        }
    })
}

/// Checks a Prometheus text exposition for structural validity: every
/// non-comment line is `name[{labels}] value`, every samples' family has
/// `# TYPE`, histogram buckets are cumulative and end in `+Inf`.
/// Returns the set of family names on success.
pub fn validate_exposition(text: &str) -> Result<Vec<String>, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: Vec<String> = Vec::new();
    // name -> (labels-sans-le -> (last cumulative value, saw +Inf))
    let mut hist_state: BTreeMap<String, (u64, bool)> = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| Err(format!("line {}: {m}: {line:?}", ln + 1));
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return err("malformed TYPE".into());
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return err(format!("unknown metric type {kind:?}"));
            }
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_labels, value) = match line.rsplit_once(' ') {
            Some(p) => p,
            None => return err("no value".into()),
        };
        if value.parse::<f64>().is_err() {
            return err(format!("unparseable value {value:?}"));
        }
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                if !rest.ends_with('}') {
                    return err("unterminated label block".into());
                }
                (n, &rest[..rest.len() - 1])
            }
            None => (name_labels, ""),
        };
        if !valid_metric_name(name) {
            return err(format!("invalid metric name {name:?}"));
        }
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.get(*b).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !typed.contains_key(base) {
            return err(format!("sample for untyped family {base:?}"));
        }
        if !seen.contains(&base.to_string()) {
            seen.push(base.to_string());
        }
        if name.ends_with("_bucket") && typed.get(base).map(String::as_str) == Some("histogram") {
            let mut le = None;
            let mut rest_labels: Vec<&str> = Vec::new();
            for part in labels.split(',').filter(|p| !p.is_empty()) {
                match part.split_once('=') {
                    Some(("le", v)) => le = Some(v.trim_matches('"').to_string()),
                    _ => rest_labels.push(part),
                }
            }
            let Some(le) = le else {
                return err("histogram bucket without le".into());
            };
            if le != "+Inf" && le.parse::<f64>().is_err() {
                return err(format!("unparseable le {le:?}"));
            }
            let key = format!("{base}{{{}}}", rest_labels.join(","));
            let v = value.parse::<f64>().unwrap() as u64;
            let entry = hist_state.entry(key).or_insert((0, false));
            if v < entry.0 {
                return err("histogram buckets not cumulative".into());
            }
            entry.0 = v;
            if le == "+Inf" {
                entry.1 = true;
            }
        }
    }
    for (series, (_, inf)) in hist_state.iter() {
        if !inf {
            return Err(format!("histogram series {series} has no +Inf bucket"));
        }
    }
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_increments_sum_correctly() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_total", "test", &[]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(r.counter_value("t_total", &[]), Some(80_000));
    }

    #[test]
    fn same_name_and_labels_resolve_to_same_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "x", &[("k", "v"), ("a", "b")]);
        // Label order must not matter.
        let b = r.counter("x_total", "x", &[("a", "b"), ("k", "v")]);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        let c = r.counter("x_total", "x", &[("a", "b"), ("k", "other")]);
        c.add(1);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = Histogram::with_bounds(&[1.0, 5.0, 10.0]);
        h.observe(0.5); // bucket le=1
        h.observe(1.0); // le=1 (inclusive upper bound)
        h.observe(1.01); // le=5
        h.observe(10.0); // le=10
        h.observe(11.0); // +Inf
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 23.51).abs() < 1e-6);
        // Quantiles are monotone and clamp to the last bound.
        assert!(h.quantile(0.05) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert_eq!(h.quantile(1.0), 10.0);
    }

    #[test]
    fn exposition_format_parses() {
        let r = MetricsRegistry::new();
        r.counter("a_total", "counts \"a\"\nnewline", &[("k", "v\"q")])
            .add(2);
        r.gauge("g", "a gauge", &[]).set(-3);
        let h = r.histogram("d_ms", "durations", &[("backend", "cpu")], &[0.5, 2.0]);
        h.observe(0.4);
        h.observe(3.0);
        let text = r.render_prometheus();
        let fams = validate_exposition(&text).expect("valid exposition");
        assert_eq!(fams, vec!["a_total", "d_ms", "g"]);
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{k=\"v\\\"q\"} 2"));
        assert!(text.contains("g -3"));
        assert!(text.contains("d_ms_bucket{backend=\"cpu\",le=\"0.5\"} 1"));
        assert!(text.contains("d_ms_bucket{backend=\"cpu\",le=\"+Inf\"} 2"));
        assert!(text.contains("d_ms_count{backend=\"cpu\"} 2"));
        assert!(text.contains("help") || text.contains("# HELP"));
    }

    #[test]
    fn global_preregisters_required_families_at_zero() {
        let text = global().render_prometheus();
        for fam in [
            "sdfg_launches_total",
            "sdfg_plan_cache_hits_total",
            "sdfg_bytes_moved_total",
            "sdfg_sched_steals_total",
            "sdfg_launch_duration_ms",
        ] {
            assert!(
                text.contains(&format!("# TYPE {fam} ")),
                "missing family {fam} in:\n{text}"
            );
        }
        assert!(text.contains("sdfg_bytes_moved_total{direction=\"h2d\"}"));
        validate_exposition(&text).expect("global exposition valid");
    }

    #[test]
    fn validator_rejects_malformed() {
        assert!(validate_exposition("no_type_metric 1\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na notanumber\n").is_err());
        let non_cumulative = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n";
        assert!(validate_exposition(non_cumulative).is_err());
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n";
        assert!(validate_exposition(no_inf).is_err());
    }

    #[test]
    fn log_buckets_are_geometric() {
        let b = log_buckets(1.0, 2.0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
    }
}
