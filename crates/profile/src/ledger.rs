//! Run ledger: an append-only JSONL history of executor runs.
//!
//! When enabled (the `SDFG_RUN_LOG` environment variable, or
//! [`set_path`] — e.g. the harness `--ledger` flag), every
//! `Executor::run` / `Runtime` dispatch appends exactly one JSON object
//! line describing the run: what ran (content hash, target, opt level,
//! thread count), how long it took, and the per-run deltas of the cheap
//! counters (cache hits, pool reuse, bytes moved, scheduler
//! tiles/steals). The format is one self-contained JSON object per
//! line, so downstream consumers (the planned autotuner and service
//! PRs) can tail it without any framing protocol.
//!
//! Disabled is the default and costs one relaxed atomic load per run.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// One run's record. All counter fields are per-run deltas, not
/// executor-lifetime totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunRecord {
    /// Process-wide run sequence number (0-based, assigned on append).
    pub seq: u64,
    /// SDFG content hash (hex, as produced by the executor).
    pub content_hash: String,
    /// Target assignment ("cpu", or the runtime's backend set).
    pub target: String,
    /// Optimization level the executor ran with.
    pub opt_level: String,
    /// Worker threads configured for the run.
    pub nthreads: usize,
    /// End-to-end wall time, milliseconds.
    pub wall_ms: f64,
    /// Plan-cache hits during this run.
    pub plan_cache_hits: u64,
    /// Plan-cache misses during this run.
    pub plan_cache_misses: u64,
    /// Buffer-pool acquisitions during this run.
    pub pool_acquires: u64,
    /// Acquisitions served by recycling during this run.
    pub pool_reuses: u64,
    /// Bytes moved by local copies/writebacks.
    pub bytes_moved: u64,
    /// Bytes moved host → device.
    pub h2d_bytes: u64,
    /// Bytes moved device → host.
    pub d2h_bytes: u64,
    /// Scheduler tiles executed.
    pub sched_tiles: u64,
    /// Scheduler tiles acquired by stealing.
    pub sched_steals: u64,
    /// States executed.
    pub states_executed: u64,
    /// Map scopes launched.
    pub map_launches: u64,
    /// Whole-nest native kernel invocations (collapsed loops + tile
    /// dispatches).
    pub nest_calls: u64,
    /// Map-body points executed inside nest kernels.
    pub nest_points: u64,
    /// Interstate edge conditions evaluated by the state-machine driver.
    pub interstate_evals: u64,
    /// Serving-layer tenant the run belonged to (empty outside a request
    /// scope; omitted from the JSON when empty).
    pub tenant: String,
    /// Serving-layer request id (empty outside a request scope; omitted
    /// from the JSON when empty).
    pub request_id: String,
}

impl RunRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"content_hash\":\"{}\",\"target\":\"{}\",\
             \"opt_level\":\"{}\",\"nthreads\":{},\"wall_ms\":{:.6},\
             \"plan_cache_hits\":{},\"plan_cache_misses\":{},\
             \"pool_acquires\":{},\"pool_reuses\":{},\
             \"bytes_moved\":{},\"h2d_bytes\":{},\"d2h_bytes\":{},\
             \"sched_tiles\":{},\"sched_steals\":{},\
             \"states_executed\":{},\"map_launches\":{},\
             \"nest_calls\":{},\"nest_points\":{},\"interstate_evals\":{}",
            self.seq,
            escape(&self.content_hash),
            escape(&self.target),
            escape(&self.opt_level),
            self.nthreads,
            self.wall_ms,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.pool_acquires,
            self.pool_reuses,
            self.bytes_moved,
            self.h2d_bytes,
            self.d2h_bytes,
            self.sched_tiles,
            self.sched_steals,
            self.states_executed,
            self.map_launches,
            self.nest_calls,
            self.nest_points,
            self.interstate_evals,
        );
        // Request tags are additive so existing ledger consumers (which
        // check only the required fields) keep parsing batch-run records.
        if !self.tenant.is_empty() {
            out.push_str(&format!(",\"tenant\":\"{}\"", escape(&self.tenant)));
        }
        if !self.request_id.is_empty() {
            out.push_str(&format!(",\"request_id\":\"{}\"", escape(&self.request_id)));
        }
        out.push('}');
        out
    }
}

/// One autotuner trial's record. Trial lines share the run ledger's file
/// and sequence space but carry a `"record":"autotune_trial"` discriminator
/// as their first field (plain run records have no `record` field), so
/// consumers can split the streams without framing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrialRecord {
    /// Process-wide ledger sequence number (assigned on append).
    pub seq: u64,
    /// Kernel under tuning.
    pub kernel: String,
    /// Unoptimized-graph content hash (hex) — the tuning-DB key.
    pub content_hash: String,
    /// Backend target tag.
    pub target: String,
    /// Worker threads.
    pub nthreads: usize,
    /// Search stage (knob name) this trial belongs to.
    pub stage: String,
    /// Candidate label (e.g. `seq<16384`).
    pub candidate: String,
    /// The candidate configuration, as its canonical JSON object text.
    pub config_json: String,
    /// Measured warm time of this trial, milliseconds (0 when rejected
    /// before measurement).
    pub warm_ms: f64,
    /// Incumbent-best warm time when the trial ran, milliseconds.
    pub best_ms: f64,
    /// Outcome: `improved`, `no_gain`, or `rejected`.
    pub outcome: String,
}

impl TrialRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let config = if self.config_json.is_empty() {
            "{}"
        } else {
            &self.config_json
        };
        format!(
            "{{\"record\":\"autotune_trial\",\"seq\":{},\"kernel\":\"{}\",\
             \"content_hash\":\"{}\",\"target\":\"{}\",\"nthreads\":{},\
             \"stage\":\"{}\",\"candidate\":\"{}\",\"config\":{},\
             \"warm_ms\":{:.6},\"best_ms\":{:.6},\"outcome\":\"{}\"}}",
            self.seq,
            escape(&self.kernel),
            escape(&self.content_hash),
            escape(&self.target),
            self.nthreads,
            escape(&self.stage),
            escape(&self.candidate),
            config,
            self.warm_ms,
            self.best_ms,
            escape(&self.outcome),
        )
    }
}

/// One JIT-tier fallback event: a map body that was eligible for native
/// compilation but ran in the VM tier instead. Shares the ledger file and
/// sequence space with run records, carrying a `"record":"jit_fallback"`
/// discriminator as its first field.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JitFallbackRecord {
    /// Process-wide ledger sequence number (assigned on append).
    pub seq: u64,
    /// Content hash (hex) of the graph whose map fell back.
    pub content_hash: String,
    /// Map label (state/entry-node scope name) when known.
    pub map: String,
    /// Why the JIT tier was not used (`no_compiler`, `compile_failed`,
    /// `dlopen_failed`, `disabled`, ...).
    pub reason: String,
    /// Free-form detail (compiler stderr excerpt, dlerror text; may be
    /// empty).
    pub detail: String,
}

impl JitFallbackRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"record\":\"jit_fallback\",\"seq\":{},\"content_hash\":\"{}\",\
             \"map\":\"{}\",\"reason\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            escape(&self.content_hash),
            escape(&self.map),
            escape(&self.reason),
            escape(&self.detail),
        )
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

thread_local! {
    /// The serving layer's active (tenant, request id) pair for this
    /// thread; see [`request_scope`].
    static REQUEST_SCOPE: std::cell::RefCell<Option<(String, String)>> =
        const { std::cell::RefCell::new(None) };
}

/// RAII guard from [`request_scope`]: clears (or restores) the thread's
/// request tags on drop.
pub struct RequestScope {
    prev: Option<(String, String)>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST_SCOPE.with(|scope| *scope.borrow_mut() = self.prev.take());
    }
}

/// Tags every [`RunRecord`] appended from this thread with a tenant and
/// request id until the returned guard drops. The serving layer wraps
/// each request's execution in one of these, so engine-level ledger
/// appends (which know nothing about HTTP) come out attributed. Scopes
/// nest; the previous scope is restored on drop.
pub fn request_scope(tenant: &str, request_id: &str) -> RequestScope {
    let prev = REQUEST_SCOPE.with(|scope| {
        scope
            .borrow_mut()
            .replace((tenant.to_string(), request_id.to_string()))
    });
    RequestScope { prev }
}

struct Sink {
    /// None = disabled. `set_path` wins over the environment.
    path: Mutex<Option<PathBuf>>,
    /// Fast-path flag mirroring `path.is_some()`.
    enabled: AtomicBool,
    seq: AtomicU64,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| {
        let path = std::env::var_os("SDFG_RUN_LOG")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        Sink {
            enabled: AtomicBool::new(path.is_some()),
            path: Mutex::new(path),
            seq: AtomicU64::new(0),
        }
    })
}

/// True when runs are being recorded (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    sink().enabled.load(Ordering::Relaxed)
}

/// Points the ledger at `path` (append mode; created if missing), or
/// disables it with `None`. Overrides `SDFG_RUN_LOG`.
pub fn set_path(path: Option<&Path>) {
    let s = sink();
    *s.path.lock().unwrap_or_else(|p| p.into_inner()) = path.map(Path::to_path_buf);
    s.enabled.store(path.is_some(), Ordering::Relaxed);
}

/// The active ledger path, if any.
pub fn path() -> Option<PathBuf> {
    sink()
        .path
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clone()
}

/// Appends one record (assigning its `seq`), returning the sequence
/// number. A no-op returning `None` when disabled; I/O errors are
/// reported once on stderr and otherwise swallowed — observability must
/// never fail a run.
pub fn append(rec: &mut RunRecord) -> Option<u64> {
    let s = sink();
    if !s.enabled.load(Ordering::Relaxed) {
        return None;
    }
    // Stamp the thread's active request scope (serving layer) unless the
    // caller tagged the record itself.
    if rec.tenant.is_empty() && rec.request_id.is_empty() {
        REQUEST_SCOPE.with(|scope| {
            if let Some((tenant, request_id)) = &*scope.borrow() {
                rec.tenant = tenant.clone();
                rec.request_id = request_id.clone();
            }
        });
    }
    let path = s.path.lock().unwrap_or_else(|p| p.into_inner()).clone()?;
    rec.seq = s.seq.fetch_add(1, Ordering::Relaxed);
    let line = rec.to_json();
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = res {
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "sdfg-profile: run ledger write to {} failed: {e}",
                path.display()
            );
        }
    }
    Some(rec.seq)
}

/// Appends one autotuner trial record (assigning its `seq` from the same
/// sequence as run records), returning the sequence number. No-op when the
/// ledger is disabled; I/O errors are swallowed like [`append`]'s.
pub fn append_trial(rec: &mut TrialRecord) -> Option<u64> {
    let s = sink();
    if !s.enabled.load(Ordering::Relaxed) {
        return None;
    }
    let path = s.path.lock().unwrap_or_else(|p| p.into_inner()).clone()?;
    rec.seq = s.seq.fetch_add(1, Ordering::Relaxed);
    let line = rec.to_json();
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = res {
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "sdfg-profile: run ledger write to {} failed: {e}",
                path.display()
            );
        }
    }
    Some(rec.seq)
}

/// Appends one JIT-fallback record (assigning its `seq` from the shared
/// sequence), returning the sequence number. No-op when the ledger is
/// disabled; I/O errors are swallowed like [`append`]'s.
pub fn append_jit_fallback(rec: &mut JitFallbackRecord) -> Option<u64> {
    let s = sink();
    if !s.enabled.load(Ordering::Relaxed) {
        return None;
    }
    let path = s.path.lock().unwrap_or_else(|p| p.into_inner()).clone()?;
    rec.seq = s.seq.fetch_add(1, Ordering::Relaxed);
    let line = rec.to_json();
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = res {
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "sdfg-profile: run ledger write to {} failed: {e}",
                path.display()
            );
        }
    }
    Some(rec.seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_fallback_record_renders_discriminated_json() {
        let rec = JitFallbackRecord {
            seq: 0,
            content_hash: "aa01".into(),
            map: "mult[i,j]".into(),
            reason: "no_compiler".into(),
            detail: "cc: not found".into(),
        };
        let j = rec.to_json();
        assert!(j.starts_with("{\"record\":\"jit_fallback\""));
        assert!(j.contains("\"reason\":\"no_compiler\""));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn trial_record_renders_discriminated_json() {
        let rec = TrialRecord {
            seq: 0,
            kernel: "atax".into(),
            content_hash: "00ff".into(),
            target: "cpu".into(),
            nthreads: 8,
            stage: "seq_threshold".into(),
            candidate: "seq<16384".into(),
            config_json: "{\"fusion\":true}".into(),
            warm_ms: 1.5,
            best_ms: 1.25,
            outcome: "no_gain".into(),
        };
        let j = rec.to_json();
        assert!(j.starts_with("{\"record\":\"autotune_trial\""));
        assert!(j.contains("\"config\":{\"fusion\":true}"));
        assert!(j.contains("\"outcome\":\"no_gain\""));
        assert!(!j.contains('\n'));
        // Empty config text still renders valid JSON.
        assert!(TrialRecord::default().to_json().contains("\"config\":{}"));
    }

    #[test]
    fn record_renders_valid_minimal_json() {
        let rec = RunRecord {
            content_hash: "00ff".into(),
            target: "cpu".into(),
            opt_level: "O2\"x".into(),
            nthreads: 4,
            wall_ms: 1.25,
            plan_cache_hits: 1,
            ..Default::default()
        };
        let j = rec.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"content_hash\":\"00ff\""));
        assert!(j.contains("\"opt_level\":\"O2\\\"x\""));
        assert!(j.contains("\"wall_ms\":1.250000"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn append_writes_one_line_per_record_with_increasing_seq() {
        let dir = std::env::temp_dir().join(format!("sdfg-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        set_path(Some(&path));
        assert!(enabled());
        let mut a = RunRecord::default();
        let mut b = RunRecord::default();
        let sa = append(&mut a).unwrap();
        let sb = append(&mut b).unwrap();
        assert!(sb > sa);
        set_path(None);
        assert!(!enabled());
        assert!(append(&mut RunRecord::default()).is_none());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        let _ = std::fs::remove_file(&path);
    }
}
