//! Flight recorder: bounded per-worker ring buffers of compact
//! structured events.
//!
//! Each thread that records owns a private ring (registered globally on
//! first use) holding the most recent [`RING_CAP`] events; old events
//! are overwritten, so the recorder always answers "what happened just
//! now" without unbounded memory. Recording is sampled: the
//! `SDFG_TRACE_SAMPLE` environment variable (a rate in `(0, 1]`; unset
//! or `0` disables) is folded into a per-thread stride, so a disabled
//! recorder costs one relaxed atomic load per call site and an enabled
//! one records every ⌈1/rate⌉-th event per thread.
//!
//! Timestamps come from the shared process epoch
//! ([`crate::process_epoch`]), so events from every thread, executor,
//! and nested SDFG land on one timeline. [`drain`] empties all rings;
//! [`chrome_trace`] and [`jsonl`] render the drained events.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::epoch_ns;

/// Per-thread ring capacity (events). 64 Ki × 40 B ≈ 2.5 MiB per
/// recording thread, bounded regardless of run length.
pub const RING_CAP: usize = 65536;

/// What happened. Payload meaning (`a`, `b`) is per-kind and documented
/// on each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Executor run began; `a` = low 64 bits of the SDFG content hash.
    LaunchBegin,
    /// Executor run ended; `a` = content hash, `b` = states executed.
    LaunchEnd,
    /// One scheduler tile ran; `a` = tile index, `b` = points.
    TileRun,
    /// A tile was stolen; `a` = victim worker slot.
    Steal,
    /// Plan-cache hit; `a` = plan hash.
    PlanCacheHit,
    /// Plan-cache miss (fresh lowering); `a` = plan hash.
    PlanCacheMiss,
    /// Buffer-pool acquire; `a` = length, `b` = 1 if served by reuse.
    PoolAcquire,
    /// Buffer-pool release; `a` = capacity.
    PoolRelease,
    /// Host↔device transfer; `a` = bytes, `b` = 0 for h2d / 1 for d2h.
    Transfer,
    /// Optimization pass applied; `a` = pass index in the pipeline.
    OptApplied,
    /// Optimization pass rolled back; `a` = pass index.
    OptRolledBack,
    /// One state executed; `a` = state id.
    StateRun,
    /// One map scope launched; `a` = state id, `b` = map-entry node id.
    MapLaunch,
    /// Interpreter run completed; `a` = states executed.
    InterpRun,
}

impl EventKind {
    /// Short name used in rendered output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::LaunchBegin => "launch_begin",
            EventKind::LaunchEnd => "launch_end",
            EventKind::TileRun => "tile_run",
            EventKind::Steal => "steal",
            EventKind::PlanCacheHit => "cache_hit",
            EventKind::PlanCacheMiss => "cache_miss",
            EventKind::PoolAcquire => "pool_acquire",
            EventKind::PoolRelease => "pool_release",
            EventKind::Transfer => "transfer",
            EventKind::OptApplied => "opt_applied",
            EventKind::OptRolledBack => "opt_rolled_back",
            EventKind::StateRun => "state_run",
            EventKind::MapLaunch => "map_launch",
            EventKind::InterpRun => "interp_run",
        }
    }
}

/// One recorded event. 40 bytes, `Copy`, no heap.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Nanoseconds since the process epoch.
    pub t_ns: u64,
    /// Duration (0 for instant events).
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

struct Ring {
    lane: u32,
    buf: Mutex<VecDeque<Event>>,
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Sampling stride: 0 = disabled, N = record every Nth event per
/// thread. `u32::MAX` marks "not yet resolved from the environment".
static STRIDE: AtomicU32 = AtomicU32::new(u32::MAX);

fn rate_to_stride(rate: f64) -> u32 {
    if !rate.is_finite() || rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        1
    } else {
        (1.0 / rate).round().max(1.0).min(u32::MAX as f64 - 1.0) as u32
    }
}

fn stride() -> u32 {
    let s = STRIDE.load(Ordering::Relaxed);
    if s != u32::MAX {
        return s;
    }
    let v = std::env::var("SDFG_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map(rate_to_stride)
        .unwrap_or(0);
    STRIDE.store(v, Ordering::Relaxed);
    v
}

/// True when the recorder is capturing (cheap; callers may skip
/// payload computation when false).
#[inline]
pub fn enabled() -> bool {
    stride() != 0
}

/// Programmatically sets the sampling rate (overrides
/// `SDFG_TRACE_SAMPLE`). `0.0` disables, `1.0` records everything.
pub fn set_sample_rate(rate: f64) {
    STRIDE.store(rate_to_stride(rate), Ordering::Relaxed);
}

thread_local! {
    static LANE_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    static SAMPLE_COUNT: Cell<u64> = const { Cell::new(0) };
}

fn with_ring(f: impl FnOnce(&Ring)) {
    LANE_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
            let ring = Arc::new(Ring {
                lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
                buf: Mutex::new(VecDeque::with_capacity(64)),
            });
            rings()
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(ring.clone());
            ring
        });
        f(ring);
    });
}

fn push(ev: Event) {
    with_ring(|ring| {
        let mut buf = ring.buf.lock().unwrap_or_else(|p| p.into_inner());
        if buf.len() >= RING_CAP {
            buf.pop_front();
        }
        buf.push_back(ev);
    });
}

/// Applies the per-thread sampling stride; true when this event should
/// be recorded.
fn sampled() -> bool {
    let s = stride();
    if s == 0 {
        return false;
    }
    SAMPLE_COUNT.with(|c| {
        let n = c.get();
        c.set(n + 1);
        n % s as u64 == 0
    })
}

/// Records an instant event (subject to sampling).
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    if !sampled() {
        return;
    }
    push(Event {
        t_ns: epoch_ns(),
        dur_ns: 0,
        kind,
        a,
        b,
    });
}

/// Records a closed span that started at `t0_ns` (process-epoch
/// relative) and lasted `dur_ns` (subject to sampling).
#[inline]
pub fn record_span(kind: EventKind, t0_ns: u64, dur_ns: u64, a: u64, b: u64) {
    if !sampled() {
        return;
    }
    push(Event {
        t_ns: t0_ns,
        dur_ns,
        kind,
        a,
        b,
    });
}

/// Drains every ring, returning `(lane, events)` per recording thread,
/// sorted by lane. Rings stay registered; subsequent events accumulate
/// for the next drain.
pub fn drain() -> Vec<(u32, Vec<Event>)> {
    let rings = rings().lock().unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<(u32, Vec<Event>)> = rings
        .iter()
        .map(|r| {
            let mut buf = r.buf.lock().unwrap_or_else(|p| p.into_inner());
            (r.lane, buf.drain(..).collect())
        })
        .collect();
    out.sort_by_key(|(lane, _)| *lane);
    out
}

/// Renders drained events as a Chrome trace-event JSON array (`pid` 0,
/// one `tid` per lane): complete (`"X"`) events for spans, instant
/// (`"i"`) events otherwise.
pub fn chrome_trace(lanes: &[(u32, Vec<Event>)]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push_ev = |ev: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&ev);
    };
    push_ev(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"sdfg flight recorder\"}}"
            .to_string(),
    );
    for (lane, events) in lanes {
        push_ev(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
             \"args\":{{\"name\":\"lane {lane}\"}}}}"
        ));
        for ev in events {
            let common = format!(
                "\"name\":\"{}\",\"cat\":\"flight\",\"pid\":0,\"tid\":{lane},\
                 \"ts\":{:.3},\"args\":{{\"a\":{},\"b\":{}}}",
                ev.kind.name(),
                ev.t_ns as f64 / 1e3,
                ev.a,
                ev.b
            );
            if ev.dur_ns > 0 {
                push_ev(format!(
                    "{{{common},\"ph\":\"X\",\"dur\":{:.3}}}",
                    ev.dur_ns as f64 / 1e3
                ));
            } else {
                push_ev(format!("{{{common},\"ph\":\"i\",\"s\":\"t\"}}"));
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders drained events as JSONL: one object per event with `lane`,
/// `t_ns`, `dur_ns`, `kind`, `a`, `b`.
pub fn jsonl(lanes: &[(u32, Vec<Event>)]) -> String {
    let mut out = String::new();
    for (lane, events) in lanes {
        for ev in events {
            out.push_str(&format!(
                "{{\"lane\":{lane},\"t_ns\":{},\"dur_ns\":{},\"kind\":\"{}\",\
                 \"a\":{},\"b\":{}}}\n",
                ev.t_ns,
                ev.dur_ns,
                ev.kind.name(),
                ev.a,
                ev.b
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // All flight tests share process-global state (stride + rings), so
    // they run under one lock to stay order-independent.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = serial();
        set_sample_rate(0.0);
        drain();
        record(EventKind::Steal, 1, 2);
        assert!(drain().iter().all(|(_, evs)| evs.is_empty()));
    }

    #[test]
    fn rate_one_records_everything_and_drain_empties() {
        let _g = serial();
        set_sample_rate(1.0);
        drain();
        record(EventKind::PlanCacheHit, 7, 0);
        record_span(EventKind::TileRun, 100, 50, 3, 64);
        let lanes = drain();
        let evs: Vec<&Event> = lanes.iter().flat_map(|(_, e)| e).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::PlanCacheHit);
        assert_eq!((evs[1].t_ns, evs[1].dur_ns, evs[1].b), (100, 50, 64));
        // Drained means gone.
        assert!(drain().iter().all(|(_, e)| e.is_empty()));
        set_sample_rate(0.0);
    }

    #[test]
    fn sampling_stride_thins_events() {
        let _g = serial();
        set_sample_rate(0.25); // stride 4
        drain();
        // Fresh thread so the sample counter starts at 0.
        std::thread::spawn(|| {
            for i in 0..100 {
                record(EventKind::Steal, i, 0);
            }
        })
        .join()
        .unwrap();
        let n: usize = drain().iter().map(|(_, e)| e.len()).sum();
        assert_eq!(n, 25);
        set_sample_rate(0.0);
    }

    #[test]
    fn renders_chrome_and_jsonl() {
        let lanes = vec![(
            3u32,
            vec![
                Event {
                    t_ns: 1500,
                    dur_ns: 0,
                    kind: EventKind::Steal,
                    a: 1,
                    b: 0,
                },
                Event {
                    t_ns: 2000,
                    dur_ns: 500,
                    kind: EventKind::TileRun,
                    a: 9,
                    b: 64,
                },
            ],
        )];
        let trace = chrome_trace(&lanes);
        assert!(trace.starts_with("[\n"));
        assert!(trace.trim_end().ends_with(']'));
        assert!(!trace.contains(",\n]"));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"tid\":3"));
        let jl = jsonl(&lanes);
        assert_eq!(jl.lines().count(), 2);
        assert!(jl.contains("\"kind\":\"tile_run\""));
        assert!(jl.contains("\"dur_ns\":500"));
    }

    #[test]
    fn ring_is_bounded() {
        let _g = serial();
        set_sample_rate(1.0);
        drain();
        std::thread::spawn(|| {
            for i in 0..(RING_CAP + 10) {
                record(EventKind::StateRun, i as u64, 0);
            }
        })
        .join()
        .unwrap();
        let lanes = drain();
        let evs: Vec<&Event> = lanes.iter().flat_map(|(_, e)| e).collect();
        assert_eq!(evs.len(), RING_CAP);
        // Oldest events were dropped, newest kept.
        assert_eq!(evs.last().unwrap().a, (RING_CAP + 9) as u64);
        set_sample_rate(0.0);
    }
}
