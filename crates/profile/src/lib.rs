//! Instrumentation layer for SDFG execution (paper §8, "instrumentation
//! and tuning"): per-state and per-map wall-clock statistics, tasklet
//! tier breakdowns, per-worker span timelines, and bytes-moved counters,
//! with renderers for a sorted hot-path table, Chrome trace-event JSON
//! (loadable in `chrome://tracing` / Perfetto), and a DOT heat overlay.
//!
//! # Collection model
//!
//! Profiling data is collected **lock-free per worker**: each executor
//! or interpreter worker owns a plain [`WorkerProfile`] it mutates
//! without synchronisation, and hands it to the shared
//! [`ProfileCollector`] exactly once, when the worker retires
//! ([`ProfileCollector::absorb`] takes one lock per worker lifetime, not
//! per event). [`ProfileCollector::finish`] merges everything into an
//! [`InstrumentationReport`] with deterministic (sorted) ordering.
//!
//! Scopes are identified by compact [`SpanKey`]s; human-readable labels
//! are registered separately (once, at plan time) so the hot path never
//! allocates strings.
//!
//! # Observability subsystem
//!
//! Beyond on-demand span profiling, this crate hosts three always-available
//! observability layers (see DESIGN.md § Observability):
//!
//! * [`metrics`] — a process-global registry of counters/gauges/histograms
//!   with sharded atomics and Prometheus text exposition.
//! * [`flight`] — a sampled flight recorder of compact structured events
//!   in bounded per-thread rings (`SDFG_TRACE_SAMPLE`).
//! * [`ledger`] — an append-only JSONL record of every executor run
//!   (`SDFG_RUN_LOG`).
//!
//! All three share one monotonic clock base ([`process_epoch`]) with the
//! span profiler, so every artifact lands on the same timeline.

pub mod flight;
pub mod ledger;
pub mod metrics;

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The shared monotonic clock base: one `Instant` per process, fixed on
/// first use. Every collector, worker, and flight-recorder lane stamps
/// times against this epoch, so spans from nested executors and
/// concurrent runs align on one timeline.
pub fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process epoch.
pub fn epoch_ns() -> u64 {
    process_epoch().elapsed().as_nanos() as u64
}

/// Allocates the next trace process id (`pid` in Chrome traces): each
/// collector — hence each executor run, nested ones included — gets a
/// distinct pid while sharing the common time base.
fn next_pid() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// How a scope is instrumented. Mirrors `sdfg_core::Instrument` (the
/// core crate owns the annotation; this crate owns the semantics).
///
/// * `Counter` — count entries and bytes only; **no clock reads**.
/// * `Timer` — counts plus wall-clock durations and timeline spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Mode {
    /// Scope is not instrumented.
    #[default]
    Off,
    /// Entry counters only — the hot path never calls `Instant::now`.
    Counter,
    /// Full wall-clock timing and timeline spans.
    Timer,
}

/// Engine-level profiling switch: what the executor/interpreter collect
/// on the next `run`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Profiling {
    /// Collect nothing; the hot path sees a single pre-resolved branch.
    #[default]
    Off,
    /// Honor per-scope `Instrument` annotations on the SDFG.
    Annotated,
    /// Time every state and map scope regardless of annotations (what
    /// the harness `--profile` flag uses).
    ForceTimers,
}

/// Execution tier a map body ran in (engine.rs picks the fastest
/// applicable tier per map launch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// JIT-compiled native code (`cc`-compiled shared object).
    Jit = 0,
    /// Recognised kernel pattern executed as a native Rust loop.
    NativeKernel = 1,
    /// Compiled affine bytecode loop in the expression VM.
    AffineVm = 2,
    /// Per-point symbolic evaluation fallback.
    Symbolic = 3,
}

impl Tier {
    /// All tiers, in display order.
    pub const ALL: [Tier; 4] = [
        Tier::Jit,
        Tier::NativeKernel,
        Tier::AffineVm,
        Tier::Symbolic,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Jit => "jit",
            Tier::NativeKernel => "native",
            Tier::AffineVm => "affine-vm",
            Tier::Symbolic => "symbolic",
        }
    }
}

/// Identifies a profiled scope inside one SDFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKey {
    /// A state, by state id.
    State(u32),
    /// A map scope: owning state id + map-entry node id.
    Map {
        /// Owning state id.
        state: u32,
        /// Map-entry node id within the state.
        node: u32,
    },
}

/// Aggregated statistics for one scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStat {
    /// Number of times the scope was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds (0 under `Mode::Counter`).
    pub total_ns: u64,
    /// Shortest single entry, ns (`u64::MAX` until first timed entry).
    pub min_ns: u64,
    /// Longest single entry, ns.
    pub max_ns: u64,
}

impl ScopeStat {
    /// Records one timed entry.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one untimed entry (counter mode).
    pub fn bump(&mut self) {
        self.count += 1;
    }

    /// Merges another scope's statistics into this one.
    pub fn merge(&mut self, other: &ScopeStat) {
        if other.count == 0 {
            return;
        }
        let had = self.count > 0;
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = if had {
            self.min_ns.min(other.min_ns)
        } else {
            other.min_ns
        };
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean nanoseconds per entry (0 when untimed).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-tier point counts and times for one map scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierBreakdown {
    /// Map points executed per tier (indexed by `Tier as usize`).
    pub points: [u64; 4],
    /// Wall-clock ns spent per tier (0 under counter mode).
    pub ns: [u64; 4],
}

impl TierBreakdown {
    /// Adds `points` executed in `tier` over `ns` nanoseconds.
    pub fn add(&mut self, tier: Tier, points: u64, ns: u64) {
        self.points[tier as usize] += points;
        self.ns[tier as usize] += ns;
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TierBreakdown) {
        for i in 0..4 {
            self.points[i] += other.points[i];
            self.ns[i] += other.ns[i];
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.iter().all(|&p| p == 0) && self.ns.iter().all(|&n| n == 0)
    }
}

/// One closed interval on a worker's timeline (Timer mode only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Which scope ran.
    pub key: SpanKey,
    /// Worker index (0 = the driving thread).
    pub worker: u32,
    /// Start offset from the shared process epoch, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

/// Profiling data owned by a single worker; no interior synchronisation.
#[derive(Debug, Default)]
pub struct WorkerProfile {
    /// Worker index recorded into spans.
    pub worker: u32,
    /// Per-state statistics.
    pub states: HashMap<u32, ScopeStat>,
    /// Per-map statistics, keyed by `(state, map-entry node)`.
    pub maps: HashMap<(u32, u32), ScopeStat>,
    /// Per-map tier breakdowns.
    pub tiers: HashMap<(u32, u32), TierBreakdown>,
    /// Timeline spans (Timer-mode scopes only).
    pub timeline: Vec<Span>,
    /// Bytes moved by copies/writebacks observed by this worker.
    pub bytes_moved: u64,
}

impl WorkerProfile {
    /// A profile for worker `worker`.
    pub fn new(worker: u32) -> WorkerProfile {
        WorkerProfile {
            worker,
            ..Default::default()
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
            && self.maps.is_empty()
            && self.tiers.is_empty()
            && self.timeline.is_empty()
            && self.bytes_moved == 0
    }
}

/// Shared sink for worker profiles. Workers call [`absorb`] once when
/// they retire; the driving thread calls [`finish`] to produce the
/// report.
///
/// [`absorb`]: ProfileCollector::absorb
/// [`finish`]: ProfileCollector::finish
#[derive(Debug)]
pub struct ProfileCollector {
    /// When this collector was created (for [`elapsed`]); span
    /// timestamps use the shared [`process_epoch`] instead.
    ///
    /// [`elapsed`]: ProfileCollector::elapsed
    t0: Instant,
    /// Trace process id: distinct per collector, shared time base.
    pid: u32,
    labels: Mutex<HashMap<SpanKey, String>>,
    merged: Mutex<Merged>,
}

#[derive(Debug, Default)]
struct Merged {
    states: HashMap<u32, ScopeStat>,
    maps: HashMap<(u32, u32), ScopeStat>,
    tiers: HashMap<(u32, u32), TierBreakdown>,
    timeline: Vec<Span>,
    bytes_moved: u64,
    workers: u32,
}

impl Default for ProfileCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileCollector {
    /// A new collector stamping spans against the shared process epoch.
    pub fn new() -> ProfileCollector {
        // Touch the epoch first so `now_ns` is never called on an
        // uninitialised clock base.
        let _ = process_epoch();
        ProfileCollector {
            t0: Instant::now(),
            pid: next_pid(),
            labels: Mutex::new(HashMap::new()),
            merged: Mutex::new(Merged::default()),
        }
    }

    /// The shared clock base; workers compute span offsets against it.
    pub fn epoch(&self) -> Instant {
        process_epoch()
    }

    /// Nanoseconds since the shared process epoch (span timestamps).
    pub fn now_ns(&self) -> u64 {
        epoch_ns()
    }

    /// Wall time since this collector was created (per-run, not
    /// process-wide — what drivers report as the run's wall time).
    pub fn elapsed(&self) -> Duration {
        self.t0.elapsed()
    }

    /// This collector's trace process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Registers a human-readable label for a scope (idempotent; called
    /// at plan time, never on the hot path).
    pub fn register_label(&self, key: SpanKey, label: impl Into<String>) {
        self.labels
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert_with(|| label.into());
    }

    /// Merges a retiring worker's profile. One lock per worker lifetime.
    pub fn absorb(&self, wp: WorkerProfile) {
        let mut m = self.merged.lock().unwrap_or_else(|p| p.into_inner());
        m.workers += 1;
        for (k, v) in &wp.states {
            m.states.entry(*k).or_default().merge(v);
        }
        for (k, v) in &wp.maps {
            m.maps.entry(*k).or_default().merge(v);
        }
        for (k, v) in &wp.tiers {
            m.tiers.entry(*k).or_default().merge(v);
        }
        m.timeline.extend_from_slice(&wp.timeline);
        m.bytes_moved += wp.bytes_moved;
    }

    /// Produces the final report. `wall` is the end-to-end run time as
    /// measured by the driver.
    pub fn finish(self, wall: Duration) -> InstrumentationReport {
        let labels = self.labels.into_inner().unwrap_or_else(|p| p.into_inner());
        let m = self.merged.into_inner().unwrap_or_else(|p| p.into_inner());
        let mut timeline = m.timeline;
        // Deterministic ordering regardless of absorb order.
        timeline.sort_by_key(|s| (s.start_ns, s.worker, s.dur_ns));
        InstrumentationReport {
            wall,
            states: m.states.into_iter().collect(),
            maps: m.maps.into_iter().collect(),
            tiers: m.tiers.into_iter().collect(),
            timeline,
            bytes_moved: m.bytes_moved,
            workers: m.workers,
            labels,
            exec: ExecCounters::default(),
            sched: Vec::new(),
            pid: self.pid,
        }
    }
}

/// Executor-level cache/pool counters attached to a report by the engine
/// (zero for interpreter runs). Cumulative over the executor's lifetime,
/// not per-run, so repeat invocations show the hit rate climbing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Plan-cache lookups that found an existing lowered plan.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that created a fresh plan.
    pub plan_cache_misses: u64,
    /// Buffer-pool acquisitions.
    pub pool_acquires: u64,
    /// Acquisitions served by recycling a released buffer.
    pub pool_reuses: u64,
    /// Bytes of requested storage served from recycled buffers.
    pub pool_bytes_reused: u64,
}

impl ExecCounters {
    /// True when no executor counters were recorded.
    pub fn is_empty(&self) -> bool {
        *self == ExecCounters::default()
    }
}

/// One scheduler worker's cumulative counters, attached to a report by the
/// engine when the work-stealing pool has run at least one parallel launch.
/// Like [`ExecCounters`], these are cumulative over the pool's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedWorker {
    /// Worker slot (0 is the launching thread).
    pub worker: u32,
    /// Tiles this worker executed.
    pub tiles: u64,
    /// Tiles acquired by stealing from another worker's deque.
    pub steals: u64,
    /// Time spent inside launches without a tile to run.
    pub idle_ns: u64,
}

/// Host↔device traffic recorded for one runtime backend: every transfer
/// the heterogeneous dispatcher performs at a schedule boundary lands in
/// one of these counters, attributed to the device side of the copy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendBytes {
    /// Bytes moved host → device.
    pub h2d_bytes: u64,
    /// Bytes moved device → host.
    pub d2h_bytes: u64,
}

impl BackendBytes {
    /// Total bytes crossing the host↔device boundary in either direction.
    pub fn total(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }
}

/// The merged result of one instrumented run.
#[derive(Debug, Default)]
pub struct InstrumentationReport {
    /// End-to-end wall-clock time of the run.
    pub wall: Duration,
    /// Per-state statistics, sorted by state id.
    pub states: BTreeMap<u32, ScopeStat>,
    /// Per-map statistics, sorted by `(state, node)`.
    pub maps: BTreeMap<(u32, u32), ScopeStat>,
    /// Per-map tier breakdowns.
    pub tiers: BTreeMap<(u32, u32), TierBreakdown>,
    /// All timeline spans, sorted by start time.
    pub timeline: Vec<Span>,
    /// Total bytes moved by copies and writebacks.
    pub bytes_moved: u64,
    /// Number of worker profiles merged.
    pub workers: u32,
    /// Scope labels registered during planning.
    pub labels: HashMap<SpanKey, String>,
    /// Plan-cache and buffer-pool counters (executor runs only).
    pub exec: ExecCounters,
    /// Work-stealing scheduler counters per worker (executor runs that
    /// entered at least one parallel region; empty otherwise).
    pub sched: Vec<SchedWorker>,
    /// Trace process id of the collector that produced this report.
    pub pid: u32,
}

/// Renders the always-on counters footer — plan-cache/pool counters and
/// per-worker scheduler lines. This is exactly the footer
/// [`InstrumentationReport::hot_path_table`] appends, exposed standalone
/// so callers can surface the cheap counters even when profiling is
/// `Off` and no report exists. Empty when nothing was recorded.
pub fn counters_footer(exec: &ExecCounters, sched: &[SchedWorker]) -> String {
    let mut out = String::new();
    if !exec.is_empty() {
        out.push_str(&format!(
            "plan cache {} hit / {} miss | pool {} of {} acquires recycled ({})\n",
            exec.plan_cache_hits,
            exec.plan_cache_misses,
            exec.pool_reuses,
            exec.pool_acquires,
            human_bytes(exec.pool_bytes_reused)
        ));
    }
    if !sched.is_empty() {
        let tiles: u64 = sched.iter().map(|w| w.tiles).sum();
        let steals: u64 = sched.iter().map(|w| w.steals).sum();
        out.push_str(&format!(
            "sched {} tiles / {} steals across {} workers\n",
            tiles,
            steals,
            sched.len()
        ));
        for w in sched {
            out.push_str(&format!(
                "    worker {}: {} tiles, {} steals, {:.3} ms idle\n",
                w.worker,
                w.tiles,
                w.steals,
                w.idle_ns as f64 / 1e6
            ));
        }
    }
    out
}

impl InstrumentationReport {
    /// Label for a scope, falling back to a synthesised one.
    pub fn label(&self, key: SpanKey) -> String {
        if let Some(l) = self.labels.get(&key) {
            return l.clone();
        }
        match key {
            SpanKey::State(s) => format!("state#{s}"),
            SpanKey::Map { state, node } => format!("map#{state}.{node}"),
        }
    }

    /// Sum of per-map total times (the quantity the harness compares
    /// against wall time for coverage).
    pub fn map_total(&self) -> Duration {
        Duration::from_nanos(self.maps.values().map(|s| s.total_ns).sum())
    }

    /// Sum of per-state total times.
    pub fn state_total(&self) -> Duration {
        Duration::from_nanos(self.states.values().map(|s| s.total_ns).sum())
    }

    /// Fraction of wall time covered by per-map totals, `0.0..`.
    /// Can exceed 1.0 when maps run on several workers concurrently.
    pub fn map_coverage(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.map_total().as_secs_f64() / self.wall.as_secs_f64()
    }

    /// Time share (`scope total / wall`) per scope — input for the DOT
    /// heat overlay (`sdfg_core::dot::to_dot_with_profile`).
    pub fn heat(&self) -> (HashMap<u32, f64>, HashMap<(u32, u32), f64>) {
        let wall = self.wall.as_nanos().max(1) as f64;
        let states = self
            .states
            .iter()
            .map(|(k, s)| (*k, s.total_ns as f64 / wall))
            .collect();
        let maps = self
            .maps
            .iter()
            .map(|(k, s)| (*k, s.total_ns as f64 / wall))
            .collect();
        (states, maps)
    }

    /// Renders the sorted hot-path table: scopes by descending total
    /// time, with counts, mean/min/max, wall-time share, per-map tier
    /// breakdowns, and the bytes-moved footer.
    pub fn hot_path_table(&self) -> String {
        let mut rows: Vec<(SpanKey, &ScopeStat)> = self
            .states
            .iter()
            .map(|(k, s)| (SpanKey::State(*k), s))
            .chain(self.maps.iter().map(|(k, s)| {
                (
                    SpanKey::Map {
                        state: k.0,
                        node: k.1,
                    },
                    s,
                )
            }))
            .collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));

        let wall_ns = self.wall.as_nanos().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "hot path ({} scopes, {} workers, wall {:.3} ms)\n",
            rows.len(),
            self.workers,
            self.wall.as_secs_f64() * 1e3
        ));
        out.push_str(&format!(
            "{:<32} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "scope", "count", "total ms", "mean us", "min us", "max us", "wall%"
        ));
        for (key, s) in &rows {
            let kind = match key {
                SpanKey::State(_) => "state",
                SpanKey::Map { .. } => "map",
            };
            let label = format!("{kind} {}", self.label(*key));
            let timed = s.total_ns > 0;
            out.push_str(&format!(
                "{:<32} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
                truncate(&label, 32),
                s.count,
                if timed {
                    format!("{:.3}", s.total_ns as f64 / 1e6)
                } else {
                    "-".into()
                },
                if timed {
                    format!("{:.2}", s.mean_ns() as f64 / 1e3)
                } else {
                    "-".into()
                },
                if timed {
                    format!("{:.2}", s.min_ns as f64 / 1e3)
                } else {
                    "-".into()
                },
                if timed {
                    format!("{:.2}", s.max_ns as f64 / 1e3)
                } else {
                    "-".into()
                },
                if timed {
                    format!("{:.1}", s.total_ns as f64 / wall_ns * 100.0)
                } else {
                    "-".into()
                },
            ));
            if let SpanKey::Map { state, node } = key {
                if let Some(t) = self.tiers.get(&(*state, *node)) {
                    if !t.is_empty() {
                        let mut parts = Vec::new();
                        for tier in Tier::ALL {
                            let i = tier as usize;
                            if t.points[i] > 0 || t.ns[i] > 0 {
                                parts.push(format!(
                                    "{} {} pts{}",
                                    tier.name(),
                                    t.points[i],
                                    if t.ns[i] > 0 {
                                        format!(" / {:.3} ms", t.ns[i] as f64 / 1e6)
                                    } else {
                                        String::new()
                                    }
                                ));
                            }
                        }
                        out.push_str(&format!("    tiers: {}\n", parts.join(", ")));
                    }
                }
            }
        }
        out.push_str(&format!(
            "map totals {:.3} ms ({:.1}% of wall) | state totals {:.3} ms | bytes moved {}\n",
            self.map_total().as_secs_f64() * 1e3,
            self.map_coverage() * 100.0,
            self.state_total().as_secs_f64() * 1e3,
            human_bytes(self.bytes_moved)
        ));
        out.push_str(&counters_footer(&self.exec, &self.sched));
        out
    }

    /// Renders the Chrome trace-event JSON (the "JSON Array Format"):
    /// one complete (`"ph":"X"`) event per timeline span, plus thread
    /// metadata naming each worker lane. Load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        // Timestamps are process-epoch relative and the pid is unique
        // per collector, so traces from nested executors concatenate
        // into one aligned multi-process timeline.
        let pid = self.pid;
        let mut out = String::from("[\n");
        let mut first = true;
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\
                 \"args\":{{\"name\":\"executor {pid}\"}}}}"
            ),
        );
        let mut workers: Vec<u32> = self.timeline.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        for w in &workers {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\
                     \"args\":{{\"name\":\"worker {}\"}}}}",
                    w, w
                ),
            );
        }
        for span in &self.timeline {
            let cat = match span.key {
                SpanKey::State(_) => "state",
                SpanKey::Map { .. } => "map",
            };
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":{pid},\"tid\":{}}}",
                    json_escape(&self.label(span.key)),
                    cat,
                    span.start_ns as f64 / 1e3,
                    span.dur_ns as f64 / 1e3,
                    span.worker
                ),
            );
        }
        out.push_str("\n]\n");
        out
    }
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  ");
    out.push_str(ev);
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(worker: u32) -> WorkerProfile {
        WorkerProfile::new(worker)
    }

    #[test]
    fn scope_stat_record_and_merge() {
        let mut a = ScopeStat::default();
        a.record(10);
        a.record(30);
        assert_eq!((a.count, a.total_ns, a.min_ns, a.max_ns), (2, 40, 10, 30));
        let mut b = ScopeStat::default();
        b.record(5);
        a.merge(&b);
        assert_eq!((a.count, a.total_ns, a.min_ns, a.max_ns), (3, 45, 5, 30));
        assert_eq!(a.mean_ns(), 15);
    }

    #[test]
    fn absorb_merges_workers_deterministically() {
        let c = ProfileCollector::new();
        c.register_label(SpanKey::Map { state: 0, node: 2 }, "mult[i,j]");
        let mut w0 = wp(0);
        w0.maps.entry((0, 2)).or_default().record(100);
        w0.tiers
            .entry((0, 2))
            .or_default()
            .add(Tier::AffineVm, 64, 100);
        w0.timeline.push(Span {
            key: SpanKey::Map { state: 0, node: 2 },
            worker: 0,
            start_ns: 50,
            dur_ns: 100,
        });
        let mut w1 = wp(1);
        w1.maps.entry((0, 2)).or_default().record(200);
        w1.tiers
            .entry((0, 2))
            .or_default()
            .add(Tier::AffineVm, 64, 200);
        w1.timeline.push(Span {
            key: SpanKey::Map { state: 0, node: 2 },
            worker: 1,
            start_ns: 40,
            dur_ns: 200,
        });
        c.absorb(w1);
        c.absorb(w0);
        let r = c.finish(Duration::from_nanos(400));
        let m = r.maps[&(0, 2)];
        assert_eq!(
            (m.count, m.total_ns, m.min_ns, m.max_ns),
            (2, 300, 100, 200)
        );
        assert_eq!(r.tiers[&(0, 2)].points[Tier::AffineVm as usize], 128);
        assert_eq!(r.workers, 2);
        // Timeline sorted by start regardless of absorb order.
        assert_eq!(r.timeline[0].worker, 1);
        assert_eq!(r.label(SpanKey::Map { state: 0, node: 2 }), "mult[i,j]");
    }

    #[test]
    fn chrome_trace_is_wellformed_json_array() {
        let c = ProfileCollector::new();
        c.register_label(SpanKey::State(0), "st\"art");
        let mut w = wp(0);
        w.timeline.push(Span {
            key: SpanKey::State(0),
            worker: 0,
            start_ns: 0,
            dur_ns: 1500,
        });
        c.absorb(w);
        let trace = c.finish(Duration::from_micros(2)).chrome_trace();
        assert!(trace.starts_with("[\n"));
        assert!(trace.trim_end().ends_with(']'));
        assert!(trace.contains("\\\"art"));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":1.500"));
        // Balanced braces, no trailing comma before the closing bracket.
        assert!(!trace.contains(",\n]"));
    }

    #[test]
    fn hot_path_table_sorts_by_total() {
        let c = ProfileCollector::new();
        let mut w = wp(0);
        w.states.entry(0).or_default().record(1_000);
        w.maps.entry((0, 1)).or_default().record(9_000);
        c.absorb(w);
        let r = c.finish(Duration::from_nanos(10_000));
        let table = r.hot_path_table();
        let map_pos = table.find("map map#0.1").unwrap();
        let state_pos = table.find("state state#0").unwrap();
        assert!(map_pos < state_pos, "hottest scope first:\n{table}");
        assert!(table.contains("90.0"));
    }

    #[test]
    fn counter_mode_report_has_no_times() {
        let c = ProfileCollector::new();
        let mut w = wp(0);
        w.maps.entry((0, 1)).or_default().bump();
        w.bytes_moved = 4096;
        c.absorb(w);
        let r = c.finish(Duration::from_millis(1));
        assert!(r.timeline.is_empty());
        assert_eq!(r.maps[&(0, 1)].total_ns, 0);
        assert_eq!(r.maps[&(0, 1)].count, 1);
        assert_eq!(r.bytes_moved, 4096);
        assert!(r.hot_path_table().contains("4.00 KiB"));
    }

    #[test]
    fn collectors_share_one_epoch_but_get_distinct_pids() {
        let a = ProfileCollector::new();
        let b = ProfileCollector::new();
        assert_eq!(a.epoch(), b.epoch(), "one process-wide clock base");
        assert_ne!(a.pid(), b.pid(), "one pid per collector");
        // now_ns is epoch-relative for both, so later reads are larger
        // regardless of which collector reads.
        let t1 = a.now_ns();
        let t2 = b.now_ns();
        assert!(t2 >= t1);
        let ra = a.finish(Duration::from_micros(1));
        let trace = ra.chrome_trace();
        assert!(trace.contains(&format!("\"pid\":{}", ra.pid)));
        assert!(trace.contains("process_name"));
    }

    #[test]
    fn counters_footer_renders_without_a_report() {
        let exec = ExecCounters {
            plan_cache_hits: 3,
            plan_cache_misses: 1,
            pool_acquires: 4,
            pool_reuses: 2,
            pool_bytes_reused: 2048,
        };
        let sched = [SchedWorker {
            worker: 0,
            tiles: 10,
            steals: 2,
            idle_ns: 1_000_000,
        }];
        let footer = counters_footer(&exec, &sched);
        assert!(footer.contains("plan cache 3 hit / 1 miss"));
        assert!(footer.contains("2.00 KiB"));
        assert!(footer.contains("sched 10 tiles / 2 steals across 1 workers"));
        assert!(counters_footer(&ExecCounters::default(), &[]).is_empty());
    }

    #[test]
    fn heat_is_share_of_wall() {
        let c = ProfileCollector::new();
        let mut w = wp(0);
        w.states.entry(3).or_default().record(500);
        w.maps.entry((3, 7)).or_default().record(250);
        c.absorb(w);
        let r = c.finish(Duration::from_nanos(1000));
        let (sh, mh) = r.heat();
        assert!((sh[&3] - 0.5).abs() < 1e-9);
        assert!((mh[&(3, 7)] - 0.25).abs() < 1e-9);
    }
}
