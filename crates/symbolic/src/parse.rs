//! Text syntax for symbolic expressions.
//!
//! Grammar (Python-flavoured, matching the memlet/range syntax of the paper):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := unary (('*' | '//' | '%') unary)*
//! unary   := '-' unary | atom
//! atom    := INT | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//! ```
//!
//! Recognized functions: `min`, `max`, `ceil_div` (each binary, folding
//! n-ary argument lists left-to-right). A single `/` is accepted as floor
//! division for convenience since all arithmetic here is integral.

use crate::expr::Expr;
use std::fmt;

/// Error from [`parse_expr`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Int(i64),
    Ident(String),
    Plus,
    Minus,
    Star,
    SlashSlash,
    Percent,
    LParen,
    RParen,
    Comma,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '%' => {
                toks.push((Tok::Percent, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, i));
                i += 1;
            }
            '/' => {
                // `//` preferred; single `/` treated as floor division too.
                if i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    toks.push((Tok::SlashSlash, i));
                    i += 2;
                } else {
                    toks.push((Tok::SlashSlash, i));
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = src[start..i].parse().map_err(|_| ParseError {
                    message: format!("integer literal out of range `{}`", &src[start..i]),
                    offset: start,
                })?;
                toks.push((Tok::Int(v), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|(_, o)| *o).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let off = self.offset();
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            got => Err(ParseError {
                message: format!("expected {tok:?}, found {got:?}"),
                offset: off,
            }),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = lhs + rhs;
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = lhs - rhs;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    let rhs = self.unary()?;
                    lhs = lhs * rhs;
                }
                Some(Tok::SlashSlash) => {
                    self.bump();
                    let rhs = self.unary()?;
                    lhs = lhs.floor_div_by(rhs);
                }
                Some(Tok::Percent) => {
                    self.bump();
                    let rhs = self.unary()?;
                    lhs = lhs.modulo(rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.bump();
            return Ok(self.unary()?.neg());
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let off = self.offset();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::Ident(name)) => {
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while matches!(self.peek(), Some(Tok::Comma)) {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    self.expect(Tok::RParen)?;
                    apply_function(&name, args, off)
                } else {
                    Ok(Expr::sym(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            got => Err(ParseError {
                message: format!("expected expression, found {got:?}"),
                offset: off,
            }),
        }
    }
}

fn apply_function(name: &str, args: Vec<Expr>, off: usize) -> Result<Expr, ParseError> {
    let fold = |args: Vec<Expr>, f: fn(Expr, Expr) -> Expr| -> Result<Expr, ParseError> {
        let mut it = args.into_iter();
        let first = it.next().ok_or(ParseError {
            message: "function needs at least one argument".into(),
            offset: off,
        })?;
        Ok(it.fold(first, f))
    };
    match name {
        "min" | "Min" => fold(args, Expr::min2),
        "max" | "Max" => fold(args, Expr::max2),
        "ceil_div" | "ceiling_div" => {
            if args.len() != 2 {
                return Err(ParseError {
                    message: "ceil_div takes exactly two arguments".into(),
                    offset: off,
                });
            }
            let mut it = args.into_iter();
            let a = it.next().unwrap();
            let b = it.next().unwrap();
            Ok(a.ceil_div_by(b))
        }
        other => Err(ParseError {
            message: format!("unknown function `{other}`"),
            offset: off,
        }),
    }
}

/// Parses a symbolic integer expression from text.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        len: src.len(),
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            message: "trailing input".into(),
            offset: p.offset(),
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env;

    #[test]
    fn parses_basic_arithmetic() {
        let e = parse_expr("2*N + i - 1").unwrap();
        assert_eq!(e.eval(&env(&[("N", 10), ("i", 4)])).unwrap(), 23);
    }

    #[test]
    fn parses_precedence_and_parens() {
        let e = parse_expr("2*(N + i) - 1").unwrap();
        assert_eq!(e.eval(&env(&[("N", 10), ("i", 4)])).unwrap(), 27);
        let f = parse_expr("N + i*2 % 3").unwrap();
        assert_eq!(f.eval(&env(&[("N", 10), ("i", 4)])).unwrap(), 12);
    }

    #[test]
    fn parses_floor_div() {
        let e = parse_expr("(N + 1) // 2").unwrap();
        assert_eq!(e.eval(&env(&[("N", 9)])).unwrap(), 5);
        // single slash also floor-divides
        let f = parse_expr("N / 2").unwrap();
        assert_eq!(f.eval(&env(&[("N", 9)])).unwrap(), 4);
    }

    #[test]
    fn parses_min_max() {
        let e = parse_expr("min(N, 16)").unwrap();
        assert_eq!(e.eval(&env(&[("N", 9)])).unwrap(), 9);
        let f = parse_expr("max(a, b, c)").unwrap();
        assert_eq!(f.eval(&env(&[("a", 1), ("b", 7), ("c", 3)])).unwrap(), 7);
    }

    #[test]
    fn parses_unary_minus() {
        let e = parse_expr("-x + 3").unwrap();
        assert_eq!(e.eval(&env(&[("x", 10)])).unwrap(), -7);
        let f = parse_expr("--x").unwrap();
        assert_eq!(f.eval(&env(&[("x", 10)])).unwrap(), 10);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("a +").is_err());
        assert!(parse_expr("foo(1)").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("(a").is_err());
        assert!(parse_expr("a ? b").is_err());
    }

    #[test]
    fn error_offsets_point_into_input() {
        let err = parse_expr("a + $").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
