//! Symbolic strided ranges and N-dimensional rectangular subsets.
//!
//! These are the payload of every memlet in an SDFG: `A[0:N, k]` carries the
//! subset `[0:N, k:k+1]`. Ranges are half-open (`begin:end:step`), matching
//! the Python-style syntax of the paper (Fig. 3), with an optional tile size
//! used for vector-typed movement (`begin:end:step:tile`, Appendix A).

use crate::expr::{Assumptions, EvalError, Expr};
use crate::parse::{parse_expr, ParseError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic half-open strided range `start : end : step (: tile)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymRange {
    /// First index (inclusive).
    pub start: Expr,
    /// End index (exclusive).
    pub end: Expr,
    /// Stride between consecutive indices (must be positive).
    pub step: Expr,
    /// Number of consecutive elements moved per index (vector width).
    pub tile: Expr,
}

impl SymRange {
    /// `start:end` with unit step and tile.
    pub fn new(start: impl Into<Expr>, end: impl Into<Expr>) -> SymRange {
        SymRange {
            start: start.into(),
            end: end.into(),
            step: Expr::one(),
            tile: Expr::one(),
        }
    }

    /// `start:end:step`.
    pub fn strided(
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        step: impl Into<Expr>,
    ) -> SymRange {
        SymRange {
            start: start.into(),
            end: end.into(),
            step: step.into(),
            tile: Expr::one(),
        }
    }

    /// A single index `i` (i.e. `i : i+1`).
    pub fn index(i: impl Into<Expr>) -> SymRange {
        let i = i.into();
        SymRange {
            end: i.clone() + Expr::one(),
            start: i,
            step: Expr::one(),
            tile: Expr::one(),
        }
    }

    /// The whole extent `0:size`.
    pub fn full(size: impl Into<Expr>) -> SymRange {
        SymRange::new(Expr::zero(), size)
    }

    /// Symbolic number of iterated indices: `⌈(end - start) / step⌉`,
    /// clamped at zero only on evaluation.
    pub fn num_elements(&self) -> Expr {
        let span = self.end.clone() - self.start.clone();
        if self.step.is_one() {
            span
        } else {
            span.ceil_div_by(self.step.clone())
        }
    }

    /// Symbolic data volume: indices × tile.
    pub fn volume(&self) -> Expr {
        self.num_elements() * self.tile.clone()
    }

    /// True if this range selects exactly one index (tile 1).
    pub fn is_index(&self) -> bool {
        self.num_elements().is_one() && self.tile.is_one()
    }

    /// Substitutes a symbol in all four expressions.
    pub fn subs(&self, name: &str, value: &Expr) -> SymRange {
        SymRange {
            start: self.start.subs(name, value),
            end: self.end.subs(name, value),
            step: self.step.subs(name, value),
            tile: self.tile.subs(name, value),
        }
    }

    /// Substitutes many symbols in all four expressions.
    pub fn subs_map(&self, map: &BTreeMap<String, Expr>) -> SymRange {
        SymRange {
            start: self.start.subs_map(map),
            end: self.end.subs_map(map),
            step: self.step.subs_map(map),
            tile: self.tile.subs_map(map),
        }
    }

    /// Free symbols of all components.
    pub fn collect_symbols(&self, out: &mut std::collections::BTreeSet<String>) {
        self.start.collect_symbols(out);
        self.end.collect_symbols(out);
        self.step.collect_symbols(out);
        self.tile.collect_symbols(out);
    }

    /// Evaluates to a concrete `(start, end, step, tile)`; the span is
    /// clamped so `end >= start`.
    pub fn eval(&self, env: &crate::Env) -> Result<(i64, i64, i64, i64), EvalError> {
        let s = self.start.eval(env)?;
        let e = self.end.eval(env)?.max(s);
        let st = self.step.eval(env)?;
        let t = self.tile.eval(env)?;
        Ok((s, e, st, t))
    }

    /// Concrete iteration count.
    pub fn eval_len(&self, env: &crate::Env) -> Result<i64, EvalError> {
        let (s, e, st, _) = self.eval(env)?;
        if st <= 0 {
            return Err(EvalError::DivisionByZero);
        }
        Ok(((e - s) + st - 1).div_euclid(st).max(0))
    }

    /// Bounding-box union of two ranges (stride collapses to 1 unless equal).
    pub fn union(&self, other: &SymRange) -> SymRange {
        let step = if self.step == other.step {
            self.step.clone()
        } else {
            Expr::one()
        };
        let tile = if self.tile == other.tile {
            self.tile.clone()
        } else {
            Expr::one()
        };
        SymRange {
            start: self.start.clone().min2(other.start.clone()),
            end: self.end.clone().max2(other.end.clone()),
            step,
            tile,
        }
    }

    /// Conservative containment: does `self` cover every index of `other`?
    pub fn covers(&self, other: &SymRange, assumptions: &Assumptions) -> bool {
        use std::cmp::Ordering::*;
        let start_ok = matches!(
            self.start.sym_cmp(&other.start, assumptions),
            Some(Less) | Some(Equal)
        );
        let end_ok = matches!(
            other.end.sym_cmp(&self.end, assumptions),
            Some(Less) | Some(Equal)
        );
        start_ok && end_ok && self.step.is_one()
    }

    /// Shifts the range down by `offset` (used by reindexing: expressing a
    /// subset relative to the start of a containing window).
    pub fn offset_by(&self, offset: &Expr) -> SymRange {
        SymRange {
            start: self.start.clone() - offset.clone(),
            end: self.end.clone() - offset.clone(),
            step: self.step.clone(),
            tile: self.tile.clone(),
        }
    }

    /// Folds decidable `min`/`max` under assumptions (see [`Expr::refine`]).
    pub fn refine(&self, assumptions: &crate::expr::Assumptions) -> SymRange {
        SymRange {
            start: self.start.refine(assumptions),
            end: self.end.refine(assumptions),
            step: self.step.refine(assumptions),
            tile: self.tile.refine(assumptions),
        }
    }

    /// The image of this range as `param` sweeps `param_range`: the
    /// bounding range over all values the parameter takes. This is the core
    /// of memlet propagation (paper §4.3 step ❶); assumes the component
    /// expressions are monotonic in `param` (true for the affine accesses
    /// produced by the frontends).
    pub fn image_under(&self, param: &str, param_range: &SymRange) -> SymRange {
        if !self.start.has_symbol(param) && !self.end.has_symbol(param) {
            return self.clone();
        }
        let lo = param_range.start.clone();
        // Last value actually taken by the parameter.
        let n = param_range.num_elements();
        let hi = param_range.start.clone()
            + (n - Expr::one()).max2(Expr::zero()) * param_range.step.clone();
        let start_lo = self.start.subs(param, &lo);
        let start_hi = self.start.subs(param, &hi);
        let end_lo = self.end.subs(param, &lo);
        let end_hi = self.end.subs(param, &hi);
        SymRange {
            start: start_lo.min2(start_hi),
            end: end_lo.max2(end_hi),
            step: Expr::one(),
            tile: self.tile.clone(),
        }
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_index() {
            return write!(f, "{}", self.start);
        }
        write!(f, "{}:{}", self.start, self.end)?;
        if !self.step.is_one() || !self.tile.is_one() {
            write!(f, ":{}", self.step)?;
        }
        if !self.tile.is_one() {
            write!(f, ":{}", self.tile)?;
        }
        Ok(())
    }
}

/// An N-dimensional rectangular subset: one [`SymRange`] per dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Subset {
    /// Per-dimension ranges, outermost first.
    pub dims: Vec<SymRange>,
}

impl Subset {
    /// Builds a subset from per-dimension ranges.
    pub fn new(dims: Vec<SymRange>) -> Subset {
        Subset { dims }
    }

    /// A single N-dimensional index.
    pub fn index(indices: impl IntoIterator<Item = Expr>) -> Subset {
        Subset {
            dims: indices.into_iter().map(SymRange::index).collect(),
        }
    }

    /// The full extent of an array with the given shape.
    pub fn full(shape: &[Expr]) -> Subset {
        Subset {
            dims: shape.iter().cloned().map(SymRange::full).collect(),
        }
    }

    /// Parses `"0:N, k"`-style text: comma-separated dimension specs, each
    /// either an index expression or `start:end(:step(:tile))`.
    pub fn parse(src: &str) -> Result<Subset, ParseError> {
        let mut dims = Vec::new();
        for part in split_top_level(src, ',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(ParseError {
                    message: "empty subset dimension".into(),
                    offset: 0,
                });
            }
            let pieces: Vec<&str> = split_top_level(part, ':');
            match pieces.len() {
                1 => dims.push(SymRange::index(parse_expr(pieces[0])?)),
                2 => dims.push(SymRange::new(
                    parse_expr(pieces[0])?,
                    parse_expr(pieces[1])?,
                )),
                3 => dims.push(SymRange::strided(
                    parse_expr(pieces[0])?,
                    parse_expr(pieces[1])?,
                    parse_expr(pieces[2])?,
                )),
                4 => dims.push(SymRange {
                    start: parse_expr(pieces[0])?,
                    end: parse_expr(pieces[1])?,
                    step: parse_expr(pieces[2])?,
                    tile: parse_expr(pieces[3])?,
                }),
                n => {
                    return Err(ParseError {
                        message: format!("too many `:` in subset dimension ({n} pieces)"),
                        offset: 0,
                    })
                }
            }
        }
        Ok(Subset { dims })
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Symbolic element count (product of per-dimension volumes).
    pub fn volume(&self) -> Expr {
        Expr::mul(self.dims.iter().map(|r| r.volume()))
    }

    /// Substitutes a symbol in every dimension.
    pub fn subs(&self, name: &str, value: &Expr) -> Subset {
        Subset {
            dims: self.dims.iter().map(|r| r.subs(name, value)).collect(),
        }
    }

    /// Substitutes many symbols in every dimension.
    pub fn subs_map(&self, map: &BTreeMap<String, Expr>) -> Subset {
        Subset {
            dims: self.dims.iter().map(|r| r.subs_map(map)).collect(),
        }
    }

    /// Free symbols across all dimensions.
    pub fn free_symbols(&self) -> std::collections::BTreeSet<String> {
        let mut out = Default::default();
        for r in &self.dims {
            r.collect_symbols(&mut out);
        }
        out
    }

    /// Bounding-box union, dimension-wise. Panics if ranks differ.
    pub fn union(&self, other: &Subset) -> Subset {
        assert_eq!(self.rank(), other.rank(), "subset rank mismatch in union");
        Subset {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.union(b))
                .collect(),
        }
    }

    /// Conservative containment test, dimension-wise.
    pub fn covers(&self, other: &Subset, assumptions: &Assumptions) -> bool {
        self.rank() == other.rank()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.covers(b, assumptions))
    }

    /// Expresses this subset relative to the origin of `window` (reindexing
    /// through a local-storage transient, Fig. 11b).
    pub fn offset_by(&self, window: &Subset) -> Subset {
        assert_eq!(self.rank(), window.rank(), "subset rank mismatch in offset");
        Subset {
            dims: self
                .dims
                .iter()
                .zip(&window.dims)
                .map(|(r, w)| r.offset_by(&w.start))
                .collect(),
        }
    }

    /// Folds decidable `min`/`max` under assumptions, dimension-wise.
    pub fn refine(&self, assumptions: &crate::expr::Assumptions) -> Subset {
        Subset {
            dims: self.dims.iter().map(|r| r.refine(assumptions)).collect(),
        }
    }

    /// Image under a map parameter sweeping its range (propagation).
    pub fn image_under(&self, param: &str, param_range: &SymRange) -> Subset {
        Subset {
            dims: self
                .dims
                .iter()
                .map(|r| r.image_under(param, param_range))
                .collect(),
        }
    }

    /// Image under several parameters at once (innermost last in `params`;
    /// swept in reverse so ranges may reference earlier parameters).
    pub fn image_under_all(&self, params: &[(String, SymRange)]) -> Subset {
        let mut cur = self.clone();
        for (p, r) in params.iter().rev() {
            cur = cur.image_under(p, r);
        }
        cur
    }

    /// Evaluates every dimension to concrete bounds.
    pub fn eval(&self, env: &crate::Env) -> Result<Vec<(i64, i64, i64, i64)>, EvalError> {
        self.dims.iter().map(|r| r.eval(env)).collect()
    }

    /// Concrete element count.
    pub fn eval_volume(&self, env: &crate::Env) -> Result<i64, EvalError> {
        let mut v = 1i64;
        for r in &self.dims {
            let t = r.tile.eval(env)?;
            v = v.saturating_mul(r.eval_len(env)?).saturating_mul(t);
        }
        Ok(v)
    }
}

impl fmt::Display for Subset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Splits on `sep` at paren depth zero.
fn split_top_level(src: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in src.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                out.push(&src[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&src[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env;

    #[test]
    fn range_len_and_volume() {
        let r = SymRange::strided(0, "N", 2);
        assert_eq!(r.eval_len(&env(&[("N", 9)])).unwrap(), 5);
        let s = Subset::parse("0:N, 0:M").unwrap();
        assert_eq!(s.eval_volume(&env(&[("N", 3), ("M", 4)])).unwrap(), 12);
    }

    #[test]
    fn parse_forms() {
        let s = Subset::parse("i, 0:N, 0:N:2, 0:N:1:4").unwrap();
        assert_eq!(s.rank(), 4);
        assert!(s.dims[0].is_index());
        assert_eq!(s.dims[2].step, Expr::int(2));
        assert_eq!(s.dims[3].tile, Expr::int(4));
        // nested function commas don't split dims
        let t = Subset::parse("min(i, j), 0:max(N, M)").unwrap();
        assert_eq!(t.rank(), 2);
    }

    #[test]
    fn display_roundtrip() {
        for txt in ["i", "0:N", "0:N:2", "i + 1, 0:N", "t % 2, i - 1"] {
            let s = Subset::parse(txt).unwrap();
            let back = Subset::parse(&s.to_string()).unwrap();
            assert_eq!(s, back, "roundtrip failed: `{txt}` -> `{s}`");
        }
    }

    #[test]
    fn union_is_bounding_box() {
        let a = Subset::parse("0:4").unwrap();
        let b = Subset::parse("8:16").unwrap();
        let u = a.union(&b);
        assert_eq!(u, Subset::parse("0:16").unwrap());
    }

    #[test]
    fn covers_conservative() {
        let assume = Assumptions::nonnegative();
        let big = Subset::parse("0:N").unwrap();
        let small = Subset::parse("1:N - 1").unwrap();
        assert!(big.covers(&small, &assume));
        assert!(!small.covers(&big, &assume));
    }

    #[test]
    fn image_under_map_param() {
        // A[i, 0:N] under i in 0:M  ->  A[0:M, 0:N]
        let s = Subset::parse("i, 0:N").unwrap();
        let img = s.image_under("i", &SymRange::new(0, "M"));
        // start: min(0, M-1) -> with no assumptions stays min; end: max(1, M).
        let e = img.eval(&env(&[("M", 5), ("N", 3)])).unwrap();
        assert_eq!(e[0].0, 0);
        assert_eq!(e[0].1, 5);
        assert_eq!(e[1], (0, 3, 1, 1));
    }

    #[test]
    fn image_of_stencil_window() {
        // A[i-1 : i+2] under i in 1:N-1  ->  A[0:N]
        let s = Subset::parse("i - 1:i + 2").unwrap();
        let img = s.image_under("i", &SymRange::new(1, Expr::sym("N") - Expr::int(1)));
        let e = img.eval(&env(&[("N", 100)])).unwrap();
        assert_eq!((e[0].0, e[0].1), (0, 100));
    }

    #[test]
    fn image_ignores_free_dims() {
        let s = Subset::parse("k, 0:N").unwrap();
        let img = s.image_under("i", &SymRange::new(0, "M"));
        assert_eq!(img, s);
    }

    #[test]
    fn offset_by_window() {
        // Global access A[i+2, j+3] inside window A[2:10, 3:7] -> local [i, j].
        let acc = Subset::parse("i + 2, j + 3").unwrap();
        let win = Subset::parse("2:10, 3:7").unwrap();
        let local = acc.offset_by(&win);
        assert_eq!(local, Subset::parse("i, j").unwrap());
    }

    #[test]
    fn eval_clamps_empty() {
        let r = SymRange::new(5, 3);
        assert_eq!(r.eval_len(&env(&[])).unwrap(), 0);
    }
}
