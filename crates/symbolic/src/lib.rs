//! Symbolic integer math for SDFGs.
//!
//! The DaCe implementation of the SDFG paper leans on SymPy for parametric
//! sizes, map ranges and memlet subsets ("we utilize symbolic math
//! evaluation", §2.1). This crate is the from-scratch Rust replacement: a
//! small, canonicalizing symbolic engine over the integers with exactly the
//! operations the IR needs:
//!
//! * [`Expr`] — integer expressions over named symbols with `+`, `*`, floor
//!   division, modulo, `min`/`max`, constant folding and like-term collection.
//! * [`parse`](parse::parse_expr) — text syntax used by frontends and tests
//!   (`"2*N + i - 1"`, `"min(N, 16)"`, `"(i + 1) // 2"`).
//! * [`SymRange`] / [`Subset`] — symbolic half-open strided ranges and
//!   N-dimensional rectangular subsets: the payload of every memlet.
//! * Propagation algebra — the image of a subset under a map parameter
//!   sweeping its range (paper §4.3 step ❶), used to derive the overall data
//!   requirements of scopes.
//!
//! Everything is deterministic and hash/equality-canonical after
//! [`Expr::simplify`], which the constructors apply eagerly.

pub mod expr;
pub mod parse;
pub mod range;

pub use expr::{Assumptions, EvalError, Expr};
pub use parse::{parse_expr, ParseError};
pub use range::{Subset, SymRange};

/// Evaluation environment: maps symbol names to concrete values.
pub type Env = std::collections::HashMap<String, i64>;

/// Convenience: build an environment from pairs.
pub fn env(pairs: &[(&str, i64)]) -> Env {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}
