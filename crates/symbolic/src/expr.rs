//! Canonical symbolic integer expressions.
//!
//! Expressions are kept in a normal form: n-ary sums of products, constants
//! folded, like terms collected, operands sorted. Two expressions that are
//! syntactically equal after [`Expr::simplify`] compare equal with `==` and
//! hash identically, which the transformation pattern matcher relies on.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic integer expression.
///
/// Invariant (maintained by the smart constructors and [`Expr::simplify`]):
/// `Add`/`Mul` have ≥ 2 operands, are flattened (no directly nested node of
/// the same kind), have at most one leading integer constant, and operands
/// are sorted by [`Expr::cmp_key`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Free symbol (e.g. an SDFG symbol such as `N` or a map parameter `i`).
    Sym(String),
    /// N-ary sum.
    Add(Vec<Expr>),
    /// N-ary product.
    Mul(Vec<Expr>),
    /// Floor division (rounds toward negative infinity, like Python `//`).
    FloorDiv(Box<Expr>, Box<Expr>),
    /// Euclidean modulo with the sign of the divisor (Python `%`).
    Mod(Box<Expr>, Box<Expr>),
    /// Binary minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Binary maximum.
    Max(Box<Expr>, Box<Expr>),
}

/// Error produced when evaluating an expression with missing symbols or a
/// division by zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol had no binding in the environment.
    UnboundSymbol(String),
    /// `//` or `%` by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundSymbol(s) => write!(f, "unbound symbol `{s}`"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Default for Expr {
    fn default() -> Self {
        Expr::Int(0)
    }
}

/// Floor division (rounds toward -∞). `b` must be nonzero.
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Modulo paired with [`floor_div`]: `a == floor_div(a,b)*b + floor_mod(a,b)`.
pub fn floor_mod(a: i64, b: i64) -> i64 {
    a - floor_div(a, b) * b
}

/// Assumptions about symbols, used by the conservative comparison helpers.
///
/// In SDFGs, size symbols (array dimensions, map extents) are assumed
/// positive; this mirrors DaCe's `dace.symbol(positive=True)` default.
#[derive(Clone, Debug, Default)]
pub struct Assumptions {
    /// Symbols known to be strictly positive.
    pub positive: std::collections::HashSet<String>,
    /// Treat *all* symbols as nonnegative (common case for shapes/indices).
    pub all_nonnegative: bool,
    /// Treat *all* symbols as strictly positive (DaCe's default for size
    /// symbols; used by memlet propagation).
    pub all_positive: bool,
}

impl Assumptions {
    /// Assumptions where every symbol is nonnegative.
    pub fn nonnegative() -> Self {
        Assumptions {
            all_nonnegative: true,
            ..Default::default()
        }
    }

    /// Assumptions where every symbol is strictly positive (≥ 1).
    pub fn positive_all() -> Self {
        Assumptions {
            all_positive: true,
            ..Default::default()
        }
    }

    fn sym_lower_bound(&self, name: &str) -> Option<i64> {
        if self.all_positive || self.positive.contains(name) {
            Some(1)
        } else if self.all_nonnegative {
            Some(0)
        } else {
            None
        }
    }
}

impl Expr {
    /// Integer constant.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Named symbol.
    pub fn sym(name: impl Into<String>) -> Expr {
        Expr::Sym(name.into())
    }

    /// Zero.
    pub fn zero() -> Expr {
        Expr::Int(0)
    }

    /// One.
    pub fn one() -> Expr {
        Expr::Int(1)
    }

    /// Sum of operands (simplified).
    pub fn add(ops: impl IntoIterator<Item = Expr>) -> Expr {
        simplify_add(ops.into_iter().collect())
    }

    /// Product of operands (simplified).
    pub fn mul(ops: impl IntoIterator<Item = Expr>) -> Expr {
        simplify_mul(ops.into_iter().collect())
    }

    /// `self - other` (simplified).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::add([self, other.neg()])
    }

    /// Negation (simplified).
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::mul([Expr::Int(-1), self])
    }

    /// Floor division (simplified).
    pub fn floor_div_by(self, rhs: Expr) -> Expr {
        simplify_floordiv(self, rhs)
    }

    /// Modulo (simplified).
    pub fn modulo(self, rhs: Expr) -> Expr {
        simplify_mod(self, rhs)
    }

    /// Binary minimum (simplified).
    pub fn min2(self, rhs: Expr) -> Expr {
        simplify_min(self, rhs)
    }

    /// Binary maximum (simplified).
    pub fn max2(self, rhs: Expr) -> Expr {
        simplify_max(self, rhs)
    }

    /// Ceiling division `⌈self / rhs⌉` expressed with floor division.
    pub fn ceil_div_by(self, rhs: Expr) -> Expr {
        Expr::add([self, rhs.clone(), Expr::Int(-1)]).floor_div_by(rhs)
    }

    /// Returns the constant value if this expression is a literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// True if this is the literal `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Int(0))
    }

    /// True if this is the literal `1`.
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Int(1))
    }

    /// Collects the free symbols into `out`.
    pub fn collect_symbols(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Int(_) => {}
            Expr::Sym(s) => {
                out.insert(s.clone());
            }
            Expr::Add(v) | Expr::Mul(v) => {
                for e in v {
                    e.collect_symbols(out);
                }
            }
            Expr::FloorDiv(a, b) | Expr::Mod(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
        }
    }

    /// The set of free symbols.
    pub fn free_symbols(&self) -> std::collections::BTreeSet<String> {
        let mut s = Default::default();
        self.collect_symbols(&mut s);
        s
    }

    /// True if `name` occurs free in the expression.
    pub fn has_symbol(&self, name: &str) -> bool {
        match self {
            Expr::Int(_) => false,
            Expr::Sym(s) => s == name,
            Expr::Add(v) | Expr::Mul(v) => v.iter().any(|e| e.has_symbol(name)),
            Expr::FloorDiv(a, b) | Expr::Mod(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                a.has_symbol(name) || b.has_symbol(name)
            }
        }
    }

    /// Substitutes `name := value` and re-simplifies.
    pub fn subs(&self, name: &str, value: &Expr) -> Expr {
        match self {
            Expr::Int(_) => self.clone(),
            Expr::Sym(s) => {
                if s == name {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Add(v) => Expr::add(v.iter().map(|e| e.subs(name, value))),
            Expr::Mul(v) => Expr::mul(v.iter().map(|e| e.subs(name, value))),
            Expr::FloorDiv(a, b) => a.subs(name, value).floor_div_by(b.subs(name, value)),
            Expr::Mod(a, b) => a.subs(name, value).modulo(b.subs(name, value)),
            Expr::Min(a, b) => a.subs(name, value).min2(b.subs(name, value)),
            Expr::Max(a, b) => a.subs(name, value).max2(b.subs(name, value)),
        }
    }

    /// Substitutes many symbols at once.
    pub fn subs_map(&self, map: &BTreeMap<String, Expr>) -> Expr {
        if map.is_empty() {
            return self.clone();
        }
        match self {
            Expr::Int(_) => self.clone(),
            Expr::Sym(s) => map.get(s).cloned().unwrap_or_else(|| self.clone()),
            Expr::Add(v) => Expr::add(v.iter().map(|e| e.subs_map(map))),
            Expr::Mul(v) => Expr::mul(v.iter().map(|e| e.subs_map(map))),
            Expr::FloorDiv(a, b) => a.subs_map(map).floor_div_by(b.subs_map(map)),
            Expr::Mod(a, b) => a.subs_map(map).modulo(b.subs_map(map)),
            Expr::Min(a, b) => a.subs_map(map).min2(b.subs_map(map)),
            Expr::Max(a, b) => a.subs_map(map).max2(b.subs_map(map)),
        }
    }

    /// Renames a symbol (substitution by another symbol).
    pub fn rename(&self, from: &str, to: &str) -> Expr {
        self.subs(from, &Expr::sym(to))
    }

    /// Evaluates under the environment.
    pub fn eval(&self, env: &crate::Env) -> Result<i64, EvalError> {
        match self {
            Expr::Int(v) => Ok(*v),
            Expr::Sym(s) => env
                .get(s)
                .copied()
                .ok_or_else(|| EvalError::UnboundSymbol(s.clone())),
            Expr::Add(v) => {
                let mut acc = 0i64;
                for e in v {
                    acc = acc.wrapping_add(e.eval(env)?);
                }
                Ok(acc)
            }
            Expr::Mul(v) => {
                let mut acc = 1i64;
                for e in v {
                    acc = acc.wrapping_mul(e.eval(env)?);
                }
                Ok(acc)
            }
            Expr::FloorDiv(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(floor_div(a, b))
            }
            Expr::Mod(a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                if b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(floor_mod(a, b))
            }
            Expr::Min(a, b) => Ok(a.eval(env)?.min(b.eval(env)?)),
            Expr::Max(a, b) => Ok(a.eval(env)?.max(b.eval(env)?)),
        }
    }

    /// Re-canonicalizes the whole tree. The smart constructors already keep
    /// results canonical; this is the entry point for externally constructed
    /// trees (e.g. deserialized ones).
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Int(_) | Expr::Sym(_) => self.clone(),
            Expr::Add(v) => Expr::add(v.iter().map(|e| e.simplify())),
            Expr::Mul(v) => Expr::mul(v.iter().map(|e| e.simplify())),
            Expr::FloorDiv(a, b) => a.simplify().floor_div_by(b.simplify()),
            Expr::Mod(a, b) => a.simplify().modulo(b.simplify()),
            Expr::Min(a, b) => a.simplify().min2(b.simplify()),
            Expr::Max(a, b) => a.simplify().max2(b.simplify()),
        }
    }

    /// A conservative constant lower bound under `assumptions`, when one is
    /// derivable. `None` means "unknown" (never "unbounded below" — that is
    /// also `None`).
    pub fn lower_bound(&self, assumptions: &Assumptions) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Sym(s) => assumptions.sym_lower_bound(s),
            Expr::Add(v) => {
                let mut acc = 0i64;
                for e in v {
                    acc = acc.checked_add(e.lower_bound(assumptions)?)?;
                }
                Some(acc)
            }
            Expr::Mul(v) => {
                // Sound only when every factor is provably nonnegative.
                let mut acc = 1i64;
                for e in v {
                    let lb = e.lower_bound(assumptions)?;
                    if lb < 0 {
                        return None;
                    }
                    acc = acc.checked_mul(lb)?;
                }
                Some(acc)
            }
            Expr::FloorDiv(a, b) => {
                // Nonnegative numerator over a positive divisor stays
                // nonnegative; tighter bounds need the divisor's upper
                // bound, which we do not track.
                if a.lower_bound(assumptions)? >= 0 && b.lower_bound(assumptions)? >= 1 {
                    Some(0)
                } else {
                    None
                }
            }
            Expr::Mod(_, b) => {
                // Floor-mod sign follows the divisor.
                if b.lower_bound(assumptions)? >= 1 {
                    Some(0)
                } else {
                    None
                }
            }
            Expr::Min(a, b) => Some(a.lower_bound(assumptions)?.min(b.lower_bound(assumptions)?)),
            Expr::Max(a, b) => match (a.lower_bound(assumptions), b.lower_bound(assumptions)) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            },
        }
    }

    /// Conservative test: is `self >= 0` provable under `assumptions`?
    ///
    /// Returns `true` only when provable; `false` means "unknown or false".
    pub fn is_nonnegative(&self, assumptions: &Assumptions) -> bool {
        self.lower_bound(assumptions).is_some_and(|lb| lb >= 0)
    }

    /// Conservative test: is `self > 0` provable under `assumptions`?
    pub fn is_positive(&self, assumptions: &Assumptions) -> bool {
        self.lower_bound(assumptions).is_some_and(|lb| lb >= 1)
    }

    /// Re-simplifies, additionally folding `min`/`max` that become
    /// decidable under `assumptions` (e.g. `min(0, N - 1)` → `0` when all
    /// symbols are positive). Used by memlet propagation.
    pub fn refine(&self, assumptions: &Assumptions) -> Expr {
        match self {
            Expr::Int(_) | Expr::Sym(_) => self.clone(),
            Expr::Add(v) => Expr::add(v.iter().map(|e| e.refine(assumptions))),
            Expr::Mul(v) => Expr::mul(v.iter().map(|e| e.refine(assumptions))),
            Expr::FloorDiv(a, b) => a.refine(assumptions).floor_div_by(b.refine(assumptions)),
            Expr::Mod(a, b) => a.refine(assumptions).modulo(b.refine(assumptions)),
            Expr::Min(a, b) => {
                let (a, b) = (a.refine(assumptions), b.refine(assumptions));
                match a.sym_cmp(&b, assumptions) {
                    Some(Ordering::Greater) => b,
                    Some(_) => a,
                    None => {
                        if a.clone().sub(b.clone()).is_nonnegative(assumptions) {
                            b
                        } else if b.clone().sub(a.clone()).is_nonnegative(assumptions) {
                            a
                        } else {
                            a.min2(b)
                        }
                    }
                }
            }
            Expr::Max(a, b) => {
                let (a, b) = (a.refine(assumptions), b.refine(assumptions));
                match a.sym_cmp(&b, assumptions) {
                    Some(Ordering::Less) => b,
                    Some(_) => a,
                    None => {
                        if a.clone().sub(b.clone()).is_nonnegative(assumptions) {
                            a
                        } else if b.clone().sub(a.clone()).is_nonnegative(assumptions) {
                            b
                        } else {
                            a.max2(b)
                        }
                    }
                }
            }
        }
    }

    /// Conservative symbolic comparison: `Some(ordering)` if `self` vs
    /// `other` is decidable under `assumptions`, otherwise `None`.
    pub fn sym_cmp(&self, other: &Expr, assumptions: &Assumptions) -> Option<Ordering> {
        if self == other {
            return Some(Ordering::Equal);
        }
        let diff = self.clone().sub(other.clone());
        if let Some(v) = diff.as_int() {
            return Some(v.cmp(&0));
        }
        if diff.is_positive(assumptions) {
            return Some(Ordering::Greater);
        }
        if diff.clone().neg().is_positive(assumptions) {
            return Some(Ordering::Less);
        }
        if diff.is_nonnegative(assumptions) {
            // >= 0 but not provably > 0: cannot produce a strict ordering
            // without equality knowledge.
            return None;
        }
        None
    }

    /// Sort key establishing the canonical operand order. Constants first,
    /// then symbols alphabetically, then compound terms structurally.
    fn kind_rank(&self) -> u8 {
        match self {
            Expr::Int(_) => 0,
            Expr::Sym(_) => 1,
            Expr::Mul(_) => 2,
            Expr::Add(_) => 3,
            Expr::FloorDiv(..) => 4,
            Expr::Mod(..) => 5,
            Expr::Min(..) => 6,
            Expr::Max(..) => 7,
        }
    }

    /// Total ordering used for canonicalization.
    pub fn cmp_key(&self, other: &Expr) -> Ordering {
        match (self, other) {
            (Expr::Int(a), Expr::Int(b)) => a.cmp(b),
            (Expr::Sym(a), Expr::Sym(b)) => a.cmp(b),
            (Expr::Add(a), Expr::Add(b)) | (Expr::Mul(a), Expr::Mul(b)) => {
                let mut it_a = a.iter();
                let mut it_b = b.iter();
                loop {
                    match (it_a.next(), it_b.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some(x), Some(y)) => match x.cmp_key(y) {
                            Ordering::Equal => continue,
                            o => return o,
                        },
                    }
                }
            }
            (Expr::FloorDiv(a1, b1), Expr::FloorDiv(a2, b2))
            | (Expr::Mod(a1, b1), Expr::Mod(a2, b2))
            | (Expr::Min(a1, b1), Expr::Min(a2, b2))
            | (Expr::Max(a1, b1), Expr::Max(a2, b2)) => a1.cmp_key(a2).then_with(|| b1.cmp_key(b2)),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

/// Splits a canonical product into `(constant coefficient, residual term)`.
/// The residual is `Int(1)` for pure constants.
fn split_coeff(e: &Expr) -> (i64, Expr) {
    match e {
        Expr::Int(v) => (*v, Expr::Int(1)),
        Expr::Mul(v) => {
            if let Some(Expr::Int(c)) = v.first() {
                let rest: Vec<Expr> = v[1..].to_vec();
                let term = if rest.len() == 1 {
                    rest.into_iter().next().unwrap()
                } else {
                    Expr::Mul(rest)
                };
                (*c, term)
            } else {
                (1, e.clone())
            }
        }
        _ => (1, e.clone()),
    }
}

/// Rebuilds `coeff * term` in canonical form.
fn with_coeff(coeff: i64, term: Expr) -> Expr {
    match coeff {
        0 => Expr::Int(0),
        1 => term,
        c => {
            if term.is_one() {
                Expr::Int(c)
            } else if let Expr::Mul(mut v) = term {
                v.insert(0, Expr::Int(c));
                Expr::Mul(v)
            } else {
                Expr::Mul(vec![Expr::Int(c), term])
            }
        }
    }
}

fn simplify_add(ops: Vec<Expr>) -> Expr {
    // Flatten, fold constants, collect like terms.
    let mut constant = 0i64;
    let mut terms: Vec<(Expr, i64)> = Vec::new(); // (term, coefficient) in first-seen order
    let mut stack: Vec<Expr> = ops;
    stack.reverse();
    while let Some(e) = stack.pop() {
        match e {
            Expr::Add(v) => {
                for x in v.into_iter().rev() {
                    stack.push(x);
                }
            }
            Expr::Int(v) => constant = constant.wrapping_add(v),
            other => {
                let (c, t) = split_coeff(&other);
                if t.is_one() {
                    constant = constant.wrapping_add(c);
                    continue;
                }
                if let Some(entry) = terms.iter_mut().find(|(tt, _)| *tt == t) {
                    entry.1 = entry.1.wrapping_add(c);
                } else {
                    terms.push((t, c));
                }
            }
        }
    }
    let mut out: Vec<Expr> = terms
        .into_iter()
        .filter(|(_, c)| *c != 0)
        .map(|(t, c)| with_coeff(c, t))
        .collect();
    out.sort_by(|a, b| a.cmp_key(b));
    if constant != 0 {
        out.insert(0, Expr::Int(constant));
    }
    match out.len() {
        0 => Expr::Int(0),
        1 => out.into_iter().next().unwrap(),
        _ => Expr::Add(out),
    }
}

fn simplify_mul(ops: Vec<Expr>) -> Expr {
    let mut constant = 1i64;
    let mut factors: Vec<Expr> = Vec::new();
    let mut stack: Vec<Expr> = ops;
    stack.reverse();
    while let Some(e) = stack.pop() {
        match e {
            Expr::Mul(v) => {
                for x in v.into_iter().rev() {
                    stack.push(x);
                }
            }
            Expr::Int(0) => return Expr::Int(0),
            Expr::Int(v) => constant = constant.wrapping_mul(v),
            other => factors.push(other),
        }
    }
    if constant == 0 {
        return Expr::Int(0);
    }
    // Distribute the constant into the first sum factor so that
    // `2*(a+b)*x` and `(2*a + 2*b)*x` canonicalize identically. (Canonical
    // `Add` operands are never sums themselves, so this terminates.)
    if constant != 1 {
        if let Some(pos) = factors.iter().position(|f| matches!(f, Expr::Add(_))) {
            let Expr::Add(terms) = factors.remove(pos) else {
                unreachable!()
            };
            let distributed = simplify_add(
                terms
                    .into_iter()
                    .map(|t| simplify_mul(vec![Expr::Int(constant), t]))
                    .collect(),
            );
            factors.push(distributed);
            return simplify_mul(factors);
        }
    }
    factors.sort_by(|a, b| a.cmp_key(b));
    if factors.is_empty() {
        return Expr::Int(constant);
    }
    if constant != 1 {
        factors.insert(0, Expr::Int(constant));
    }
    if factors.len() == 1 {
        factors.into_iter().next().unwrap()
    } else {
        Expr::Mul(factors)
    }
}

fn simplify_floordiv(a: Expr, b: Expr) -> Expr {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        if y != 0 {
            return Expr::Int(floor_div(x, y));
        }
    }
    if b.is_one() {
        return a;
    }
    if a.is_zero() {
        return Expr::Int(0);
    }
    // (c*t) // c == t for positive constant c dividing all coefficients.
    if let Some(c) = b.as_int() {
        if c > 0 {
            if let Some(q) = divide_exact(&a, c) {
                return q;
            }
        }
    }
    Expr::FloorDiv(Box::new(a), Box::new(b))
}

/// Exact division of a canonical sum/product by a positive constant, when
/// every coefficient is divisible. Returns `None` otherwise.
fn divide_exact(e: &Expr, c: i64) -> Option<Expr> {
    match e {
        Expr::Int(v) => {
            if v % c == 0 {
                Some(Expr::Int(v / c))
            } else {
                None
            }
        }
        Expr::Add(terms) => {
            let parts: Option<Vec<Expr>> = terms.iter().map(|t| divide_exact(t, c)).collect();
            parts.map(simplify_add)
        }
        other => {
            let (coeff, term) = split_coeff(other);
            if coeff % c == 0 {
                Some(with_coeff(coeff / c, term))
            } else {
                None
            }
        }
    }
}

fn simplify_mod(a: Expr, b: Expr) -> Expr {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        if y != 0 {
            return Expr::Int(floor_mod(x, y));
        }
    }
    if b.is_one() {
        return Expr::Int(0);
    }
    if a.is_zero() {
        return Expr::Int(0);
    }
    if a == b {
        return Expr::Int(0);
    }
    Expr::Mod(Box::new(a), Box::new(b))
}

fn simplify_min(a: Expr, b: Expr) -> Expr {
    if a == b {
        return a;
    }
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return Expr::Int(x.min(y));
    }
    if let Some(o) = a.sym_cmp(&b, &Assumptions::default()) {
        return if o == Ordering::Greater { b } else { a };
    }
    let (a, b) = if a.cmp_key(&b) == Ordering::Greater {
        (b, a)
    } else {
        (a, b)
    };
    Expr::Min(Box::new(a), Box::new(b))
}

fn simplify_max(a: Expr, b: Expr) -> Expr {
    if a == b {
        return a;
    }
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return Expr::Int(x.max(y));
    }
    if let Some(o) = a.sym_cmp(&b, &Assumptions::default()) {
        return if o == Ordering::Less { b } else { a };
    }
    let (a, b) = if a.cmp_key(&b) == Ordering::Greater {
        (b, a)
    } else {
        (a, b)
    };
    Expr::Max(Box::new(a), Box::new(b))
}

// --- operator overloads -----------------------------------------------------

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::add([self, rhs])
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::sub(self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::mul([self, rhs])
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::neg(self)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Int(v)
    }
}

impl From<&str> for Expr {
    fn from(s: &str) -> Expr {
        // Accept either a bare symbol/number or a full expression.
        crate::parse::parse_expr(s).unwrap_or_else(|e| panic!("invalid expression `{s}`: {e}"))
    }
}

// --- display -----------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(e: &Expr) -> u8 {
            match e {
                Expr::Int(v) if *v < 0 => 1,
                Expr::Int(_) | Expr::Sym(_) | Expr::Min(..) | Expr::Max(..) => 4,
                Expr::Mul(_) => 3,
                Expr::FloorDiv(..) | Expr::Mod(..) => 2,
                Expr::Add(_) => 1,
            }
        }
        fn write_child(f: &mut fmt::Formatter<'_>, e: &Expr, min_prec: u8) -> fmt::Result {
            if prec(e) < min_prec {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        }
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Sym(s) => write!(f, "{s}"),
            Expr::Add(v) => {
                // Canonical form stores any constant first; render it last
                // (`t + 1`, not `1 + t`).
                let mut disp: Vec<&Expr> = v.iter().collect();
                if disp.len() > 1 && matches!(disp[0], Expr::Int(_)) {
                    disp.rotate_left(1);
                }
                let v = disp;
                for (i, e) in v.iter().enumerate() {
                    let e: &Expr = e;
                    if i == 0 {
                        write_child(f, e, 1)?;
                        continue;
                    }
                    // Render `+ -c*t` as `- c*t`.
                    let (c, t) = split_coeff(e);
                    if c < 0 {
                        write!(f, " - ")?;
                        let pos = with_coeff(-c, t);
                        write_child(f, &pos, 2)?;
                    } else {
                        write!(f, " + ")?;
                        write_child(f, e, 2)?;
                    }
                }
                Ok(())
            }
            Expr::Mul(v) => {
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write_child(f, e, 3)?;
                }
                Ok(())
            }
            Expr::FloorDiv(a, b) => {
                write_child(f, a, 3)?;
                write!(f, " // ")?;
                write_child(f, b, 4)
            }
            Expr::Mod(a, b) => {
                write_child(f, a, 3)?;
                write!(f, " % ")?;
                write_child(f, b, 4)
            }
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env;

    fn s(n: &str) -> Expr {
        Expr::sym(n)
    }
    fn i(v: i64) -> Expr {
        Expr::int(v)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(i(2) + i(3), i(5));
        assert_eq!(i(2) * i(3), i(6));
        assert_eq!(i(7).floor_div_by(i(2)), i(3));
        assert_eq!(i(-7).floor_div_by(i(2)), i(-4));
        assert_eq!(i(-7).modulo(i(2)), i(1));
        assert_eq!(i(7).modulo(i(-2)), i(-1));
    }

    #[test]
    fn like_terms_collect() {
        let e = s("x") + s("x") + s("x");
        assert_eq!(e, Expr::mul([i(3), s("x")]));
        let e2 = s("x") * i(2) + s("x") * i(-2);
        assert_eq!(e2, i(0));
    }

    #[test]
    fn add_canonical_order_is_stable() {
        let a = s("b") + s("a") + i(1);
        let b = i(1) + s("a") + s("b");
        assert_eq!(a, b);
    }

    #[test]
    fn distribute_constant_over_sum() {
        let e = Expr::mul([i(2), s("a") + s("b")]);
        let f = Expr::mul([i(2), s("a")]) + Expr::mul([i(2), s("b")]);
        assert_eq!(e, f);
    }

    #[test]
    fn neutral_elements() {
        assert_eq!(s("x") + i(0), s("x"));
        assert_eq!(s("x") * i(1), s("x"));
        assert_eq!(s("x") * i(0), i(0));
        assert_eq!(s("x").floor_div_by(i(1)), s("x"));
        assert_eq!(s("x").modulo(i(1)), i(0));
    }

    #[test]
    fn exact_division() {
        let e = (Expr::mul([i(4), s("n")]) + i(8)).floor_div_by(i(4));
        assert_eq!(e, s("n") + i(2));
        // Non-divisible stays as floordiv.
        let e2 = (s("n") + i(1)).floor_div_by(i(2));
        assert!(matches!(e2, Expr::FloorDiv(..)));
    }

    #[test]
    fn min_max_folding() {
        assert_eq!(i(3).min2(i(5)), i(3));
        assert_eq!(i(3).max2(i(5)), i(5));
        assert_eq!(s("n").min2(s("n")), s("n"));
        // min(n, n+1) == n decidable without assumptions.
        assert_eq!(s("n").min2(s("n") + i(1)), s("n"));
        assert_eq!(s("n").max2(s("n") + i(1)), s("n") + i(1));
        // min is commutatively canonical.
        assert_eq!(s("a").min2(s("b")), s("b").min2(s("a")));
    }

    #[test]
    fn substitution() {
        let e = s("i") * s("n") + s("i");
        let r = e.subs("i", &i(3));
        assert_eq!(r, Expr::mul([i(3), s("n")]) + i(3));
        let r2 = e.subs("i", &(s("j") + i(1)));
        let expect = (s("j") + i(1)) * s("n") + s("j") + i(1);
        assert_eq!(r2, expect);
    }

    #[test]
    fn eval_matches_structure() {
        let e = (s("i") + i(1)).floor_div_by(i(2)) * s("n");
        let env = env(&[("i", 5), ("n", 10)]);
        assert_eq!(e.eval(&env).unwrap(), 30);
        assert_eq!(
            e.eval(&crate::env(&[("i", 5)])),
            Err(EvalError::UnboundSymbol("n".into()))
        );
    }

    #[test]
    fn sym_cmp_with_assumptions() {
        let a = Assumptions {
            positive: ["n".to_string()].into_iter().collect(),
            ..Default::default()
        };
        let e = s("n") + i(1);
        assert_eq!(e.sym_cmp(&i(0), &a), Some(Ordering::Greater));
        assert_eq!(s("n").sym_cmp(&s("n"), &a), Some(Ordering::Equal));
        assert_eq!(s("m").sym_cmp(&s("n"), &a), None);
    }

    #[test]
    fn display_roundtrip() {
        for txt in [
            "a + b",
            "2*a - b + 3",
            "a*b*c",
            "(a + 1) // 2",
            "a % 4",
            "min(a, b)",
            "max(a + 1, 2*b)",
            "a - 1",
        ] {
            let e = crate::parse_expr(txt).unwrap();
            let shown = e.to_string();
            let back = crate::parse_expr(&shown).unwrap();
            assert_eq!(e, back, "roundtrip failed for `{txt}` -> `{shown}`");
        }
    }

    #[test]
    fn free_symbols() {
        let e = crate::parse_expr("i*N + min(j, M) % 2").unwrap();
        let syms: Vec<String> = e.free_symbols().into_iter().collect();
        assert_eq!(syms, ["M", "N", "i", "j"]);
    }
}
