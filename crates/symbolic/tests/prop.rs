//! Property tests for the symbolic engine: simplification must be
//! value-preserving, idempotent, and canonical (equal values from equal
//! structure), and the range algebra must be conservative.

use proptest::prelude::*;
use sdfg_symbolic::{Env, Expr, Subset, SymRange};

const SYMS: [&str; 4] = ["a", "b", "c", "d"];

/// Random raw (non-canonicalized) expression trees.
fn raw_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::Int),
        (0usize..SYMS.len()).prop_map(|i| Expr::Sym(SYMS[i].to_string())),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Expr::Add),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Expr::Mul),
            (inner.clone(), 1i64..8)
                .prop_map(|(a, b)| Expr::FloorDiv(Box::new(a), Box::new(Expr::Int(b)))),
            (inner.clone(), 1i64..8)
                .prop_map(|(a, b)| Expr::Mod(Box::new(a), Box::new(Expr::Int(b)))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn env_strategy() -> impl Strategy<Value = Env> {
    prop::collection::vec(-50i64..50, SYMS.len()).prop_map(|vals| {
        SYMS.iter()
            .zip(vals)
            .map(|(s, v)| (s.to_string(), v))
            .collect()
    })
}

proptest! {
    #[test]
    fn simplify_preserves_value(e in raw_expr(), env in env_strategy()) {
        let simplified = e.simplify();
        let v1 = e.eval(&env);
        let v2 = simplified.eval(&env);
        prop_assert_eq!(v1, v2);
    }

    #[test]
    fn simplify_is_idempotent(e in raw_expr()) {
        let once = e.simplify();
        let twice = once.simplify();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn display_parse_roundtrip(e in raw_expr()) {
        let canon = e.simplify();
        let text = canon.to_string();
        let back = sdfg_symbolic::parse_expr(&text).unwrap();
        prop_assert_eq!(canon, back, "text was `{}`", text);
    }

    #[test]
    fn addition_commutes_canonically(e1 in raw_expr(), e2 in raw_expr()) {
        let a = e1.clone().simplify() + e2.clone().simplify();
        let b = e2.simplify() + e1.simplify();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn subs_then_eval_equals_extended_env(e in raw_expr(), env in env_strategy(), v in -20i64..20) {
        // e[a := v] evaluated without `a` == e evaluated with a=v
        let substituted = e.simplify().subs("a", &Expr::Int(v));
        let mut env2 = env.clone();
        env2.insert("a".into(), v);
        prop_assert_eq!(substituted.eval(&env2), e.eval(&env2));
    }

    #[test]
    fn range_union_contains_both(s1 in 0i64..30, l1 in 1i64..20, s2 in 0i64..30, l2 in 1i64..20) {
        let a = SymRange::new(s1, s1 + l1);
        let b = SymRange::new(s2, s2 + l2);
        let u = a.union(&b);
        let env = Env::new();
        let (us, ue, _, _) = u.eval(&env).unwrap();
        prop_assert!(us <= s1 && ue >= s1 + l1);
        prop_assert!(us <= s2 && ue >= s2 + l2);
    }

    #[test]
    fn image_contains_every_point(start in 0i64..10, len in 1i64..12, coeff in -3i64..4, off in -5i64..6) {
        // access index `coeff*i + off` for i in start..start+len: the image
        // bounding range must contain every concrete access.
        let access = Expr::Int(coeff) * Expr::sym("i") + Expr::Int(off);
        let sub = Subset::new(vec![SymRange::index(access.clone())]);
        let prange = SymRange::new(start, start + len);
        let img = sub.image_under("i", &prange);
        let env = Env::new();
        let (lo, hi, _, _) = img.dims[0].eval(&env).unwrap();
        for i in start..start + len {
            let mut e = Env::new();
            e.insert("i".into(), i);
            let v = access.eval(&e).unwrap();
            prop_assert!(lo <= v && v < hi, "point {} outside image [{}, {})", v, lo, hi);
        }
    }

    #[test]
    fn volume_matches_enumeration(start in -5i64..10, len in 0i64..15, step in 1i64..4) {
        let r = SymRange::strided(start, start + len, step);
        let env = Env::new();
        let n = r.eval_len(&env).unwrap();
        let mut count = 0;
        let mut i = start;
        while i < start + len {
            count += 1;
            i += step;
        }
        prop_assert_eq!(n, count);
    }
}
