//! # sdfg-codegen — code generation (paper §4.3 step ❷)
//!
//! "The code generation process of an SDFG is hierarchical, starting from
//! top-level states and traversing into scopes. It begins by emitting
//! external interface code and the top-level state machine. Within each
//! state, nodes are traversed in topological order, and a platform-specific
//! dispatcher is assigned to generate the respective code."
//!
//! This crate emits human-readable source text for three dispatchers:
//!
//! * [`cpu`] — C-like code with OpenMP-style pragmas: maps become parallel
//!   loop nests, WCR memlets become `#pragma omp atomic`, the state machine
//!   becomes `for`/`if` structures where detected (guarded-loop pattern)
//!   with a `goto` fallback (§4.3: "emitting for-loops and branches when
//!   detected, or using conditional goto statements as a fallback").
//! * [`gpu`] — CUDA-style kernels for `GpuDevice` maps (grid from the map
//!   range, `__syncthreads()` on thread-block scopes, `cudaMemcpy` for
//!   host↔device copy states, atomics for WCR).
//! * [`fpga`] — HLS-style module descriptions for `FpgaDevice` maps
//!   (processing elements, `hls::stream` FIFOs, pipeline pragmas, unrolled
//!   PE arrays).
//!
//! The generated sources are for inspection and testing — execution in this
//! repository goes through `sdfg-exec` (CPU) and the `gpu-sim`/`fpga-sim`
//! crates, which play the role of the "compiler invocation" step ❸.

pub mod c_expr;
pub mod cpu;
pub mod fpga;
pub mod gpu;
pub mod jit;
pub mod statemachine;

pub(crate) use cpu::flat_index as cpu_flat_index;
pub use cpu::generate_cpu;
pub use fpga::generate_fpga;
pub use gpu::generate_gpu;
