//! JIT kernel emission: standalone C translation units for recognized map
//! bodies. The executor (`sdfg-exec`) compiles the source with the probed
//! system C compiler into a shared object and `dlopen`s it; this module
//! only produces text.
//!
//! # ABI contract
//!
//! Every kernel exports a single entry point, [`JIT_ENTRY`]:
//!
//! ```c
//! void sdfg_kernel(const double *const *ins,  const long long *in_off,
//!                  const long long *in_stp,   double *const *outs,
//!                  const long long *out_off,  const long long *out_stp,
//!                  const double *syms,        long long n);
//! ```
//!
//! The caller resolves each port's affine scalar window to a
//! `(base offset, stride)` pair for the innermost loop dimension and
//! pre-validates that every address the kernel will touch is in bounds —
//! the generated code performs **no bounds checks**. Iteration
//! `k ∈ [0, n)` reads input `i` at `ins[i][in_off[i] + k*in_stp[i]]` and
//! addresses output `j` at `outs[j][out_off[j] + k*out_stp[j]]`. `syms[s]`
//! holds the value of the tasklet program's `symbols[s]`.
//!
//! # Bitwise discipline
//!
//! A JIT run must be bitwise identical to the tier it replaces, so:
//!
//! * the executor compiles kernels with `-ffp-contract=off` (Rust never
//!   contracts `a*b + c` into an FMA, so the C must not either);
//! * recognized native shapes mirror the executor's micro-kernels
//!   statement for statement (see `crate::cpu`);
//! * unrecognized bodies mirror the tasklet VM via
//!   [`crate::c_expr::vm_expr_to_c`];
//! * programs whose VM execution could observe *stale register state*
//!   (a local read on a path that did not assign it — the VM's register
//!   file persists across map points) are rejected and fall back.
//!
//! Anything this module cannot prove bitwise-equivalent yields
//! `Err(reason)`; the executor records the reason and falls back to the
//! next tier, which is always correct.

use crate::c_expr::vm_expr_to_c;
use crate::cpu::{lincomb_value_c, mulchain_value_c, pattern_value_c};
use sdfg_lang::ast::{BinOp, Stmt};
use sdfg_lang::recognize::{LinComb, MulChain, Pattern};
use sdfg_lang::TaskletProgram;
use std::fmt::Write as _;

/// Name of the exported kernel entry point.
pub const JIT_ENTRY: &str = "sdfg_kernel";

/// WCR reduction operators the JIT supports (`Wcr::Custom` is rejected
/// upstream, before a spec is built).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JitWcrOp {
    /// `old + new`
    Sum,
    /// `old * new`
    Product,
    /// `fmin(old, new)`
    Min,
    /// `fmax(old, new)`
    Max,
}

impl JitWcrOp {
    fn combine(&self, old: &str, new: &str) -> String {
        match self {
            JitWcrOp::Sum => format!("({old} + {new})"),
            JitWcrOp::Product => format!("({old} * {new})"),
            JitWcrOp::Min => format!("fmin({old}, {new})"),
            JitWcrOp::Max => format!("fmax({old}, {new})"),
        }
    }
}

/// How the kernel updates one output port per iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JitOutMode {
    /// Plain store: `out[off] = v` (native element-wise without WCR).
    Write,
    /// Read-modify-write: the output local is seeded from memory before
    /// the body runs and stored back after — the affine VM's protocol for
    /// plain (non-WCR) scalar outputs.
    ReadModifyWrite,
    /// WCR combine per iteration: `out[off] = f(out[off], v)`. Only valid
    /// when the executor's race analysis proved the write race-free
    /// (non-atomic); atomic WCR cannot be mirrored in plain C.
    CombinePerPoint(JitWcrOp),
    /// Register accumulation for a loop-invariant WCR output (stride 0):
    /// the caller seeds `outs[j][out_off[j]]` with the reduction identity,
    /// the kernel folds into it once per iteration and stores it back, and
    /// the caller performs the final — possibly atomic — combine into the
    /// real array. Only valid for native single-output shapes.
    Accumulate(JitWcrOp),
}

/// The body shape to emit, as decided by the lowering pipeline.
pub enum JitBody<'a> {
    /// Recognized canonical pattern (native micro-kernel mirror).
    Pattern(Pattern),
    /// Linear combination (stencil) shape.
    LinComb(&'a LinComb),
    /// Product chain (contraction) shape.
    MulChain(&'a MulChain),
    /// Unrecognized body: mirror the tasklet VM statement by statement.
    Program(&'a TaskletProgram),
}

/// Everything the emitter needs to produce one kernel.
pub struct JitSpec<'a> {
    /// Body shape.
    pub body: JitBody<'a>,
    /// Number of input ports (slot order).
    pub n_inputs: usize,
    /// Update mode per output port (slot order).
    pub outs: &'a [JitOutMode],
}

/// Emits the complete C translation unit for a kernel, or the reason it
/// cannot be emitted bitwise-faithfully.
pub fn emit_jit_kernel(spec: &JitSpec<'_>) -> Result<String, String> {
    if spec.outs.is_empty() {
        return Err("no output ports".into());
    }
    let acc = spec
        .outs
        .iter()
        .any(|m| matches!(m, JitOutMode::Accumulate(_)));
    if acc && (spec.outs.len() != 1 || matches!(spec.body, JitBody::Program(_))) {
        return Err("register accumulation requires a single native output".into());
    }
    let mut src = String::new();
    src.push_str("#include <math.h>\n\n");
    src.push_str(
        "static double sdfg_mod(double a, double b) { return a - floor(a / b) * b; }\n\
         static double sdfg_and(double a, double b) { return a == 0.0 ? a : b; }\n\
         static double sdfg_or(double a, double b) { return a != 0.0 ? a : b; }\n\n",
    );
    let _ = writeln!(
        src,
        "void {JIT_ENTRY}(const double *const *ins, const long long *in_off,\n\
         \x20               const long long *in_stp, double *const *outs,\n\
         \x20               const long long *out_off, const long long *out_stp,\n\
         \x20               const double *syms, long long n) {{"
    );
    src.push_str(
        "  (void)ins; (void)in_off; (void)in_stp; (void)outs;\n\
         \x20 (void)out_off; (void)out_stp; (void)syms;\n",
    );
    if acc {
        let JitOutMode::Accumulate(op) = spec.outs[0] else {
            unreachable!()
        };
        src.push_str("  double acc = outs[0][out_off[0]];\n");
        src.push_str("  for (long long k = 0; k < n; ++k) {\n");
        emit_input_loads(&mut src, spec.n_inputs);
        emit_native_value(&mut src, &spec.body)?;
        let _ = writeln!(src, "    acc = {};", op.combine("acc", "val"));
        src.push_str("  }\n  outs[0][out_off[0]] = acc;\n");
    } else {
        src.push_str("  for (long long k = 0; k < n; ++k) {\n");
        emit_input_loads(&mut src, spec.n_inputs);
        match &spec.body {
            JitBody::Program(prog) => emit_vm_body(&mut src, prog, spec.outs)?,
            native => {
                emit_native_value(&mut src, native)?;
                emit_out_update(&mut src, 0, &spec.outs[0], "val")?;
            }
        }
        src.push_str("  }\n");
    }
    src.push_str("}\n");
    Ok(src)
}

fn emit_input_loads(src: &mut String, n_inputs: usize) {
    for i in 0..n_inputs {
        let _ = writeln!(
            src,
            "    const double v{i} = ins[{i}][in_off[{i}] + k * in_stp[{i}]];"
        );
    }
}

fn emit_native_value(src: &mut String, body: &JitBody<'_>) -> Result<(), String> {
    match body {
        JitBody::Pattern(p) => {
            let _ = writeln!(src, "    double val = {};", pattern_value_c(p));
        }
        JitBody::LinComb(lc) => src.push_str(&lincomb_value_c(lc, "    ")),
        JitBody::MulChain(mc) => src.push_str(&mulchain_value_c(mc, "    ")),
        JitBody::Program(_) => return Err("program body has no native value".into()),
    }
    Ok(())
}

/// Emits the per-iteration store for output `j` whose body value is in
/// C variable `val`.
fn emit_out_update(src: &mut String, j: usize, mode: &JitOutMode, val: &str) -> Result<(), String> {
    match mode {
        JitOutMode::Write | JitOutMode::ReadModifyWrite => {
            let _ = writeln!(
                src,
                "    outs[{j}][out_off[{j}] + k * out_stp[{j}]] = {val};"
            );
        }
        JitOutMode::CombinePerPoint(op) => {
            let _ = writeln!(
                src,
                "    {{ const long long o = out_off[{j}] + k * out_stp[{j}];\n\
                 \x20     outs[{j}][o] = {}; }}",
                op.combine(&format!("outs[{j}][o]"), val)
            );
        }
        JitOutMode::Accumulate(_) => return Err("accumulate handled separately".into()),
    }
    Ok(())
}

// --- VM-mirror body emission --------------------------------------------------

/// Emits an unrecognized tasklet body as C statements that mirror the
/// bytecode VM. Output locals `o{j}` are seeded per the output mode
/// (memory for read-modify-write, `0.0` for WCR — exactly the affine VM
/// loop's protocol) and flushed after the body.
fn emit_vm_body(
    src: &mut String,
    prog: &TaskletProgram,
    outs: &[JitOutMode],
) -> Result<(), String> {
    if outs.len() != prog.outputs.len() {
        return Err("output arity mismatch".into());
    }
    // Seed output locals.
    for (j, mode) in outs.iter().enumerate() {
        match mode {
            JitOutMode::ReadModifyWrite => {
                let _ = writeln!(
                    src,
                    "    double o{j} = outs[{j}][out_off[{j}] + k * out_stp[{j}]];"
                );
            }
            JitOutMode::Write | JitOutMode::CombinePerPoint(_) => {
                let _ = writeln!(src, "    double o{j} = 0.0;");
            }
            JitOutMode::Accumulate(_) => {
                return Err("register accumulation on a VM-mirror body".into())
            }
        }
    }
    // Declare locals up front (VM registers start zeroed); assignments in
    // the body are definite-assignment checked, so the initializer is only
    // observable where the VM would also observe a fresh zero register.
    let mut all_locals: Vec<String> = Vec::new();
    collect_locals(&prog.body, prog, &mut all_locals);
    for l in &all_locals {
        let _ = writeln!(src, "    double l_{l} = 0.0;");
    }
    let mut st = VmEmitState {
        prog,
        declared: Vec::new(),
        definite: Vec::new(),
    };
    for s in &prog.body {
        st.emit_stmt(s, "    ", src)?;
    }
    // Flush output locals.
    for (j, mode) in outs.iter().enumerate() {
        emit_out_update(src, j, mode, &format!("o{j}"))?;
    }
    Ok(())
}

/// Collects every local name the body defines (assignment targets that are
/// not output connectors), in first-definition order.
fn collect_locals(body: &[Stmt], prog: &TaskletProgram, acc: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Assign { target, .. } => {
                if !prog.outputs.contains(target)
                    && !prog.inputs.contains(target)
                    && !acc.contains(target)
                {
                    acc.push(target.clone());
                }
            }
            Stmt::If { then, els, .. } => {
                collect_locals(then, prog, acc);
                collect_locals(els, prog, acc);
            }
            Stmt::Push { .. } => {}
        }
    }
}

/// Walks the body in the same textual order as the bytecode compiler,
/// tracking which locals exist (`declared`, governing name resolution) and
/// which are definitely assigned on every path (`definite`, guarding
/// against the VM's cross-point register persistence).
struct VmEmitState<'a> {
    prog: &'a TaskletProgram,
    declared: Vec<String>,
    definite: Vec<String>,
}

impl VmEmitState<'_> {
    /// Resolution order must match the bytecode compiler: inputs, then
    /// locals declared so far, then outputs, then SDFG symbols.
    fn resolve_read(&self, n: &str) -> Result<String, String> {
        if let Some(i) = self.prog.inputs.iter().position(|x| x == n) {
            return Ok(format!("v{i}"));
        }
        if self.declared.iter().any(|l| l == n) {
            if !self.definite.iter().any(|l| l == n) {
                return Err(format!(
                    "local `{n}` may be read unassigned (stale VM register)"
                ));
            }
            return Ok(format!("l_{n}"));
        }
        if let Some(j) = self.prog.outputs.iter().position(|x| x == n) {
            return Ok(format!("o{j}"));
        }
        if let Some(s) = self.prog.symbols.iter().position(|x| x == n) {
            return Ok(format!("syms[{s}]"));
        }
        Err(format!("unresolved name `{n}`"))
    }

    fn emit_stmt(&mut self, s: &Stmt, ind: &str, src: &mut String) -> Result<(), String> {
        match s {
            Stmt::Push { stream, .. } => Err(format!("stream push to `{stream}`")),
            Stmt::Assign {
                index: Some(_),
                target,
                ..
            } => Err(format!("indexed store to `{target}`")),
            Stmt::Assign {
                target,
                index: None,
                op,
                value,
            } => {
                // The compiler resolves the RHS before defining the target
                // local, so emit it under the current scope first.
                let rhs = {
                    let resolve = |n: &str| self.resolve_read(n);
                    vm_expr_to_c(value, &resolve)?
                };
                let lhs = if let Some(j) = self.prog.outputs.iter().position(|x| x == target) {
                    format!("o{j}")
                } else if self.prog.inputs.contains(target) {
                    return Err(format!("assignment to input `{target}`"));
                } else {
                    if !self.declared.contains(target) {
                        if op.is_some() {
                            return Err(format!("augmented assignment to undefined `{target}`"));
                        }
                        self.declared.push(target.clone());
                    }
                    if !self.definite.contains(target) {
                        self.definite.push(target.clone());
                    }
                    format!("l_{target}")
                };
                match op {
                    None => {
                        let _ = writeln!(src, "{ind}{lhs} = {rhs};");
                    }
                    Some(op) => {
                        // `t op= v` runs as `t = apply_bin(op, t, v)`.
                        let e = match op {
                            BinOp::Add => format!("({lhs} + {rhs})"),
                            BinOp::Sub => format!("({lhs} - {rhs})"),
                            BinOp::Mul => format!("({lhs} * {rhs})"),
                            BinOp::Div => format!("({lhs} / {rhs})"),
                            BinOp::FloorDiv => format!("floor({lhs} / {rhs})"),
                            BinOp::Mod => format!("sdfg_mod({lhs}, {rhs})"),
                            BinOp::Pow => format!("pow({lhs}, {rhs})"),
                        };
                        let _ = writeln!(src, "{ind}{lhs} = {e};");
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let c = {
                    let resolve = |n: &str| self.resolve_read(n);
                    vm_expr_to_c(cond, &resolve)?
                };
                let _ = writeln!(src, "{ind}if (({c}) != 0.0) {{");
                let outer_definite = self.definite.clone();
                let inner = format!("{ind}  ");
                for s in then {
                    self.emit_stmt(s, &inner, src)?;
                }
                let then_definite = std::mem::replace(&mut self.definite, outer_definite.clone());
                let _ = writeln!(src, "{ind}}} else {{");
                for s in els {
                    self.emit_stmt(s, &inner, src)?;
                }
                let els_definite = std::mem::take(&mut self.definite);
                // Only locals assigned on *both* paths are definite after
                // the branch.
                self.definite = outer_definite;
                for l in &then_definite {
                    if els_definite.contains(l) && !self.definite.contains(l) {
                        self.definite.push(l.clone());
                    }
                }
                let _ = writeln!(src, "{ind}}}");
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_lang::recognize::{BinOpKind, Operand};

    fn prog(code: &str, ins: &[&str], outs: &[&str]) -> TaskletProgram {
        let ins: Vec<String> = ins.iter().map(|s| s.to_string()).collect();
        let outs: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        TaskletProgram::compile(code, &ins, &outs).unwrap()
    }

    #[test]
    fn emits_accumulating_pattern_kernel() {
        let spec = JitSpec {
            body: JitBody::Pattern(Pattern::BinOp {
                op: BinOpKind::Mul,
                a: Operand::Input(0),
                b: Operand::Input(1),
            }),
            n_inputs: 2,
            outs: &[JitOutMode::Accumulate(JitWcrOp::Sum)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("void sdfg_kernel("));
        assert!(src.contains("double acc = outs[0][out_off[0]];"));
        assert!(src.contains("double val = (v0 * v1);"));
        assert!(src.contains("acc = (acc + val);"));
        assert!(src.contains("outs[0][out_off[0]] = acc;"));
    }

    #[test]
    fn emits_elementwise_and_combine_kernels() {
        let spec = JitSpec {
            body: JitBody::Pattern(Pattern::Axpb {
                input: 0,
                mul: 2.0,
                add: -1.5,
            }),
            n_inputs: 1,
            outs: &[JitOutMode::Write],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double val = (2.0 * v0 + -1.5);"));
        assert!(src.contains("outs[0][out_off[0] + k * out_stp[0]] = val;"));

        let spec = JitSpec {
            body: JitBody::Pattern(Pattern::Copy { input: 0 }),
            n_inputs: 1,
            outs: &[JitOutMode::CombinePerPoint(JitWcrOp::Max)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("fmax(outs[0][o], val)"));
    }

    #[test]
    fn emits_lincomb_and_mulchain() {
        let lc = LinComb {
            terms: vec![(0, 1.0), (1, -2.0), (2, 1.0)],
            bias: 0.5,
        };
        let spec = JitSpec {
            body: JitBody::LinComb(&lc),
            n_inputs: 3,
            outs: &[JitOutMode::Write],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double val = 0.5;"));
        assert!(src.contains("val += 1.0 * v0;"));
        assert!(src.contains("val += -2.0 * v1;"));

        let mc = MulChain {
            slots: vec![0, 1, 2],
            scale: -1.0,
        };
        let spec = JitSpec {
            body: JitBody::MulChain(&mc),
            n_inputs: 3,
            outs: &[JitOutMode::Accumulate(JitWcrOp::Sum)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double val = -1.0;"));
        assert!(src.contains("val *= v0;"));
    }

    #[test]
    fn emits_vm_mirror_program() {
        let p = prog("t = a * a\no = t + b % a", &["a", "b"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 2,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double o0 = outs[0][out_off[0] + k * out_stp[0]];"));
        assert!(src.contains("l_t = (v0 * v0);"));
        assert!(src.contains("o0 = (l_t + sdfg_mod(v1, v0));"));
        assert!(src.contains("static double sdfg_mod"));
    }

    #[test]
    fn vm_mirror_branches_and_symbols() {
        let p = prog(
            "if a > 0:\n    s = 1.0\nelse:\n    s = -1.0\no = s * N",
            &["a"],
            &["o"],
        );
        assert_eq!(p.symbols, vec!["N".to_string()]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::CombinePerPoint(JitWcrOp::Sum)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("if ((((v0 > 0.0) ? 1.0 : 0.0)) != 0.0) {"));
        assert!(src.contains("o0 = (l_s * syms[0]);"));
    }

    #[test]
    fn rejects_conditionally_assigned_local() {
        // `t` is only assigned when the branch is taken; the VM would read
        // a stale register on other points, which C cannot mirror.
        let p = prog("if a > 0:\n    t = a\no = t + 1", &["a"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        let err = emit_jit_kernel(&spec).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn rejects_indexed_ports_and_bad_shapes() {
        let p = prog("o = w[0] + w[1]", &["w"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        assert!(emit_jit_kernel(&spec).is_err());

        // Accumulate is native-only.
        let p2 = prog("o = a + 1", &["a"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p2),
            n_inputs: 1,
            outs: &[JitOutMode::Accumulate(JitWcrOp::Sum)],
        };
        assert!(emit_jit_kernel(&spec).is_err());
    }

    #[test]
    fn branch_joined_locals_are_definite() {
        let p = prog(
            "if a > 0:\n    t = a\nelse:\n    t = -a\no = t",
            &["a"],
            &["o"],
        );
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("o0 = l_t;"));
    }
}
