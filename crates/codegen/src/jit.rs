//! JIT kernel emission: standalone C translation units for recognized map
//! bodies. The executor (`sdfg-exec`) compiles the source with the probed
//! system C compiler into a shared object and `dlopen`s it; this module
//! only produces text.
//!
//! # ABI contract
//!
//! Every kernel exports a single entry point, [`JIT_ENTRY`]:
//!
//! ```c
//! void sdfg_kernel(const double *const *ins,  const long long *in_off,
//!                  const long long *in_stp,   double *const *outs,
//!                  const long long *out_off,  const long long *out_stp,
//!                  const double *syms,        long long n);
//! ```
//!
//! The caller resolves each port's affine scalar window to a
//! `(base offset, stride)` pair for the innermost loop dimension and
//! pre-validates that every address the kernel will touch is in bounds —
//! the generated code performs **no bounds checks**. Iteration
//! `k ∈ [0, n)` reads input `i` at `ins[i][in_off[i] + k*in_stp[i]]` and
//! addresses output `j` at `outs[j][out_off[j] + k*out_stp[j]]`. `syms[s]`
//! holds the value of the tasklet program's `symbols[s]`.
//!
//! # Bitwise discipline
//!
//! A JIT run must be bitwise identical to the tier it replaces, so:
//!
//! * the executor compiles kernels with `-ffp-contract=off` (Rust never
//!   contracts `a*b + c` into an FMA, so the C must not either);
//! * recognized native shapes mirror the executor's micro-kernels
//!   statement for statement (see `crate::cpu`);
//! * unrecognized bodies mirror the tasklet VM via
//!   [`crate::c_expr::vm_expr_to_c`];
//! * programs whose VM execution could observe *stale register state*
//!   (a local read on a path that did not assign it — the VM's register
//!   file persists across map points) are rejected and fall back.
//!
//! Anything this module cannot prove bitwise-equivalent yields
//! `Err(reason)`; the executor records the reason and falls back to the
//! next tier, which is always correct.
//!
//! # Nest ABI (v2)
//!
//! Whole map nests — including nests whose inner bounds are affine in
//! outer iteration variables (triangular, banded, trapezoidal) and bodies
//! of several tasklets with intra-nest dependencies — compile to a second
//! entry point, [`NEST_ENTRY`]:
//!
//! ```c
//! void sdfg_nest(double *const *bufs, const long long *geo,
//!                const double *syms,  const long long *bnd,
//!                long long lo0, long long hi0, long long *npts);
//! ```
//!
//! * `bufs` — one base pointer per bound container slot.
//! * `geo` — port geometry, one row of `2 + D` entries per port
//!   (`D` = nest dimension count): `[buf, base, c0 … c_{D-1}]`. Port `p`
//!   at point `(i0 … i_{D-1})` addresses
//!   `bufs[geo[pS]][geo[pS+1] + Σ_d i_d·geo[pS+2+d]]` with `S = 2+D`.
//!   The caller folds symbol values into `base` and pre-validates that
//!   every reachable address is in bounds — the kernel performs **no
//!   bounds checks**.
//! * `bnd` — affine loop bounds, two rows of `1 + D` entries per
//!   dimension (lower then upper, upper exclusive):
//!   `[const, k0 … k_{D-1}]`; dimension `d` iterates
//!   `i_d ∈ [const_lo + Σ_{e<d} i_e·k_e, const_hi + Σ_{e<d} i_e·k_e)`
//!   with unit step. Dimension 0 ignores its `bnd` rows: its range is the
//!   `[lo0, hi0)` tile arguments, which is how the steal scheduler
//!   dispatches one native call per outer-dimension tile.
//! * `npts` — out-param: number of tasklet executions performed, for the
//!   caller's instrumentation counters.
//!
//! The body is a [`NestSpec`] tree of loops and tasklet calls emitted in
//! dependency order. Each call mirrors the executor's per-point protocol
//! exactly (same statement order, same `-ffp-contract=off` discipline);
//! register accumulation ([`JitOutMode::Accumulate`]) is emitted only as
//! the dedicated reduction-loop form, whose final combine is skipped for
//! empty ranges exactly like the native tier's early return. Atomic WCR
//! stays in Rust: nests containing atomic writes are declined upstream.

use crate::c_expr::vm_expr_to_c;
use crate::cpu::{lincomb_value_c, mulchain_value_c, pattern_value_c};
use sdfg_lang::ast::{BinOp, Stmt};
use sdfg_lang::recognize::{LinComb, MulChain, Pattern};
use sdfg_lang::TaskletProgram;
use std::fmt::Write as _;

/// Name of the exported kernel entry point.
pub const JIT_ENTRY: &str = "sdfg_kernel";

/// Name of the exported nest entry point (ABI v2).
pub const NEST_ENTRY: &str = "sdfg_nest";

/// WCR reduction operators the JIT supports (`Wcr::Custom` is rejected
/// upstream, before a spec is built).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JitWcrOp {
    /// `old + new`
    Sum,
    /// `old * new`
    Product,
    /// `fmin(old, new)`
    Min,
    /// `fmax(old, new)`
    Max,
}

impl JitWcrOp {
    fn combine(&self, old: &str, new: &str) -> String {
        match self {
            JitWcrOp::Sum => format!("({old} + {new})"),
            JitWcrOp::Product => format!("({old} * {new})"),
            JitWcrOp::Min => format!("fmin({old}, {new})"),
            JitWcrOp::Max => format!("fmax({old}, {new})"),
        }
    }
}

/// How the kernel updates one output port per iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JitOutMode {
    /// Plain store: `out[off] = v` (native element-wise without WCR).
    Write,
    /// Read-modify-write: the output local is seeded from memory before
    /// the body runs and stored back after — the affine VM's protocol for
    /// plain (non-WCR) scalar outputs.
    ReadModifyWrite,
    /// WCR combine per iteration: `out[off] = f(out[off], v)`. Only valid
    /// when the executor's race analysis proved the write race-free
    /// (non-atomic); atomic WCR cannot be mirrored in plain C.
    CombinePerPoint(JitWcrOp),
    /// Register accumulation for a loop-invariant WCR output (stride 0):
    /// the caller seeds `outs[j][out_off[j]]` with the reduction identity,
    /// the kernel folds into it once per iteration and stores it back, and
    /// the caller performs the final — possibly atomic — combine into the
    /// real array. Only valid for native single-output shapes.
    Accumulate(JitWcrOp),
}

/// The body shape to emit, as decided by the lowering pipeline.
pub enum JitBody<'a> {
    /// Recognized canonical pattern (native micro-kernel mirror).
    Pattern(Pattern),
    /// Linear combination (stencil) shape.
    LinComb(&'a LinComb),
    /// Product chain (contraction) shape.
    MulChain(&'a MulChain),
    /// Unrecognized body: mirror the tasklet VM statement by statement.
    Program(&'a TaskletProgram),
}

/// Everything the emitter needs to produce one kernel.
pub struct JitSpec<'a> {
    /// Body shape.
    pub body: JitBody<'a>,
    /// Number of input ports (slot order).
    pub n_inputs: usize,
    /// Update mode per output port (slot order).
    pub outs: &'a [JitOutMode],
}

/// Shared C preamble: includes and the helper functions mirroring the
/// bytecode VM's non-trivial binary operators.
fn emit_preamble(src: &mut String) {
    src.push_str("#include <math.h>\n\n");
    src.push_str(
        "static double sdfg_mod(double a, double b) { return a - floor(a / b) * b; }\n\
         static double sdfg_and(double a, double b) { return a == 0.0 ? a : b; }\n\
         static double sdfg_or(double a, double b) { return a != 0.0 ? a : b; }\n\n",
    );
}

/// Addressing scheme for one emission site: how input slot `i` is loaded
/// and how output slot `j` resolves to a `(base pointer, offset)` pair.
/// The v1 kernel addresses ports through `(off, stp)` arrays over the loop
/// variable `k`; nest kernels address ports through `geo` rows over the
/// nest iteration variables.
struct AddrCtx<'x> {
    ind: &'x str,
    in_expr: &'x dyn Fn(usize) -> String,
    out_ref: &'x dyn Fn(usize) -> (String, String),
}

/// Emits the complete C translation unit for a kernel, or the reason it
/// cannot be emitted bitwise-faithfully.
pub fn emit_jit_kernel(spec: &JitSpec<'_>) -> Result<String, String> {
    if spec.outs.is_empty() {
        return Err("no output ports".into());
    }
    let acc = spec
        .outs
        .iter()
        .any(|m| matches!(m, JitOutMode::Accumulate(_)));
    if acc && (spec.outs.len() != 1 || matches!(spec.body, JitBody::Program(_))) {
        return Err("register accumulation requires a single native output".into());
    }
    let mut src = String::new();
    emit_preamble(&mut src);
    let _ = writeln!(
        src,
        "void {JIT_ENTRY}(const double *const *ins, const long long *in_off,\n\
         \x20               const long long *in_stp, double *const *outs,\n\
         \x20               const long long *out_off, const long long *out_stp,\n\
         \x20               const double *syms, long long n) {{"
    );
    src.push_str(
        "  (void)ins; (void)in_off; (void)in_stp; (void)outs;\n\
         \x20 (void)out_off; (void)out_stp; (void)syms;\n",
    );
    let in_expr = |i: usize| format!("ins[{i}][in_off[{i}] + k * in_stp[{i}]]");
    let out_ref = |j: usize| {
        (
            format!("outs[{j}]"),
            format!("out_off[{j}] + k * out_stp[{j}]"),
        )
    };
    let actx = AddrCtx {
        ind: "    ",
        in_expr: &in_expr,
        out_ref: &out_ref,
    };
    if acc {
        let JitOutMode::Accumulate(op) = spec.outs[0] else {
            unreachable!()
        };
        src.push_str("  double acc = outs[0][out_off[0]];\n");
        src.push_str("  for (long long k = 0; k < n; ++k) {\n");
        emit_input_loads(&mut src, spec.n_inputs, &actx);
        emit_native_value(&mut src, &spec.body, actx.ind)?;
        let _ = writeln!(src, "    acc = {};", op.combine("acc", "val"));
        src.push_str("  }\n  outs[0][out_off[0]] = acc;\n");
    } else {
        src.push_str("  for (long long k = 0; k < n; ++k) {\n");
        emit_input_loads(&mut src, spec.n_inputs, &actx);
        match &spec.body {
            JitBody::Program(prog) => emit_vm_body(&mut src, prog, spec.outs, &actx)?,
            native => {
                emit_native_value(&mut src, native, actx.ind)?;
                emit_out_update(&mut src, 0, &spec.outs[0], "val", &actx)?;
            }
        }
        src.push_str("  }\n");
    }
    src.push_str("}\n");
    Ok(src)
}

fn emit_input_loads(src: &mut String, n_inputs: usize, actx: &AddrCtx<'_>) {
    let ind = actx.ind;
    for i in 0..n_inputs {
        let _ = writeln!(src, "{ind}const double v{i} = {};", (actx.in_expr)(i));
    }
}

fn emit_native_value(src: &mut String, body: &JitBody<'_>, ind: &str) -> Result<(), String> {
    match body {
        JitBody::Pattern(p) => {
            let _ = writeln!(src, "{ind}double val = {};", pattern_value_c(p));
        }
        JitBody::LinComb(lc) => src.push_str(&lincomb_value_c(lc, ind)),
        JitBody::MulChain(mc) => src.push_str(&mulchain_value_c(mc, ind)),
        JitBody::Program(_) => return Err("program body has no native value".into()),
    }
    Ok(())
}

/// Emits the per-iteration store for output `j` whose body value is in
/// C variable `val`.
fn emit_out_update(
    src: &mut String,
    j: usize,
    mode: &JitOutMode,
    val: &str,
    actx: &AddrCtx<'_>,
) -> Result<(), String> {
    let ind = actx.ind;
    let (ptr, off) = (actx.out_ref)(j);
    match mode {
        JitOutMode::Write | JitOutMode::ReadModifyWrite => {
            let _ = writeln!(src, "{ind}{ptr}[{off}] = {val};");
        }
        JitOutMode::CombinePerPoint(op) => {
            let _ = writeln!(
                src,
                "{ind}{{ const long long o = {off};\n{ind}  {ptr}[o] = {}; }}",
                op.combine(&format!("{ptr}[o]"), val)
            );
        }
        JitOutMode::Accumulate(_) => return Err("accumulate handled separately".into()),
    }
    Ok(())
}

// --- VM-mirror body emission --------------------------------------------------

/// Emits an unrecognized tasklet body as C statements that mirror the
/// bytecode VM. Output locals `o{j}` are seeded per the output mode
/// (memory for read-modify-write, `0.0` for WCR — exactly the affine VM
/// loop's protocol) and flushed after the body.
fn emit_vm_body(
    src: &mut String,
    prog: &TaskletProgram,
    outs: &[JitOutMode],
    actx: &AddrCtx<'_>,
) -> Result<(), String> {
    if outs.len() != prog.outputs.len() {
        return Err("output arity mismatch".into());
    }
    let ind = actx.ind;
    // Seed output locals.
    for (j, mode) in outs.iter().enumerate() {
        match mode {
            JitOutMode::ReadModifyWrite => {
                let (ptr, off) = (actx.out_ref)(j);
                let _ = writeln!(src, "{ind}double o{j} = {ptr}[{off}];");
            }
            JitOutMode::Write | JitOutMode::CombinePerPoint(_) => {
                let _ = writeln!(src, "{ind}double o{j} = 0.0;");
            }
            JitOutMode::Accumulate(_) => {
                return Err("register accumulation on a VM-mirror body".into())
            }
        }
    }
    // Declare locals up front (VM registers start zeroed); assignments in
    // the body are definite-assignment checked, so the initializer is only
    // observable where the VM would also observe a fresh zero register.
    let mut all_locals: Vec<String> = Vec::new();
    collect_locals(&prog.body, prog, &mut all_locals);
    for l in &all_locals {
        let _ = writeln!(src, "{ind}double l_{l} = 0.0;");
    }
    let mut st = VmEmitState {
        prog,
        declared: Vec::new(),
        definite: Vec::new(),
    };
    for s in &prog.body {
        st.emit_stmt(s, ind, src)?;
    }
    // Flush output locals.
    for (j, mode) in outs.iter().enumerate() {
        emit_out_update(src, j, mode, &format!("o{j}"), actx)?;
    }
    Ok(())
}

/// Collects every local name the body defines (assignment targets that are
/// not output connectors), in first-definition order.
fn collect_locals(body: &[Stmt], prog: &TaskletProgram, acc: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Assign { target, .. } => {
                if !prog.outputs.contains(target)
                    && !prog.inputs.contains(target)
                    && !acc.contains(target)
                {
                    acc.push(target.clone());
                }
            }
            Stmt::If { then, els, .. } => {
                collect_locals(then, prog, acc);
                collect_locals(els, prog, acc);
            }
            Stmt::Push { .. } => {}
        }
    }
}

/// Walks the body in the same textual order as the bytecode compiler,
/// tracking which locals exist (`declared`, governing name resolution) and
/// which are definitely assigned on every path (`definite`, guarding
/// against the VM's cross-point register persistence).
struct VmEmitState<'a> {
    prog: &'a TaskletProgram,
    declared: Vec<String>,
    definite: Vec<String>,
}

impl VmEmitState<'_> {
    /// Resolution order must match the bytecode compiler: inputs, then
    /// locals declared so far, then outputs, then SDFG symbols.
    fn resolve_read(&self, n: &str) -> Result<String, String> {
        if let Some(i) = self.prog.inputs.iter().position(|x| x == n) {
            return Ok(format!("v{i}"));
        }
        if self.declared.iter().any(|l| l == n) {
            if !self.definite.iter().any(|l| l == n) {
                return Err(format!(
                    "local `{n}` may be read unassigned (stale VM register)"
                ));
            }
            return Ok(format!("l_{n}"));
        }
        if let Some(j) = self.prog.outputs.iter().position(|x| x == n) {
            return Ok(format!("o{j}"));
        }
        if let Some(s) = self.prog.symbols.iter().position(|x| x == n) {
            return Ok(format!("syms[{s}]"));
        }
        Err(format!("unresolved name `{n}`"))
    }

    fn emit_stmt(&mut self, s: &Stmt, ind: &str, src: &mut String) -> Result<(), String> {
        match s {
            Stmt::Push { stream, .. } => Err(format!("stream push to `{stream}`")),
            Stmt::Assign {
                index: Some(_),
                target,
                ..
            } => Err(format!("indexed store to `{target}`")),
            Stmt::Assign {
                target,
                index: None,
                op,
                value,
            } => {
                // The compiler resolves the RHS before defining the target
                // local, so emit it under the current scope first.
                let rhs = {
                    let resolve = |n: &str| self.resolve_read(n);
                    vm_expr_to_c(value, &resolve)?
                };
                let lhs = if let Some(j) = self.prog.outputs.iter().position(|x| x == target) {
                    format!("o{j}")
                } else if self.prog.inputs.contains(target) {
                    return Err(format!("assignment to input `{target}`"));
                } else {
                    if !self.declared.contains(target) {
                        if op.is_some() {
                            return Err(format!("augmented assignment to undefined `{target}`"));
                        }
                        self.declared.push(target.clone());
                    }
                    if !self.definite.contains(target) {
                        self.definite.push(target.clone());
                    }
                    format!("l_{target}")
                };
                match op {
                    None => {
                        let _ = writeln!(src, "{ind}{lhs} = {rhs};");
                    }
                    Some(op) => {
                        // `t op= v` runs as `t = apply_bin(op, t, v)`.
                        let e = match op {
                            BinOp::Add => format!("({lhs} + {rhs})"),
                            BinOp::Sub => format!("({lhs} - {rhs})"),
                            BinOp::Mul => format!("({lhs} * {rhs})"),
                            BinOp::Div => format!("({lhs} / {rhs})"),
                            BinOp::FloorDiv => format!("floor({lhs} / {rhs})"),
                            BinOp::Mod => format!("sdfg_mod({lhs}, {rhs})"),
                            BinOp::Pow => format!("pow({lhs}, {rhs})"),
                        };
                        let _ = writeln!(src, "{ind}{lhs} = {e};");
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let c = {
                    let resolve = |n: &str| self.resolve_read(n);
                    vm_expr_to_c(cond, &resolve)?
                };
                let _ = writeln!(src, "{ind}if (({c}) != 0.0) {{");
                let outer_definite = self.definite.clone();
                let inner = format!("{ind}  ");
                for s in then {
                    self.emit_stmt(s, &inner, src)?;
                }
                let then_definite = std::mem::replace(&mut self.definite, outer_definite.clone());
                let _ = writeln!(src, "{ind}}} else {{");
                for s in els {
                    self.emit_stmt(s, &inner, src)?;
                }
                let els_definite = std::mem::take(&mut self.definite);
                // Only locals assigned on *both* paths are definite after
                // the branch.
                self.definite = outer_definite;
                for l in &then_definite {
                    if els_definite.contains(l) && !self.definite.contains(l) {
                        self.definite.push(l.clone());
                    }
                }
                let _ = writeln!(src, "{ind}}}");
                Ok(())
            }
        }
    }
}

// --- whole-nest emission (ABI v2) --------------------------------------------

/// One output binding of a nest tasklet: which global port it writes and
/// how (see [`JitOutMode`]).
pub struct NestOut {
    /// Global port index (row into `geo`).
    pub port: usize,
    /// Update mode. `Accumulate` is only valid when the enclosing loop's
    /// body is exactly this call — the emitter produces the dedicated
    /// reduction-loop form.
    pub mode: JitOutMode,
}

/// One tasklet call site inside the nest.
pub struct NestTasklet<'a> {
    /// Body shape, as for [`JitSpec`].
    pub body: JitBody<'a>,
    /// Global port index per input slot (row into `geo`).
    pub ins: Vec<usize>,
    /// Output bindings in slot order.
    pub outs: Vec<NestOut>,
}

/// Loop structure of the nest, emitted in order (= dependency order: the
/// recognizer only builds specs whose textual order is a valid topological
/// order of the intra-nest dependencies).
pub enum NestItem {
    /// `for (i{dim} = lo_d; i{dim} < hi_d; ++i{dim}) { body }` with the
    /// bounds taken from the kernel's `bnd` rows (affine in enclosing
    /// iteration variables). `dim` 0 is reserved for the tile loop.
    Loop {
        /// Nest dimension this loop iterates.
        dim: usize,
        /// Loop body.
        body: Vec<NestItem>,
    },
    /// Execute `tasklets[idx]` at the current iteration point.
    Call(usize),
}

/// Everything the emitter needs to produce one nest kernel.
pub struct NestSpec<'a> {
    /// Number of nest dimensions (outermost/tile dimension included).
    pub ndims: usize,
    /// Number of port rows in `geo`.
    pub nports: usize,
    /// Call sites referenced by [`NestItem::Call`].
    pub tasklets: Vec<NestTasklet<'a>>,
    /// Kernel body, nested directly inside the dimension-0 tile loop.
    pub body: Vec<NestItem>,
}

/// C literal for a reduction identity (bitwise-identical to the
/// executor's `f64` seeds, including the infinities).
fn wcr_identity_c(op: JitWcrOp) -> &'static str {
    match op {
        JitWcrOp::Sum => "0.0",
        JitWcrOp::Product => "1.0",
        JitWcrOp::Min => "INFINITY",
        JitWcrOp::Max => "-INFINITY",
    }
}

/// `(base pointer, offset)` C expressions for port `p` at the iteration
/// point spanned by `scope` (the dims of all enclosing loops, in order).
fn nest_port_ref(ndims: usize, p: usize, scope: &[usize]) -> (String, String) {
    let row = p * (2 + ndims);
    let ptr = format!("bufs[geo[{row}]]");
    let mut off = format!("geo[{}]", row + 1);
    for &d in scope {
        let _ = write!(off, " + i{d} * geo[{}]", row + 2 + d);
    }
    (ptr, off)
}

/// C expression for the lower (`hi = false`) or upper (`hi = true`) bound
/// of dimension `d`, affine in the enclosing iteration variables.
fn nest_bound_expr(ndims: usize, d: usize, hi: bool, scope: &[usize]) -> String {
    let row = (2 * d + hi as usize) * (1 + ndims);
    let mut e = format!("bnd[{row}]");
    for &s in scope {
        let _ = write!(e, " + i{s} * bnd[{}]", row + 1 + s);
    }
    e
}

/// Emits the complete C translation unit for a nest kernel, or the reason
/// it cannot be emitted bitwise-faithfully.
pub fn emit_nest_kernel(spec: &NestSpec<'_>) -> Result<String, String> {
    if spec.ndims == 0 {
        return Err("nest has no dimensions".into());
    }
    if spec.body.is_empty() || spec.tasklets.is_empty() {
        return Err("empty nest body".into());
    }
    for t in &spec.tasklets {
        for &p in t.ins.iter().chain(t.outs.iter().map(|o| &o.port)) {
            if p >= spec.nports {
                return Err("port index out of range".into());
            }
        }
    }
    let mut src = String::new();
    emit_preamble(&mut src);
    let _ = writeln!(
        src,
        "void {NEST_ENTRY}(double *const *bufs, const long long *geo,\n\
         \x20             const double *syms, const long long *bnd,\n\
         \x20             long long lo0, long long hi0, long long *npts) {{"
    );
    src.push_str("  (void)bufs; (void)geo; (void)syms; (void)bnd;\n");
    src.push_str("  long long cnt = 0;\n");
    src.push_str("  for (long long i0 = lo0; i0 < hi0; ++i0) {\n");
    let mut scope = vec![0usize];
    emit_nest_items(&mut src, spec, &spec.body, &mut scope, "    ")?;
    src.push_str("  }\n  *npts = cnt;\n}\n");
    Ok(src)
}

/// If `body` is exactly one call whose single output accumulates, returns
/// `(call index, op)` so the enclosing loop uses the reduction form.
fn accumulate_form(spec: &NestSpec<'_>, body: &[NestItem]) -> Option<(usize, JitWcrOp)> {
    let [NestItem::Call(t)] = body else {
        return None;
    };
    let tk = spec.tasklets.get(*t)?;
    if tk.outs.len() != 1 {
        return None;
    }
    match tk.outs[0].mode {
        JitOutMode::Accumulate(op) => Some((*t, op)),
        _ => None,
    }
}

fn emit_nest_items(
    src: &mut String,
    spec: &NestSpec<'_>,
    items: &[NestItem],
    scope: &mut Vec<usize>,
    ind: &str,
) -> Result<(), String> {
    for item in items {
        match item {
            NestItem::Call(t) => emit_nest_call(src, spec, *t, scope, ind)?,
            NestItem::Loop { dim, body } => {
                let d = *dim;
                if d == 0 || d >= spec.ndims {
                    return Err(format!("bad nest dimension {d}"));
                }
                if scope.contains(&d) {
                    return Err(format!("nest dimension {d} reused"));
                }
                let lo = nest_bound_expr(spec.ndims, d, false, scope);
                let hi = nest_bound_expr(spec.ndims, d, true, scope);
                let _ = writeln!(src, "{ind}{{");
                let _ = writeln!(src, "{ind}  const long long lo{d} = {lo};");
                let _ = writeln!(src, "{ind}  const long long hi{d} = {hi};");
                if let Some((t, op)) = accumulate_form(spec, body) {
                    // Reduction loop: identity-seeded register, final
                    // combine into memory — skipped entirely for empty
                    // ranges, mirroring the native tier's early return.
                    let tk = &spec.tasklets[t];
                    if matches!(tk.body, JitBody::Program(_)) {
                        return Err("register accumulation on a VM-mirror body".into());
                    }
                    let _ = writeln!(src, "{ind}  if (lo{d} < hi{d}) {{");
                    let _ = writeln!(src, "{ind}    double acc = {};", wcr_identity_c(op));
                    let _ = writeln!(
                        src,
                        "{ind}    for (long long i{d} = lo{d}; i{d} < hi{d}; ++i{d}) {{"
                    );
                    scope.push(d);
                    let inner = format!("{ind}      ");
                    {
                        let ndims = spec.ndims;
                        let in_expr = |i: usize| {
                            let (ptr, off) = nest_port_ref(ndims, tk.ins[i], scope);
                            format!("{ptr}[{off}]")
                        };
                        let out_ref =
                            |_j: usize| -> (String, String) { unreachable!("accumulate out") };
                        let actx = AddrCtx {
                            ind: &inner,
                            in_expr: &in_expr,
                            out_ref: &out_ref,
                        };
                        emit_input_loads(src, tk.ins.len(), &actx);
                        emit_native_value(src, &tk.body, &inner)?;
                    }
                    let _ = writeln!(src, "{inner}acc = {};", op.combine("acc", "val"));
                    let _ = writeln!(src, "{inner}++cnt;");
                    scope.pop();
                    let _ = writeln!(src, "{ind}    }}");
                    // The out port is loop-invariant (its dim-`d`
                    // coefficient is zero), so address it in the outer
                    // scope.
                    let (ptr, off) = nest_port_ref(spec.ndims, tk.outs[0].port, scope);
                    let _ = writeln!(src, "{ind}    {{ const long long o = {off};");
                    let _ = writeln!(
                        src,
                        "{ind}      {ptr}[o] = {}; }}",
                        op.combine(&format!("{ptr}[o]"), "acc")
                    );
                    let _ = writeln!(src, "{ind}  }}");
                } else {
                    let _ = writeln!(
                        src,
                        "{ind}  for (long long i{d} = lo{d}; i{d} < hi{d}; ++i{d}) {{"
                    );
                    scope.push(d);
                    let inner = format!("{ind}    ");
                    emit_nest_items(src, spec, body, scope, &inner)?;
                    scope.pop();
                    let _ = writeln!(src, "{ind}  }}");
                }
                let _ = writeln!(src, "{ind}}}");
            }
        }
    }
    Ok(())
}

/// Emits one tasklet call at the current iteration point. Mirrors the
/// per-point tiers statement for statement; `Accumulate` outputs are
/// rejected here (they are only legal as a whole reduction loop).
fn emit_nest_call(
    src: &mut String,
    spec: &NestSpec<'_>,
    t: usize,
    scope: &[usize],
    ind: &str,
) -> Result<(), String> {
    let tk = spec
        .tasklets
        .get(t)
        .ok_or_else(|| format!("bad call index {t}"))?;
    if tk
        .outs
        .iter()
        .any(|o| matches!(o.mode, JitOutMode::Accumulate(_)))
    {
        return Err("accumulate output outside a reduction loop".into());
    }
    let _ = writeln!(src, "{ind}{{");
    let inner = format!("{ind}  ");
    let ndims = spec.ndims;
    let in_expr = |i: usize| {
        let (ptr, off) = nest_port_ref(ndims, tk.ins[i], scope);
        format!("{ptr}[{off}]")
    };
    let out_ref = |j: usize| nest_port_ref(ndims, tk.outs[j].port, scope);
    let actx = AddrCtx {
        ind: &inner,
        in_expr: &in_expr,
        out_ref: &out_ref,
    };
    emit_input_loads(src, tk.ins.len(), &actx);
    match &tk.body {
        JitBody::Program(prog) => {
            let modes: Vec<JitOutMode> = tk.outs.iter().map(|o| o.mode).collect();
            emit_vm_body(src, prog, &modes, &actx)?;
        }
        native => {
            if tk.outs.len() != 1 {
                return Err("native nest call requires a single output".into());
            }
            emit_native_value(src, native, &inner)?;
            emit_out_update(src, 0, &tk.outs[0].mode, "val", &actx)?;
        }
    }
    let _ = writeln!(src, "{inner}++cnt;");
    let _ = writeln!(src, "{ind}}}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_lang::recognize::{BinOpKind, Operand};

    fn prog(code: &str, ins: &[&str], outs: &[&str]) -> TaskletProgram {
        let ins: Vec<String> = ins.iter().map(|s| s.to_string()).collect();
        let outs: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        TaskletProgram::compile(code, &ins, &outs).unwrap()
    }

    #[test]
    fn emits_accumulating_pattern_kernel() {
        let spec = JitSpec {
            body: JitBody::Pattern(Pattern::BinOp {
                op: BinOpKind::Mul,
                a: Operand::Input(0),
                b: Operand::Input(1),
            }),
            n_inputs: 2,
            outs: &[JitOutMode::Accumulate(JitWcrOp::Sum)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("void sdfg_kernel("));
        assert!(src.contains("double acc = outs[0][out_off[0]];"));
        assert!(src.contains("double val = (v0 * v1);"));
        assert!(src.contains("acc = (acc + val);"));
        assert!(src.contains("outs[0][out_off[0]] = acc;"));
    }

    #[test]
    fn emits_elementwise_and_combine_kernels() {
        let spec = JitSpec {
            body: JitBody::Pattern(Pattern::Axpb {
                input: 0,
                mul: 2.0,
                add: -1.5,
            }),
            n_inputs: 1,
            outs: &[JitOutMode::Write],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double val = (2.0 * v0 + -1.5);"));
        assert!(src.contains("outs[0][out_off[0] + k * out_stp[0]] = val;"));

        let spec = JitSpec {
            body: JitBody::Pattern(Pattern::Copy { input: 0 }),
            n_inputs: 1,
            outs: &[JitOutMode::CombinePerPoint(JitWcrOp::Max)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("fmax(outs[0][o], val)"));
    }

    #[test]
    fn emits_lincomb_and_mulchain() {
        let lc = LinComb {
            terms: vec![(0, 1.0), (1, -2.0), (2, 1.0)],
            bias: 0.5,
        };
        let spec = JitSpec {
            body: JitBody::LinComb(&lc),
            n_inputs: 3,
            outs: &[JitOutMode::Write],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double val = 0.5;"));
        assert!(src.contains("val += 1.0 * v0;"));
        assert!(src.contains("val += -2.0 * v1;"));

        let mc = MulChain {
            slots: vec![0, 1, 2],
            scale: -1.0,
        };
        let spec = JitSpec {
            body: JitBody::MulChain(&mc),
            n_inputs: 3,
            outs: &[JitOutMode::Accumulate(JitWcrOp::Sum)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double val = -1.0;"));
        assert!(src.contains("val *= v0;"));
    }

    #[test]
    fn emits_vm_mirror_program() {
        let p = prog("t = a * a\no = t + b % a", &["a", "b"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 2,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("double o0 = outs[0][out_off[0] + k * out_stp[0]];"));
        assert!(src.contains("l_t = (v0 * v0);"));
        assert!(src.contains("o0 = (l_t + sdfg_mod(v1, v0));"));
        assert!(src.contains("static double sdfg_mod"));
    }

    #[test]
    fn vm_mirror_branches_and_symbols() {
        let p = prog(
            "if a > 0:\n    s = 1.0\nelse:\n    s = -1.0\no = s * N",
            &["a"],
            &["o"],
        );
        assert_eq!(p.symbols, vec!["N".to_string()]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::CombinePerPoint(JitWcrOp::Sum)],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("if ((((v0 > 0.0) ? 1.0 : 0.0)) != 0.0) {"));
        assert!(src.contains("o0 = (l_s * syms[0]);"));
    }

    #[test]
    fn rejects_conditionally_assigned_local() {
        // `t` is only assigned when the branch is taken; the VM would read
        // a stale register on other points, which C cannot mirror.
        let p = prog("if a > 0:\n    t = a\no = t + 1", &["a"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        let err = emit_jit_kernel(&spec).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn rejects_indexed_ports_and_bad_shapes() {
        let p = prog("o = w[0] + w[1]", &["w"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        assert!(emit_jit_kernel(&spec).is_err());

        // Accumulate is native-only.
        let p2 = prog("o = a + 1", &["a"], &["o"]);
        let spec = JitSpec {
            body: JitBody::Program(&p2),
            n_inputs: 1,
            outs: &[JitOutMode::Accumulate(JitWcrOp::Sum)],
        };
        assert!(emit_jit_kernel(&spec).is_err());
    }

    #[test]
    fn branch_joined_locals_are_definite() {
        let p = prog(
            "if a > 0:\n    t = a\nelse:\n    t = -a\no = t",
            &["a"],
            &["o"],
        );
        let spec = JitSpec {
            body: JitBody::Program(&p),
            n_inputs: 1,
            outs: &[JitOutMode::ReadModifyWrite],
        };
        let src = emit_jit_kernel(&spec).unwrap();
        assert!(src.contains("o0 = l_t;"));
    }

    // --- nest kernels (ABI v2) ------------------------------------------------

    #[test]
    fn emits_triangular_reduction_nest() {
        // The cholesky inner-state shape: a triangular reduction loop
        // feeding a per-point division tasklet.
        //   for i1 in [bnd(1)]:                # affine in i0
        //     acc over i2 in [bnd(2)]:         # A[i,j] += -A[i,k]*A[j,k]
        //     A[i,j] = A[i,j] / A[j,j]         # program body
        let mc = MulChain {
            slots: vec![0, 1],
            scale: -1.0,
        };
        let div = prog("o = a / b", &["a", "b"], &["o"]);
        let spec = NestSpec {
            ndims: 3,
            nports: 6,
            tasklets: vec![
                NestTasklet {
                    body: JitBody::MulChain(&mc),
                    ins: vec![0, 1],
                    outs: vec![NestOut {
                        port: 2,
                        mode: JitOutMode::Accumulate(JitWcrOp::Sum),
                    }],
                },
                NestTasklet {
                    body: JitBody::Program(&div),
                    ins: vec![3, 4],
                    outs: vec![NestOut {
                        port: 5,
                        mode: JitOutMode::Write,
                    }],
                },
            ],
            body: vec![NestItem::Loop {
                dim: 1,
                body: vec![
                    NestItem::Loop {
                        dim: 2,
                        body: vec![NestItem::Call(0)],
                    },
                    NestItem::Call(1),
                ],
            }],
        };
        let src = emit_nest_kernel(&spec).unwrap();
        assert!(src.contains("void sdfg_nest("));
        assert!(src.contains("for (long long i0 = lo0; i0 < hi0; ++i0)"));
        // dim-1 bounds: rows 2 (lo) and 3 (hi) of width 4, affine in i0.
        assert!(src.contains("const long long lo1 = bnd[8] + i0 * bnd[9];"));
        assert!(src.contains("const long long hi1 = bnd[12] + i0 * bnd[13];"));
        // The reduction is identity-seeded and guarded against empty ranges.
        assert!(src.contains("if (lo2 < hi2) {"));
        assert!(src.contains("double acc = 0.0;"));
        assert!(src.contains("acc = (acc + val);"));
        // Final combine mirrors combine_plain: old + acc.
        assert!(src.contains("[o] = (bufs[geo[10]][o] + acc); }"));
        // The division call loads through geo rows 3/4 (width 5) and
        // stores through row 5.
        assert!(
            src.contains("const double v0 = bufs[geo[15]][geo[16] + i0 * geo[17] + i1 * geo[18]];")
        );
        assert!(src.contains("o0 = (v0 / v1);"));
        assert!(src.contains("bufs[geo[25]][geo[26] + i0 * geo[27] + i1 * geo[28]] = o0;"));
        assert!(src.contains("*npts = cnt;"));
    }

    #[test]
    fn nest_min_identity_is_infinity() {
        let spec = NestSpec {
            ndims: 2,
            nports: 2,
            tasklets: vec![NestTasklet {
                body: JitBody::Pattern(Pattern::Copy { input: 0 }),
                ins: vec![0],
                outs: vec![NestOut {
                    port: 1,
                    mode: JitOutMode::Accumulate(JitWcrOp::Min),
                }],
            }],
            body: vec![NestItem::Loop {
                dim: 1,
                body: vec![NestItem::Call(0)],
            }],
        };
        let src = emit_nest_kernel(&spec).unwrap();
        assert!(src.contains("double acc = INFINITY;"));
        assert!(src.contains("fmin(bufs[geo[4]][o], acc)"));
    }

    #[test]
    fn nest_rejects_bad_shapes() {
        let mk = |body: Vec<NestItem>| NestSpec {
            ndims: 2,
            nports: 2,
            tasklets: vec![NestTasklet {
                body: JitBody::Pattern(Pattern::Copy { input: 0 }),
                ins: vec![0],
                outs: vec![NestOut {
                    port: 1,
                    mode: JitOutMode::Accumulate(JitWcrOp::Sum),
                }],
            }],
            body,
        };
        // Accumulate outside its reduction loop.
        assert!(emit_nest_kernel(&mk(vec![NestItem::Call(0)])).is_err());
        // Dimension 0 is the tile loop; reusing it is a bug.
        assert!(emit_nest_kernel(&mk(vec![NestItem::Loop {
            dim: 0,
            body: vec![NestItem::Call(0)],
        }]))
        .is_err());
        // Out-of-range dimension.
        assert!(emit_nest_kernel(&mk(vec![NestItem::Loop {
            dim: 2,
            body: vec![NestItem::Call(0)],
        }]))
        .is_err());
    }
}
