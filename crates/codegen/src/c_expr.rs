//! Tasklet-language and symbolic-expression translation to C — the
//! analogue of DaCe's Python-to-C++ converter (§3.2).

use sdfg_lang::ast::{BinOp, Builtin, CmpOp, ExprAst, Stmt};
use sdfg_symbolic::Expr;

/// Renders a symbolic integer expression as C (floor semantics preserved
/// for non-negative operands, which index arithmetic guarantees).
pub fn sym_to_c(e: &Expr) -> String {
    match e {
        Expr::Int(v) => format!("{v}"),
        Expr::Sym(s) => s.clone(),
        Expr::Add(v) => {
            let parts: Vec<String> = v.iter().map(sym_to_c).collect();
            format!("({})", parts.join(" + "))
        }
        Expr::Mul(v) => {
            let parts: Vec<String> = v.iter().map(sym_to_c).collect();
            format!("({})", parts.join(" * "))
        }
        Expr::FloorDiv(a, b) => format!("({} / {})", sym_to_c(a), sym_to_c(b)),
        Expr::Mod(a, b) => format!("({} % {})", sym_to_c(a), sym_to_c(b)),
        Expr::Min(a, b) => format!("min({}, {})", sym_to_c(a), sym_to_c(b)),
        Expr::Max(a, b) => format!("max({}, {})", sym_to_c(a), sym_to_c(b)),
    }
}

/// Renders a tasklet body as C statements. `indent` is the leading
/// whitespace applied to every line.
pub fn tasklet_to_c(body: &[Stmt], indent: &str) -> String {
    let mut out = String::new();
    for s in body {
        emit_stmt(s, indent, &mut out);
    }
    out
}

fn emit_stmt(s: &Stmt, indent: &str, out: &mut String) {
    match s {
        Stmt::Assign {
            target,
            index,
            op,
            value,
        } => {
            let lhs = match index {
                Some(idx) => {
                    let parts: Vec<String> = idx.iter().map(expr_to_c).collect();
                    format!("{target}[{}]", parts.join("]["))
                }
                None => target.clone(),
            };
            let rhs = expr_to_c(value);
            match op {
                None => out.push_str(&format!("{indent}{lhs} = {rhs};\n")),
                Some(BinOp::Add) => out.push_str(&format!("{indent}{lhs} += {rhs};\n")),
                Some(BinOp::Sub) => out.push_str(&format!("{indent}{lhs} -= {rhs};\n")),
                Some(BinOp::Mul) => out.push_str(&format!("{indent}{lhs} *= {rhs};\n")),
                Some(BinOp::Div) => out.push_str(&format!("{indent}{lhs} /= {rhs};\n")),
                Some(other) => out.push_str(&format!(
                    "{indent}{lhs} = {lhs} {} {rhs};\n",
                    c_binop(*other)
                )),
            }
        }
        Stmt::Push { stream, value } => {
            out.push_str(&format!("{indent}{stream}.push({});\n", expr_to_c(value)));
        }
        Stmt::If { cond, then, els } => {
            out.push_str(&format!("{indent}if ({}) {{\n", expr_to_c(cond)));
            for t in then {
                emit_stmt(t, &format!("{indent}    "), out);
            }
            if els.is_empty() {
                out.push_str(&format!("{indent}}}\n"));
            } else {
                out.push_str(&format!("{indent}}} else {{\n"));
                for e in els {
                    emit_stmt(e, &format!("{indent}    "), out);
                }
                out.push_str(&format!("{indent}}}\n"));
            }
        }
    }
}

fn c_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::FloorDiv => "/",
        BinOp::Mod => "%",
        BinOp::Pow => "**", // handled via pow() in expr_to_c
    }
}

/// Renders a tasklet expression as C.
pub fn expr_to_c(e: &ExprAst) -> String {
    match e {
        ExprAst::Num(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        ExprAst::Name(n) => n.clone(),
        ExprAst::Index(n, idx) => {
            let parts: Vec<String> = idx.iter().map(expr_to_c).collect();
            format!("{n}[{}]", parts.join("]["))
        }
        ExprAst::Bin(BinOp::Pow, a, b) => {
            format!("pow({}, {})", expr_to_c(a), expr_to_c(b))
        }
        ExprAst::Bin(BinOp::FloorDiv, a, b) => {
            format!("floor({} / {})", expr_to_c(a), expr_to_c(b))
        }
        ExprAst::Bin(BinOp::Mod, a, b) => {
            format!("fmod_floor({}, {})", expr_to_c(a), expr_to_c(b))
        }
        ExprAst::Bin(op, a, b) => {
            format!("({} {} {})", expr_to_c(a), c_binop(*op), expr_to_c(b))
        }
        ExprAst::Cmp(op, a, b) => {
            let o = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
            };
            format!("({} {} {})", expr_to_c(a), o, expr_to_c(b))
        }
        ExprAst::Neg(a) => format!("(-{})", expr_to_c(a)),
        ExprAst::Not(a) => format!("(!{})", expr_to_c(a)),
        ExprAst::And(a, b) => format!("({} && {})", expr_to_c(a), expr_to_c(b)),
        ExprAst::Or(a, b) => format!("({} || {})", expr_to_c(a), expr_to_c(b)),
        ExprAst::Call(f, args) => {
            let name = match f {
                Builtin::Abs => "fabs",
                Builtin::Sqrt => "sqrt",
                Builtin::Exp => "exp",
                Builtin::Log => "log",
                Builtin::Sin => "sin",
                Builtin::Cos => "cos",
                Builtin::Floor => "floor",
                Builtin::Ceil => "ceil",
                Builtin::Min => "min",
                Builtin::Max => "max",
                Builtin::Int => "(long long)",
            };
            let parts: Vec<String> = args.iter().map(expr_to_c).collect();
            if matches!(f, Builtin::Int) {
                format!("((long long)({}))", parts.join(", "))
            } else {
                format!("{name}({})", parts.join(", "))
            }
        }
        ExprAst::Ternary { cond, then, els } => format!(
            "({} ? {} : {})",
            expr_to_c(cond),
            expr_to_c(then),
            expr_to_c(els)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_lang::parse_tasklet;

    #[test]
    fn simple_statement() {
        let body = parse_tasklet("c = a * 2 + b").unwrap();
        assert_eq!(tasklet_to_c(&body, ""), "c = ((a * 2) + b);\n");
    }

    #[test]
    fn branches_and_calls() {
        let body = parse_tasklet("if a < b:\n    o = sqrt(a)\nelse:\n    o = a ** 2").unwrap();
        let c = tasklet_to_c(&body, "  ");
        assert!(c.contains("if ((a < b)) {"));
        assert!(c.contains("o = sqrt(a);"));
        assert!(c.contains("} else {"));
        assert!(c.contains("pow(a, 2)"));
    }

    #[test]
    fn push_and_augmented() {
        let body = parse_tasklet("S.push(v + 1)\nacc += v").unwrap();
        let c = tasklet_to_c(&body, "");
        assert!(c.contains("S.push((v + 1));"));
        assert!(c.contains("acc += v;"));
    }

    #[test]
    fn symbolic_rendering() {
        let e = sdfg_symbolic::parse_expr("2*i + N - 1").unwrap();
        let c = sym_to_c(&e);
        assert!(c.contains('N') && c.contains('i'));
    }
}
