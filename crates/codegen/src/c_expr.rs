//! Tasklet-language and symbolic-expression translation to C — the
//! analogue of DaCe's Python-to-C++ converter (§3.2).

use sdfg_lang::ast::{BinOp, Builtin, CmpOp, ExprAst, Stmt};
use sdfg_symbolic::Expr;

/// Renders a symbolic integer expression as C (floor semantics preserved
/// for non-negative operands, which index arithmetic guarantees).
pub fn sym_to_c(e: &Expr) -> String {
    match e {
        Expr::Int(v) => format!("{v}"),
        Expr::Sym(s) => s.clone(),
        Expr::Add(v) => {
            let parts: Vec<String> = v.iter().map(sym_to_c).collect();
            format!("({})", parts.join(" + "))
        }
        Expr::Mul(v) => {
            let parts: Vec<String> = v.iter().map(sym_to_c).collect();
            format!("({})", parts.join(" * "))
        }
        Expr::FloorDiv(a, b) => format!("({} / {})", sym_to_c(a), sym_to_c(b)),
        Expr::Mod(a, b) => format!("({} % {})", sym_to_c(a), sym_to_c(b)),
        Expr::Min(a, b) => format!("min({}, {})", sym_to_c(a), sym_to_c(b)),
        Expr::Max(a, b) => format!("max({}, {})", sym_to_c(a), sym_to_c(b)),
    }
}

/// Renders a tasklet body as C statements. `indent` is the leading
/// whitespace applied to every line.
pub fn tasklet_to_c(body: &[Stmt], indent: &str) -> String {
    let mut out = String::new();
    for s in body {
        emit_stmt(s, indent, &mut out);
    }
    out
}

fn emit_stmt(s: &Stmt, indent: &str, out: &mut String) {
    match s {
        Stmt::Assign {
            target,
            index,
            op,
            value,
        } => {
            let lhs = match index {
                Some(idx) => {
                    let parts: Vec<String> = idx.iter().map(expr_to_c).collect();
                    format!("{target}[{}]", parts.join("]["))
                }
                None => target.clone(),
            };
            let rhs = expr_to_c(value);
            match op {
                None => out.push_str(&format!("{indent}{lhs} = {rhs};\n")),
                Some(BinOp::Add) => out.push_str(&format!("{indent}{lhs} += {rhs};\n")),
                Some(BinOp::Sub) => out.push_str(&format!("{indent}{lhs} -= {rhs};\n")),
                Some(BinOp::Mul) => out.push_str(&format!("{indent}{lhs} *= {rhs};\n")),
                Some(BinOp::Div) => out.push_str(&format!("{indent}{lhs} /= {rhs};\n")),
                Some(other) => out.push_str(&format!(
                    "{indent}{lhs} = {lhs} {} {rhs};\n",
                    c_binop(*other)
                )),
            }
        }
        Stmt::Push { stream, value } => {
            out.push_str(&format!("{indent}{stream}.push({});\n", expr_to_c(value)));
        }
        Stmt::If { cond, then, els } => {
            out.push_str(&format!("{indent}if ({}) {{\n", expr_to_c(cond)));
            for t in then {
                emit_stmt(t, &format!("{indent}    "), out);
            }
            if els.is_empty() {
                out.push_str(&format!("{indent}}}\n"));
            } else {
                out.push_str(&format!("{indent}}} else {{\n"));
                for e in els {
                    emit_stmt(e, &format!("{indent}    "), out);
                }
                out.push_str(&format!("{indent}}}\n"));
            }
        }
    }
}

fn c_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::FloorDiv => "/",
        BinOp::Mod => "%",
        BinOp::Pow => "**", // handled via pow() in expr_to_c
    }
}

/// Renders a tasklet expression as C.
pub fn expr_to_c(e: &ExprAst) -> String {
    match e {
        ExprAst::Num(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        ExprAst::Name(n) => n.clone(),
        ExprAst::Index(n, idx) => {
            let parts: Vec<String> = idx.iter().map(expr_to_c).collect();
            format!("{n}[{}]", parts.join("]["))
        }
        ExprAst::Bin(BinOp::Pow, a, b) => {
            format!("pow({}, {})", expr_to_c(a), expr_to_c(b))
        }
        ExprAst::Bin(BinOp::FloorDiv, a, b) => {
            format!("floor({} / {})", expr_to_c(a), expr_to_c(b))
        }
        ExprAst::Bin(BinOp::Mod, a, b) => {
            format!("fmod_floor({}, {})", expr_to_c(a), expr_to_c(b))
        }
        ExprAst::Bin(op, a, b) => {
            format!("({} {} {})", expr_to_c(a), c_binop(*op), expr_to_c(b))
        }
        ExprAst::Cmp(op, a, b) => {
            let o = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
            };
            format!("({} {} {})", expr_to_c(a), o, expr_to_c(b))
        }
        ExprAst::Neg(a) => format!("(-{})", expr_to_c(a)),
        ExprAst::Not(a) => format!("(!{})", expr_to_c(a)),
        ExprAst::And(a, b) => format!("({} && {})", expr_to_c(a), expr_to_c(b)),
        ExprAst::Or(a, b) => format!("({} || {})", expr_to_c(a), expr_to_c(b)),
        ExprAst::Call(f, args) => {
            let name = match f {
                Builtin::Abs => "fabs",
                Builtin::Sqrt => "sqrt",
                Builtin::Exp => "exp",
                Builtin::Log => "log",
                Builtin::Sin => "sin",
                Builtin::Cos => "cos",
                Builtin::Floor => "floor",
                Builtin::Ceil => "ceil",
                Builtin::Min => "min",
                Builtin::Max => "max",
                Builtin::Int => "(long long)",
            };
            let parts: Vec<String> = args.iter().map(expr_to_c).collect();
            if matches!(f, Builtin::Int) {
                format!("((long long)({}))", parts.join(", "))
            } else {
                format!("{name}({})", parts.join(", "))
            }
        }
        ExprAst::Ternary { cond, then, els } => format!(
            "({} ? {} : {})",
            expr_to_c(cond),
            expr_to_c(then),
            expr_to_c(els)
        ),
    }
}

// --- VM-exact emission (JIT tier) --------------------------------------------

/// Formats an `f64` as a C literal that parses back to the same bits:
/// Rust's shortest-round-trip `{:?}` output is decimal, and C's correctly
/// rounded `strtod` recovers the original double exactly. Non-finite
/// values (unreachable from the tasklet parser, but cheap to handle) are
/// spelled as constant expressions.
pub fn c_f64(v: f64) -> String {
    if v.is_nan() {
        "(0.0 / 0.0)".to_string()
    } else if v == f64::INFINITY {
        "(1.0 / 0.0)".to_string()
    } else if v == f64::NEG_INFINITY {
        "(-1.0 / 0.0)".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a tasklet expression as C with *bitwise* `sdfg_lang::vm`
/// semantics, for the JIT tier. [`expr_to_c`] favors idiomatic C for human
/// inspection and diverges from the VM on several operators, so the JIT
/// cannot reuse it; this function maps every node to exactly the
/// arithmetic the VM performs:
///
/// * `%` is `a - floor(a / b) * b` (the VM's Python modulo), emitted as
///   the `sdfg_mod` helper — not `fmod` with sign adjustment, which is not
///   bit-identical for all operands.
/// * `//` is `floor(a / b)`, not C integer division.
/// * `and`/`or` have Python *value* semantics (`a and b` yields `a` when
///   `a == 0.0`, else `b`), not C's `1`/`0` — emitted as `sdfg_and` /
///   `sdfg_or` helpers. The tasklet language has no side effects, so
///   evaluating both operands (vs. the VM's short-circuit jumps) is
///   value-identical.
/// * `int(x)` truncates toward zero on doubles (`trunc`), with no integer
///   cast that would wrap large magnitudes.
/// * n-ary `min`/`max` fold left through `fmin`/`fmax`, matching
///   `f64::min`/`f64::max`.
/// * Comparisons, `not`, and ternary/`if` conditions produce and test
///   `1.0`/`0.0` doubles.
///
/// `resolve` maps a connector/local/symbol name to the C lvalue holding
/// it; indexed accesses and unresolvable names yield `Err` with a
/// human-readable reason (recorded upstream as the JIT fallback reason).
pub fn vm_expr_to_c(
    e: &ExprAst,
    resolve: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    Ok(match e {
        ExprAst::Num(v) => c_f64(*v),
        ExprAst::Name(n) => resolve(n)?,
        ExprAst::Index(n, _) => return Err(format!("indexed access to `{n}`")),
        ExprAst::Bin(BinOp::Pow, a, b) => format!(
            "pow({}, {})",
            vm_expr_to_c(a, resolve)?,
            vm_expr_to_c(b, resolve)?
        ),
        ExprAst::Bin(BinOp::FloorDiv, a, b) => format!(
            "floor({} / {})",
            vm_expr_to_c(a, resolve)?,
            vm_expr_to_c(b, resolve)?
        ),
        ExprAst::Bin(BinOp::Mod, a, b) => format!(
            "sdfg_mod({}, {})",
            vm_expr_to_c(a, resolve)?,
            vm_expr_to_c(b, resolve)?
        ),
        ExprAst::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::FloorDiv | BinOp::Mod | BinOp::Pow => unreachable!("handled above"),
            };
            format!(
                "({} {o} {})",
                vm_expr_to_c(a, resolve)?,
                vm_expr_to_c(b, resolve)?
            )
        }
        ExprAst::Cmp(op, a, b) => {
            let o = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
                CmpOp::Eq => "==",
                CmpOp::Ne => "!=",
            };
            format!(
                "(({} {o} {}) ? 1.0 : 0.0)",
                vm_expr_to_c(a, resolve)?,
                vm_expr_to_c(b, resolve)?
            )
        }
        ExprAst::Neg(a) => format!("(-({}))", vm_expr_to_c(a, resolve)?),
        ExprAst::Not(a) => format!("(({}) == 0.0 ? 1.0 : 0.0)", vm_expr_to_c(a, resolve)?),
        ExprAst::And(a, b) => format!(
            "sdfg_and({}, {})",
            vm_expr_to_c(a, resolve)?,
            vm_expr_to_c(b, resolve)?
        ),
        ExprAst::Or(a, b) => format!(
            "sdfg_or({}, {})",
            vm_expr_to_c(a, resolve)?,
            vm_expr_to_c(b, resolve)?
        ),
        ExprAst::Call(f, args) => match f {
            Builtin::Min | Builtin::Max => {
                let name = if *f == Builtin::Min { "fmin" } else { "fmax" };
                let mut acc = vm_expr_to_c(&args[0], resolve)?;
                for arg in &args[1..] {
                    acc = format!("{name}({acc}, {})", vm_expr_to_c(arg, resolve)?);
                }
                acc
            }
            _ => {
                let name = match f {
                    Builtin::Abs => "fabs",
                    Builtin::Sqrt => "sqrt",
                    Builtin::Exp => "exp",
                    Builtin::Log => "log",
                    Builtin::Sin => "sin",
                    Builtin::Cos => "cos",
                    Builtin::Floor => "floor",
                    Builtin::Ceil => "ceil",
                    Builtin::Int => "trunc",
                    Builtin::Min | Builtin::Max => unreachable!("handled above"),
                };
                format!("{name}({})", vm_expr_to_c(&args[0], resolve)?)
            }
        },
        ExprAst::Ternary { cond, then, els } => format!(
            "(({}) != 0.0 ? {} : {})",
            vm_expr_to_c(cond, resolve)?,
            vm_expr_to_c(then, resolve)?,
            vm_expr_to_c(els, resolve)?
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_lang::parse_tasklet;

    #[test]
    fn simple_statement() {
        let body = parse_tasklet("c = a * 2 + b").unwrap();
        assert_eq!(tasklet_to_c(&body, ""), "c = ((a * 2) + b);\n");
    }

    #[test]
    fn branches_and_calls() {
        let body = parse_tasklet("if a < b:\n    o = sqrt(a)\nelse:\n    o = a ** 2").unwrap();
        let c = tasklet_to_c(&body, "  ");
        assert!(c.contains("if ((a < b)) {"));
        assert!(c.contains("o = sqrt(a);"));
        assert!(c.contains("} else {"));
        assert!(c.contains("pow(a, 2)"));
    }

    #[test]
    fn push_and_augmented() {
        let body = parse_tasklet("S.push(v + 1)\nacc += v").unwrap();
        let c = tasklet_to_c(&body, "");
        assert!(c.contains("S.push((v + 1));"));
        assert!(c.contains("acc += v;"));
    }

    #[test]
    fn symbolic_rendering() {
        let e = sdfg_symbolic::parse_expr("2*i + N - 1").unwrap();
        let c = sym_to_c(&e);
        assert!(c.contains('N') && c.contains('i'));
    }

    #[test]
    fn c_f64_round_trips() {
        for v in [0.0, -0.0, 0.2, 1.0, -3.5, 1e300, 1e-300, 0.1 + 0.2] {
            let s = c_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        assert_eq!(c_f64(f64::INFINITY), "(1.0 / 0.0)");
    }

    fn vm_c(code: &str) -> Result<String, String> {
        let body = parse_tasklet(code).unwrap();
        let Stmt::Assign { value, .. } = &body[0] else {
            panic!("expected assignment");
        };
        vm_expr_to_c(value, &|n| Ok(n.to_string()))
    }

    #[test]
    fn vm_exact_operators() {
        assert_eq!(vm_c("o = a % b").unwrap(), "sdfg_mod(a, b)");
        assert_eq!(vm_c("o = a // b").unwrap(), "floor(a / b)");
        assert_eq!(vm_c("o = a and b").unwrap(), "sdfg_and(a, b)");
        assert_eq!(vm_c("o = a or b").unwrap(), "sdfg_or(a, b)");
        assert_eq!(vm_c("o = int(a)").unwrap(), "trunc(a)");
        assert_eq!(vm_c("o = min(a, b, c)").unwrap(), "fmin(fmin(a, b), c)");
        assert_eq!(vm_c("o = a < b").unwrap(), "((a < b) ? 1.0 : 0.0)");
        assert_eq!(vm_c("o = not a").unwrap(), "((a) == 0.0 ? 1.0 : 0.0)");
        assert_eq!(vm_c("o = b if a else c").unwrap(), "((a) != 0.0 ? b : c)");
        assert_eq!(vm_c("o = a ** b").unwrap(), "pow(a, b)");
    }

    #[test]
    fn vm_exact_rejects_indexing() {
        assert!(vm_c("o = w[0] + a").is_err());
    }
}
