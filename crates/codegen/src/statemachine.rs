//! Top-level state-machine emission: for-loop and branch detection with a
//! goto fallback (§4.3 step ❷, "Between states, transitions are generated
//! by emitting for-loops and branches when detected, or using conditional
//! goto statements as a fallback").

use sdfg_core::{BoolExpr, Sdfg, StateId};
use sdfg_graph::EdgeId;

/// Recognized guarded-loop structure over interstate edges.
#[derive(Clone, Debug)]
pub struct DetectedLoop {
    /// Loop variable.
    pub var: String,
    /// Initialization expression text.
    pub init: String,
    /// Guard condition text (loop continues while true).
    pub cond: String,
    /// Update expression text (assigned to the variable each iteration).
    pub update: String,
    /// The guard state.
    pub guard: StateId,
    /// States forming the loop body, in execution order.
    pub body: Vec<StateId>,
    /// State following the loop.
    pub exit: StateId,
}

/// Tries to detect the canonical guarded loop rooted at `guard`:
///
/// ```text
///   pred --(var = init)--> guard --(cond)--> body... --(var = update)--> guard
///                          guard --(not cond)--> exit
/// ```
pub fn detect_loop(sdfg: &Sdfg, guard: StateId) -> Option<DetectedLoop> {
    // Exactly two outgoing edges with complementary-looking conditions.
    let out: Vec<EdgeId> = sdfg.graph.out_edges(guard).collect();
    if out.len() != 2 {
        return None;
    }
    // Identify body branch (the one that leads back to the guard).
    let leads_back = |start: StateId| -> Option<Vec<StateId>> {
        // Follow unconditional single-successor chains until returning to
        // the guard.
        let mut chain = vec![start];
        let mut cur = start;
        for _ in 0..64 {
            let outs: Vec<EdgeId> = sdfg.graph.out_edges(cur).collect();
            if outs.len() != 1 {
                return None;
            }
            let nxt = sdfg.graph.edge_dst(outs[0]);
            if nxt == guard {
                return Some(chain);
            }
            chain.push(nxt);
            cur = nxt;
        }
        None
    };
    for (body_edge, exit_edge) in [(out[0], out[1]), (out[1], out[0])] {
        let body_start = sdfg.graph.edge_dst(body_edge);
        let exit = sdfg.graph.edge_dst(exit_edge);
        let Some(body) = leads_back(body_start) else {
            continue;
        };
        // The back edge must assign the loop variable.
        let last = *body.last().unwrap();
        let back = sdfg
            .graph
            .out_edges(last)
            .find(|&e| sdfg.graph.edge_dst(e) == guard)?;
        let back_assigns = &sdfg.graph.edge(back).assignments;
        if back_assigns.len() != 1 {
            continue;
        }
        let (var, update) = back_assigns[0].clone();
        // An incoming init edge (from outside the loop) assigning var.
        let init = sdfg.graph.in_edges(guard).find_map(|e| {
            let src = sdfg.graph.edge_src(e);
            if body.contains(&src) {
                return None;
            }
            sdfg.graph
                .edge(e)
                .assignments
                .iter()
                .find(|(v, _)| *v == var)
                .map(|(_, x)| x.to_string())
        })?;
        let cond = &sdfg.graph.edge(body_edge).condition;
        // Exit condition should be the negation (not verified deeply).
        let _ = &sdfg.graph.edge(exit_edge).condition;
        return Some(DetectedLoop {
            var,
            init,
            cond: cond.to_string(),
            update: update.to_string(),
            guard,
            body,
            exit,
        });
    }
    None
}

/// Recognized two-way branch.
#[derive(Clone, Debug)]
pub struct DetectedBranch {
    /// Condition for the then-branch.
    pub cond: BoolExpr,
    /// Then chain.
    pub then: Vec<StateId>,
    /// Else chain (may be empty when the false edge goes straight to merge).
    pub els: Vec<StateId>,
    /// The merge state.
    pub merge: StateId,
}

/// Tries to detect a diamond branch rooted at `guard`.
pub fn detect_branch(sdfg: &Sdfg, guard: StateId) -> Option<DetectedBranch> {
    let out: Vec<EdgeId> = sdfg.graph.out_edges(guard).collect();
    if out.len() != 2 {
        return None;
    }
    let chase = |start: StateId| -> Option<(Vec<StateId>, StateId)> {
        // Follow unconditional chains to a state with in-degree 2 (merge).
        let mut chain = Vec::new();
        let mut cur = start;
        for _ in 0..64 {
            if sdfg.graph.in_degree(cur) > 1 {
                return Some((chain, cur));
            }
            chain.push(cur);
            let outs: Vec<EdgeId> = sdfg.graph.out_edges(cur).collect();
            if outs.len() != 1 || !sdfg.graph.edge(outs[0]).condition.is_always() {
                return None;
            }
            cur = sdfg.graph.edge_dst(outs[0]);
        }
        None
    };
    let (then, m1) = chase(sdfg.graph.edge_dst(out[0]))?;
    let (els, m2) = chase(sdfg.graph.edge_dst(out[1]))?;
    if m1 != m2 {
        return None;
    }
    Some(DetectedBranch {
        cond: sdfg.graph.edge(out[0]).condition.clone(),
        then,
        els,
        merge: m1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::DType;
    use sdfg_frontend::{parse_program, SdfgBuilder};

    #[test]
    fn detects_builder_loop() {
        let mut b = SdfgBuilder::new("l");
        b.symbol("T");
        b.array("A", &["4"], DType::F64);
        let body = b.state("body");
        b.mapped_tasklet(
            body,
            "t",
            &[("i", "0:4")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "A", "i")],
        );
        let (_, guard, exit) = b.add_loop(body, "t", "0", "t < T", "1");
        let sdfg = b.build().unwrap();
        let l = detect_loop(&sdfg, guard).expect("loop detected");
        assert_eq!(l.var, "t");
        assert_eq!(l.init, "0");
        assert_eq!(l.cond, "t < T");
        assert_eq!(l.update, "t + 1");
        assert_eq!(l.body, vec![body]);
        assert_eq!(l.exit, exit);
    }

    #[test]
    fn detects_frontend_branch() {
        let src = r#"
def f(A: dace.float64[4], C: dace.int64):
    if C < 5:
        for i in dace.map[0:4]:
            A[i] = A[i] * 2
    else:
        for i in dace.map[0:4]:
            A[i] = A[i] / 2
"#;
        let sdfg = parse_program(src).unwrap();
        let guard = sdfg.start.unwrap();
        let b = detect_branch(&sdfg, guard).expect("branch detected");
        assert_eq!(b.then.len(), 1);
        assert_eq!(b.els.len(), 1);
    }

    #[test]
    fn non_loop_not_detected() {
        let mut b = SdfgBuilder::new("x");
        b.array("A", &["4"], DType::F64);
        let s1 = b.state("one");
        let s2 = b.state("two");
        b.transition(s1, s2);
        let sdfg = b.build().unwrap();
        assert!(detect_loop(&sdfg, s1).is_none());
        assert!(detect_branch(&sdfg, s1).is_none());
    }
}
