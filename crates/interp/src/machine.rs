//! The interpreter engine.

use sdfg_core::desc::DataDesc;
use sdfg_core::{Instrument, Node, Sdfg, StateId, Subset, Wcr};
use sdfg_graph::{EdgeId, NodeId};
use sdfg_lang::{LangError, OutPort, RuntimeError, TaskletProgram, TaskletVm};
use sdfg_profile::{
    InstrumentationReport, Mode as ProfMode, ProfileCollector, Profiling, Span, SpanKey,
    WorkerProfile,
};
use sdfg_symbolic::{Env, EvalError};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Interpreter failure.
#[derive(Debug)]
pub enum InterpError {
    /// A non-transient array was not provided before `run`.
    MissingArray(String),
    /// Provided array size does not match the evaluated shape.
    SizeMismatch {
        /// Container name.
        name: String,
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// Symbolic evaluation failed (unbound symbol / division by zero).
    Symbolic(EvalError),
    /// Tasklet failed to parse/compile.
    Lang(LangError),
    /// Tasklet runtime error.
    Runtime(RuntimeError),
    /// Tasklet written in an external language cannot be interpreted.
    ExternalTasklet(String),
    /// The state machine exceeded the transition limit.
    StepLimit(usize),
    /// Structural problem (should have been caught by validation).
    BadGraph(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MissingArray(n) => write!(f, "array `{n}` was not provided"),
            InterpError::SizeMismatch {
                name,
                expected,
                got,
            } => write!(f, "array `{name}`: expected {expected} elements, got {got}"),
            InterpError::Symbolic(e) => write!(f, "symbolic evaluation: {e}"),
            InterpError::Lang(e) => write!(f, "tasklet compilation: {e}"),
            InterpError::Runtime(e) => write!(f, "tasklet execution: {e}"),
            InterpError::ExternalTasklet(n) => {
                write!(f, "tasklet `{n}` uses external code; not interpretable")
            }
            InterpError::StepLimit(n) => write!(f, "exceeded {n} state transitions"),
            InterpError::BadGraph(m) => write!(f, "malformed graph: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<EvalError> for InterpError {
    fn from(e: EvalError) -> Self {
        InterpError::Symbolic(e)
    }
}

impl From<LangError> for InterpError {
    fn from(e: LangError) -> Self {
        InterpError::Lang(e)
    }
}

impl From<RuntimeError> for InterpError {
    fn from(e: RuntimeError) -> Self {
        InterpError::Runtime(e)
    }
}

enum CompiledWcr {
    Builtin(Wcr),
    Custom(TaskletProgram),
}

impl CompiledWcr {
    fn compile(wcr: &Wcr) -> Result<CompiledWcr, InterpError> {
        match wcr {
            Wcr::Custom(code) => {
                let prog = TaskletProgram::compile(
                    &format!("__r = {code}"),
                    &["old".into(), "new".into()],
                    &["__r".into()],
                )?;
                Ok(CompiledWcr::Custom(prog))
            }
            other => Ok(CompiledWcr::Builtin(other.clone())),
        }
    }

    fn apply(&self, vm: &mut TaskletVm, old: f64, new: f64) -> Result<f64, InterpError> {
        match self {
            CompiledWcr::Builtin(w) => Ok(w.apply(old, new).expect("builtin wcr")),
            CompiledWcr::Custom(prog) => {
                let mut out = [0.0f64];
                vm.run_simple(prog, &[&[old], &[new]], &mut [&mut out])?;
                Ok(out[0])
            }
        }
    }

    fn identity(&self, dtype: sdfg_core::DType) -> Option<f64> {
        match self {
            CompiledWcr::Builtin(w) => w.identity(dtype),
            CompiledWcr::Custom(_) => None,
        }
    }
}

struct CompiledTasklet {
    prog: TaskletProgram,
    in_edges: Vec<EdgeId>,
    /// Output connectors in program slot order, each with its edges.
    out_conns: Vec<(String, Vec<EdgeId>)>,
}

/// The reference interpreter. Owns container storage between `run` calls.
pub struct Interpreter<'s> {
    sdfg: &'s Sdfg,
    /// Array and scalar storage by container name.
    pub arrays: HashMap<String, Vec<f64>>,
    /// Stream queues by container name (flattened over the queue-array).
    pub streams: HashMap<String, VecDeque<f64>>,
    /// Symbol bindings.
    pub symbols: Env,
    programs: HashMap<(u32, u32), CompiledTasklet>,
    vm: TaskletVm,
    /// Maximum number of state transitions before aborting (default 10M).
    pub max_transitions: usize,
    /// Profiling switch for the next `run` (default off).
    pub profiling: Profiling,
    /// Instrumentation report from the last profiled `run`.
    pub last_report: Option<InstrumentationReport>,
    /// Live profiling state during a `run`; the interpreter is
    /// single-threaded, so everything records as worker 0.
    prof: Option<InterpProf>,
}

/// Pre-resolved per-scope modes plus the single worker profile.
struct InterpProf {
    collector: ProfileCollector,
    state_modes: HashMap<u32, ProfMode>,
    map_modes: HashMap<(u32, u32), ProfMode>,
    wp: WorkerProfile,
}

impl InterpProf {
    fn build(sdfg: &Sdfg, profiling: Profiling) -> Option<InterpProf> {
        if profiling == Profiling::Off {
            return None;
        }
        let resolve = |ann: Instrument| -> ProfMode {
            match (profiling, ann) {
                (Profiling::ForceTimers, _) => ProfMode::Timer,
                (_, Instrument::Timer) => ProfMode::Timer,
                (_, Instrument::Counter) => ProfMode::Counter,
                (_, Instrument::None) => ProfMode::Off,
            }
        };
        let collector = ProfileCollector::new();
        let mut state_modes = HashMap::new();
        let mut map_modes = HashMap::new();
        for sid in sdfg.graph.node_ids() {
            let state = sdfg.graph.node(sid);
            let sm = resolve(state.instrument);
            if sm != ProfMode::Off {
                state_modes.insert(sid.0, sm);
                collector.register_label(SpanKey::State(sid.0), state.label.clone());
            }
            for nid in state.graph.node_ids() {
                if let Node::MapEntry(m) = state.graph.node(nid) {
                    let mm = resolve(m.instrument);
                    if mm != ProfMode::Off {
                        map_modes.insert((sid.0, nid.0), mm);
                        collector.register_label(
                            SpanKey::Map {
                                state: sid.0,
                                node: nid.0,
                            },
                            format!("{} {}", m.label, state.graph.node(nid).label()),
                        );
                    }
                }
            }
        }
        Some(InterpProf {
            collector,
            state_modes,
            map_modes,
            wp: WorkerProfile::new(0),
        })
    }

    #[inline]
    fn state_mode(&self, sid: u32) -> ProfMode {
        self.state_modes.get(&sid).copied().unwrap_or(ProfMode::Off)
    }

    #[inline]
    fn map_mode(&self, key: (u32, u32)) -> ProfMode {
        self.map_modes.get(&key).copied().unwrap_or(ProfMode::Off)
    }
}

impl<'s> Interpreter<'s> {
    /// Creates an interpreter for an SDFG.
    pub fn new(sdfg: &'s Sdfg) -> Interpreter<'s> {
        Interpreter {
            sdfg,
            arrays: HashMap::new(),
            streams: HashMap::new(),
            symbols: Env::new(),
            programs: HashMap::new(),
            vm: TaskletVm::new(),
            max_transitions: 10_000_000,
            profiling: Profiling::default(),
            last_report: None,
            prof: None,
        }
    }

    /// Sets the profiling switch for subsequent `run`s.
    pub fn enable_profiling(&mut self, profiling: Profiling) -> &mut Self {
        self.profiling = profiling;
        self
    }

    /// Binds a symbol.
    pub fn set_symbol(&mut self, name: &str, value: i64) -> &mut Self {
        self.symbols.insert(name.to_string(), value);
        self
    }

    /// Provides an array's contents.
    pub fn set_array(&mut self, name: &str, data: Vec<f64>) -> &mut Self {
        self.arrays.insert(name.to_string(), data);
        self
    }

    /// Reads an array after `run`.
    pub fn array(&self, name: &str) -> &[f64] {
        self.arrays
            .get(name)
            .unwrap_or_else(|| panic!("array `{name}` not present"))
    }

    /// Runs the SDFG to completion.
    pub fn run(&mut self) -> Result<(), InterpError> {
        use sdfg_profile::flight;
        let run_t0 = std::time::Instant::now();
        self.prepare()?;
        self.prof = InterpProf::build(self.sdfg, self.profiling);
        let result = self.run_states();
        if let Some(p) = self.prof.take() {
            let InterpProf { collector, wp, .. } = p;
            // Spans are process-epoch stamped; the run's wall time is the
            // collector's own age.
            let wall = collector.elapsed();
            if !wp.is_empty() {
                collector.absorb(wp);
            }
            self.last_report = Some(collector.finish(wall));
        }
        if result.is_ok() {
            sdfg_profile::metrics::core().interp_runs.inc();
            if flight::enabled() {
                let dur = run_t0.elapsed().as_nanos() as u64;
                let t0 = sdfg_profile::epoch_ns().saturating_sub(dur);
                flight::record_span(flight::EventKind::InterpRun, t0, dur, 0, 0);
            }
        }
        result
    }

    fn run_states(&mut self) -> Result<(), InterpError> {
        let Some(start) = self.sdfg.start else {
            return Ok(());
        };
        let mut cur: StateId = start;
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > self.max_transitions {
                return Err(InterpError::StepLimit(self.max_transitions));
            }
            self.exec_state(cur)?;
            // Evaluate outgoing transitions in deterministic (edge id) order.
            let env = self.interstate_env();
            let mut next = None;
            for e in self.sdfg.graph.out_edges(cur) {
                let t = self.sdfg.graph.edge(e);
                if t.condition.eval(&env)? {
                    next = Some((self.sdfg.graph.edge_dst(e), t.assignments.clone()));
                    break;
                }
            }
            let Some((dst, assigns)) = next else {
                return Ok(()); // program terminates
            };
            for (sym, expr) in &assigns {
                let v = expr.eval(&self.interstate_env())?;
                self.symbols.insert(sym.clone(), v);
            }
            cur = dst;
        }
    }

    /// Allocates transients and checks provided arrays.
    fn prepare(&mut self) -> Result<(), InterpError> {
        for (name, desc) in &self.sdfg.data {
            match desc {
                DataDesc::Array(a) => {
                    let size: i64 = {
                        let mut s = 1i64;
                        for d in &a.shape {
                            s = s.saturating_mul(d.eval(&self.symbols)?.max(0));
                        }
                        s
                    };
                    let size = size as usize;
                    match self.arrays.get(name) {
                        Some(v) => {
                            if v.len() != size {
                                return Err(InterpError::SizeMismatch {
                                    name: name.clone(),
                                    expected: size,
                                    got: v.len(),
                                });
                            }
                        }
                        None if a.transient => {
                            self.arrays.insert(name.clone(), vec![0.0; size]);
                        }
                        None => return Err(InterpError::MissingArray(name.clone())),
                    }
                }
                DataDesc::Scalar(s) => {
                    if !self.arrays.contains_key(name) {
                        if s.transient {
                            self.arrays.insert(name.clone(), vec![0.0]);
                        } else {
                            // Non-transient scalars default to zero as well;
                            // they are often outputs.
                            self.arrays.insert(name.clone(), vec![0.0]);
                        }
                    }
                }
                DataDesc::Stream(_) => {
                    self.streams.entry(name.clone()).or_default();
                }
            }
        }
        Ok(())
    }

    /// Environment for interstate conditions: symbols plus scalar-valued
    /// containers (scalars and single-element arrays) and stream lengths
    /// (`len_<stream>` pseudo-symbols, the `len(S)` of Fig. 8).
    fn interstate_env(&self) -> Env {
        let mut env = self.symbols.clone();
        for (name, q) in &self.streams {
            env.insert(format!("len_{name}"), q.len() as i64);
        }
        for (name, desc) in &self.sdfg.data {
            let scalarish = match desc {
                DataDesc::Scalar(_) => true,
                DataDesc::Array(_) => self.arrays.get(name).is_some_and(|v| v.len() == 1),
                DataDesc::Stream(_) => false,
            };
            if scalarish {
                if let Some(v) = self.arrays.get(name) {
                    if let Some(&x) = v.first() {
                        env.insert(name.clone(), x.round() as i64);
                    }
                }
            }
        }
        env
    }

    fn exec_state(&mut self, sid: StateId) -> Result<(), InterpError> {
        let mode = match &self.prof {
            Some(p) => p.state_mode(sid.0),
            None => ProfMode::Off,
        };
        let start = match (mode, &self.prof) {
            (ProfMode::Timer, Some(p)) => Some(p.collector.now_ns()),
            _ => None,
        };
        let state = self.sdfg.state(sid);
        let tree = sdfg_core::scope::scope_tree(state)
            .map_err(|e| InterpError::BadGraph(e.to_string()))?;
        let order = state.topological_order();
        let env = self.symbols.clone();
        for n in order {
            if tree.scope_of(n).is_none() {
                self.exec_node(sid, &tree, n, &env, None)?;
            }
        }
        self.prof_scope(mode, start, SpanKey::State(sid.0));
        Ok(())
    }

    /// Records one scope entry into the worker-0 profile.
    fn prof_scope(&mut self, mode: ProfMode, start: Option<u64>, key: SpanKey) {
        let Some(p) = self.prof.as_mut() else { return };
        match mode {
            ProfMode::Off => {}
            ProfMode::Counter => {
                let stat = match key {
                    SpanKey::State(s) => p.wp.states.entry(s).or_default(),
                    SpanKey::Map { state, node } => p.wp.maps.entry((state, node)).or_default(),
                };
                stat.bump();
            }
            ProfMode::Timer => {
                let Some(s) = start else { return };
                let dur = p.collector.now_ns().saturating_sub(s);
                let stat = match key {
                    SpanKey::State(st) => p.wp.states.entry(st).or_default(),
                    SpanKey::Map { state, node } => p.wp.maps.entry((state, node)).or_default(),
                };
                stat.record(dur);
                p.wp.timeline.push(Span {
                    key,
                    worker: 0,
                    start_ns: s,
                    dur_ns: dur,
                });
            }
        }
    }

    /// Executes one node. `stream_override` supplies the popped element for
    /// consume-scope bodies: `(stream_name, value)`.
    fn exec_node(
        &mut self,
        sid: StateId,
        tree: &sdfg_core::scope::ScopeTree,
        n: NodeId,
        env: &Env,
        stream_override: Option<(&str, f64)>,
    ) -> Result<(), InterpError> {
        let state = self.sdfg.state(sid);
        match state.graph.node(n) {
            Node::Access { .. } => self.exec_access(sid, n, env),
            Node::Tasklet { .. } => self.exec_tasklet(sid, n, env, stream_override),
            Node::MapEntry(_) => self.exec_map(sid, tree, n, env),
            Node::ConsumeEntry(_) => self.exec_consume(sid, tree, n, env),
            Node::MapExit { .. } | Node::ConsumeExit { .. } => Ok(()),
            Node::Reduce { .. } => self.exec_reduce(sid, n, env),
            Node::NestedSdfg { .. } => self.exec_nested(sid, n, env),
        }
    }

    /// Copies along access→access edges (and array↔stream initialization),
    /// plus copies arriving from scope entries (local-storage tiles).
    fn exec_access(&mut self, sid: StateId, n: NodeId, env: &Env) -> Result<(), InterpError> {
        let state = self.sdfg.state(sid);
        let dst_name = state.graph.node(n).access_data().unwrap().to_string();
        let in_edges: Vec<EdgeId> = state.graph.in_edges(n).collect();
        for e in in_edges {
            let src = state.graph.edge_src(e);
            if !state.graph.node(src).is_scope_entry() {
                continue;
            }
            let m = state.graph.edge(e).memlet.clone();
            if m.is_empty() || m.data_name() == dst_name {
                continue;
            }
            // Copy global window → local buffer.
            let window = self.gather(m.data_name(), &m.subset, env)?;
            let dst_subset = match &m.other_subset {
                Some(s) => s.clone(),
                None => {
                    let desc = self
                        .sdfg
                        .desc(&dst_name)
                        .ok_or_else(|| InterpError::MissingArray(dst_name.clone()))?;
                    Subset::full(desc.shape())
                }
            };
            self.scatter_plain(&dst_name, &dst_subset, env, &window)?;
        }
        let out_edges: Vec<EdgeId> = state.graph.out_edges(n).collect();
        for e in out_edges {
            let dst = state.graph.edge_dst(e);
            if !matches!(state.graph.node(dst), Node::Access { .. }) {
                continue;
            }
            let dst_data = state.graph.node(dst).access_data().unwrap().to_string();
            let src_data = state.graph.node(n).access_data().unwrap().to_string();
            let memlet = state.graph.edge(e).memlet.clone();
            if memlet.is_empty() {
                continue;
            }
            let src_is_stream = matches!(self.sdfg.desc(&src_data), Some(DataDesc::Stream(_)));
            let dst_is_stream = matches!(self.sdfg.desc(&dst_data), Some(DataDesc::Stream(_)));
            match (src_is_stream, dst_is_stream) {
                (false, false) => {
                    let src_subset = if memlet.data.as_deref() == Some(&src_data) {
                        memlet.subset.clone()
                    } else {
                        memlet.other_subset.clone().unwrap_or(memlet.subset.clone())
                    };
                    let dst_subset = memlet
                        .other_subset
                        .clone()
                        .unwrap_or_else(|| src_subset.clone());
                    let window = self.gather(&src_data, &src_subset, env)?;
                    self.scatter_plain(&dst_data, &dst_subset, env, &window)?;
                }
                (false, true) => {
                    // Array → stream: push the subset contents.
                    let window = self.gather(&src_data, &memlet.subset, env)?;
                    let q = self.streams.entry(dst_data).or_default();
                    q.extend(window);
                }
                (true, false) => {
                    // Stream → array: drain into the destination subset.
                    // Dynamic memlets drain everything available (bounded by
                    // the window capacity).
                    let dst_subset = memlet
                        .other_subset
                        .clone()
                        .unwrap_or_else(|| memlet.subset.clone());
                    let dims = dst_subset.eval(env)?;
                    let capacity = count_elems(&dims);
                    let q = self.streams.entry(src_data).or_default();
                    let count = if memlet.dynamic {
                        capacity.min(q.len())
                    } else {
                        capacity
                    };
                    let mut window = Vec::with_capacity(count);
                    for _ in 0..count {
                        window.push(q.pop_front().unwrap_or(0.0));
                    }
                    // Partial drains scatter only the drained prefix.
                    let prefix = sdfg_symbolic::Subset::new(vec![sdfg_symbolic::SymRange::new(
                        0,
                        count as i64,
                    )]);
                    let target = if memlet.dynamic && count < capacity {
                        &prefix
                    } else {
                        &dst_subset
                    };
                    self.scatter_plain(&dst_data, target, env, &window)?;
                }
                (true, true) => {
                    // Stream → stream: drain-append (LocalStream flushes).
                    let drained: Vec<f64> = self
                        .streams
                        .get_mut(&src_data)
                        .map(|q| q.drain(..).collect())
                        .unwrap_or_default();
                    self.streams.entry(dst_data).or_default().extend(drained);
                }
            }
        }
        Ok(())
    }

    fn compile_tasklet(&mut self, sid: StateId, n: NodeId) -> Result<(), InterpError> {
        let key = (sid.0, n.0);
        if self.programs.contains_key(&key) {
            return Ok(());
        }
        let state = self.sdfg.state(sid);
        let Node::Tasklet {
            name, code, lang, ..
        } = state.graph.node(n)
        else {
            unreachable!()
        };
        if *lang != sdfg_core::TaskletLang::Python {
            return Err(InterpError::ExternalTasklet(name.clone()));
        }
        let mut in_edges = Vec::new();
        let mut in_conns = Vec::new();
        for e in state.graph.in_edges(n) {
            let df = state.graph.edge(e);
            if df.memlet.is_empty() {
                continue;
            }
            let Some(conn) = &df.dst_conn else { continue };
            in_edges.push(e);
            in_conns.push(conn.clone());
        }
        let mut out_conns: Vec<(String, Vec<EdgeId>)> = Vec::new();
        for e in state.graph.out_edges(n) {
            let df = state.graph.edge(e);
            if df.memlet.is_empty() {
                continue;
            }
            let Some(conn) = &df.src_conn else { continue };
            match out_conns.iter_mut().find(|(c, _)| c == conn) {
                Some((_, v)) => v.push(e),
                None => out_conns.push((conn.clone(), vec![e])),
            }
        }
        let out_names: Vec<String> = out_conns.iter().map(|(c, _)| c.clone()).collect();
        let prog = TaskletProgram::compile(code, &in_conns, &out_names)?;
        self.programs.insert(
            key,
            CompiledTasklet {
                prog,
                in_edges,
                out_conns,
            },
        );
        Ok(())
    }

    fn exec_tasklet(
        &mut self,
        sid: StateId,
        n: NodeId,
        env: &Env,
        stream_override: Option<(&str, f64)>,
    ) -> Result<(), InterpError> {
        self.compile_tasklet(sid, n)?;
        let key = (sid.0, n.0);
        // Gather inputs.
        let ct = &self.programs[&key];
        let in_edges = ct.in_edges.clone();
        let out_conns = ct.out_conns.clone();
        let state = self.sdfg.state(sid);
        let mut windows: Vec<Vec<f64>> = Vec::with_capacity(in_edges.len());
        for &e in &in_edges {
            let m = state.graph.edge(e).memlet.clone();
            let data = m.data_name().to_string();
            if let Some((s, v)) = stream_override {
                if s == data {
                    windows.push(vec![v]);
                    continue;
                }
            }
            if matches!(self.sdfg.desc(&data), Some(DataDesc::Stream(_))) {
                // Pop one element per execution.
                let q = self.streams.entry(data).or_default();
                windows.push(vec![q.pop_front().unwrap_or(0.0)]);
            } else {
                windows.push(self.gather(&data, &m.subset, env)?);
            }
        }
        // Prepare output buffers.
        struct OutBuf {
            conn_edges: Vec<EdgeId>,
            stream: bool,
            buf: Vec<f64>,
        }
        let mut outs: Vec<OutBuf> = Vec::new();
        for (_, edges) in &out_conns {
            let first = edges[0];
            let m = &state.graph.edge(first).memlet;
            let data = m.data_name().to_string();
            let is_stream = matches!(self.sdfg.desc(&data), Some(DataDesc::Stream(_)));
            let buf = if is_stream {
                Vec::new()
            } else {
                let dims = m.subset.eval(env)?;
                let len = count_elems(&dims);
                if let Some(w) = &m.wcr {
                    // Identity prefill (per element type).
                    let dtype = self.sdfg.desc(&data).map(|d| d.dtype()).unwrap();
                    let wcr = CompiledWcr::compile(w)?;
                    vec![wcr.identity(dtype).unwrap_or(0.0); len]
                } else {
                    // Prefill with current contents (partial writes, `+=`).
                    self.gather(&data, &m.subset, env)?
                }
            };
            outs.push(OutBuf {
                conn_edges: edges.clone(),
                stream: is_stream,
                buf,
            });
        }
        // Run the VM (resolving any SDFG symbols the body references).
        {
            let prog = &self.programs[&key].prog;
            let mut syms = Vec::with_capacity(prog.symbols.len());
            for name in &prog.symbols {
                let v = env
                    .get(name)
                    .copied()
                    .ok_or_else(|| EvalError::UnboundSymbol(name.clone()))?;
                syms.push(v as f64);
            }
            let ins: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
            let mut ports: Vec<OutPort> = outs
                .iter_mut()
                .map(|o| {
                    if o.stream {
                        OutPort::Stream(&mut o.buf)
                    } else {
                        OutPort::Mem(&mut o.buf)
                    }
                })
                .collect();
            self.vm.run_with_syms(prog, &ins, &mut ports, &syms)?;
        }
        // Scatter outputs.
        for o in outs {
            for &e in &o.conn_edges {
                let m = self.sdfg.state(sid).graph.edge(e).memlet.clone();
                let data = m.data_name().to_string();
                if o.stream {
                    let q = self.streams.entry(data).or_default();
                    q.extend(o.buf.iter().copied());
                } else if let Some(wcr) = &m.wcr {
                    let cw = CompiledWcr::compile(wcr)?;
                    self.scatter_wcr(&data, &m.subset, env, &o.buf, &cw)?;
                } else {
                    self.scatter_plain(&data, &m.subset, env, &o.buf)?;
                }
            }
        }
        Ok(())
    }

    fn exec_map(
        &mut self,
        sid: StateId,
        tree: &sdfg_core::scope::ScopeTree,
        entry: NodeId,
        env: &Env,
    ) -> Result<(), InterpError> {
        let pmode = match &self.prof {
            Some(p) => p.map_mode((sid.0, entry.0)),
            None => ProfMode::Off,
        };
        let pstart = match (pmode, &self.prof) {
            (ProfMode::Timer, Some(p)) => Some(p.collector.now_ns()),
            _ => None,
        };
        let state = self.sdfg.state(sid);
        let Node::MapEntry(scope) = state.graph.node(entry) else {
            unreachable!()
        };
        let params = scope.params.clone();
        let ranges = scope.ranges.clone();
        // Dynamic-range connectors (anything not IN_*).
        let mut env = env.clone();
        let dyn_edges: Vec<EdgeId> = state
            .graph
            .in_edges(entry)
            .filter(|&e| {
                let df = state.graph.edge(e);
                df.dst_conn
                    .as_deref()
                    .is_some_and(|c| !c.starts_with("IN_"))
            })
            .collect();
        for e in dyn_edges {
            let df = self.sdfg.state(sid).graph.edge(e);
            let conn = df.dst_conn.clone().unwrap();
            let m = df.memlet.clone();
            let w = self.gather(m.data_name(), &m.subset, &env)?;
            env.insert(conn, w[0].round() as i64);
        }
        // Children in topological order (immediate members only).
        let order = self.sdfg.state(sid).topological_order();
        let children: Vec<NodeId> = order
            .into_iter()
            .filter(|&c| tree.scope_of(c) == Some(entry))
            .collect();
        // Scope-owned transients (fresh per iteration) and write-back edges
        // (access → exit) flushed after each iteration.
        let state = self.sdfg.state(sid);
        let mut owned: Vec<String> = Vec::new();
        let mut writebacks: Vec<EdgeId> = Vec::new();
        let members = sdfg_core::scope::scope_members(state, entry);
        for &c in members.iter() {
            let Some(d) = state.graph.node(c).access_data() else {
                continue;
            };
            if tree.scope_of(c) == Some(entry)
                && self.sdfg.desc(d).is_some_and(|x| x.transient())
                && !owned.contains(&d.to_string())
                && scope_owns_container(self.sdfg, sid, &members, d)
            {
                owned.push(d.to_string());
            }
            for e in state.graph.out_edges(c) {
                let dst = state.graph.edge_dst(e);
                if state.graph.node(dst).exit_entry() == Some(entry)
                    && !state.graph.edge(e).memlet.is_empty()
                {
                    let m = &state.graph.edge(e).memlet;
                    if m.data_name() != d {
                        writebacks.push(e);
                    }
                }
            }
        }
        // Enumerate the iteration space as a recursive loop nest so that
        // inner ranges may reference outer parameters (triangular maps).
        let r = self.map_dim(
            sid,
            tree,
            &params,
            &ranges,
            0,
            &mut env,
            &children,
            &owned,
            &writebacks,
        );
        if r.is_ok() {
            self.prof_scope(
                pmode,
                pstart,
                SpanKey::Map {
                    state: sid.0,
                    node: entry.0,
                },
            );
        }
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn map_dim(
        &mut self,
        sid: StateId,
        tree: &sdfg_core::scope::ScopeTree,
        params: &[String],
        ranges: &[sdfg_symbolic::SymRange],
        dim: usize,
        env: &mut Env,
        children: &[NodeId],
        owned: &[String],
        writebacks: &[EdgeId],
    ) -> Result<(), InterpError> {
        if dim == params.len() {
            // Scope-owned transients have iteration lifetime.
            for t in owned {
                if let Some(buf) = self.arrays.get_mut(t) {
                    buf.fill(0.0);
                }
                if let Some(q) = self.streams.get_mut(t) {
                    q.clear();
                }
            }
            for &c in children {
                let env_now = env.clone();
                self.exec_node(sid, tree, c, &env_now, None)?;
            }
            // Write-backs: local → global along access→exit edges.
            let env_now = env.clone();
            for &e in writebacks {
                self.run_writeback(sid, e, &env_now)?;
            }
            return Ok(());
        }
        let (s, e, st, _) = ranges[dim].eval(env)?;
        if st <= 0 {
            return Err(InterpError::BadGraph("map step must be positive".into()));
        }
        let mut v = s;
        while v < e {
            env.insert(params[dim].clone(), v);
            self.map_dim(
                sid,
                tree,
                params,
                ranges,
                dim + 1,
                env,
                children,
                owned,
                writebacks,
            )?;
            v += st;
        }
        env.remove(&params[dim]);
        Ok(())
    }

    /// Flushes a local container to its global target along an
    /// access→exit edge.
    fn run_writeback(&mut self, sid: StateId, e: EdgeId, env: &Env) -> Result<(), InterpError> {
        let state = self.sdfg.state(sid);
        let src = state.graph.edge_src(e);
        let local = state.graph.node(src).access_data().unwrap().to_string();
        let m = state.graph.edge(e).memlet.clone();
        let global = m.data_name().to_string();
        let local_is_stream = matches!(self.sdfg.desc(&local), Some(DataDesc::Stream(_)));
        let global_is_stream = matches!(self.sdfg.desc(&global), Some(DataDesc::Stream(_)));
        if local_is_stream && global_is_stream {
            let drained: Vec<f64> = self
                .streams
                .get_mut(&local)
                .map(|q| q.drain(..).collect())
                .unwrap_or_default();
            self.streams.entry(global).or_default().extend(drained);
            return Ok(());
        }
        // Array write-back: gather the local side (other_subset or whole
        // buffer) and scatter into the global subset.
        let window = match &m.other_subset {
            Some(os) => self.gather(&local, os, env)?,
            None => self
                .arrays
                .get(&local)
                .cloned()
                .ok_or_else(|| InterpError::MissingArray(local.clone()))?,
        };
        if let Some(p) = self.prof.as_mut() {
            p.wp.bytes_moved += window.len() as u64 * std::mem::size_of::<f64>() as u64;
        }
        match &m.wcr {
            Some(w) => {
                let cw = CompiledWcr::compile(w)?;
                self.scatter_wcr(&global, &m.subset, env, &window, &cw)
            }
            None => self.scatter_plain(&global, &m.subset, env, &window),
        }
    }

    fn exec_consume(
        &mut self,
        sid: StateId,
        tree: &sdfg_core::scope::ScopeTree,
        entry: NodeId,
        env: &Env,
    ) -> Result<(), InterpError> {
        let state = self.sdfg.state(sid);
        let Node::ConsumeEntry(scope) = state.graph.node(entry) else {
            unreachable!()
        };
        let pe_param = scope.pe_param.clone();
        // The consumed stream: the in-edge whose memlet names a stream.
        let stream_name = state
            .graph
            .in_edges(entry)
            .filter_map(|e| state.graph.edge(e).memlet.data.clone())
            .find(|d| matches!(self.sdfg.desc(d), Some(DataDesc::Stream(_))))
            .ok_or_else(|| InterpError::BadGraph("consume scope without an input stream".into()))?;
        let order = state.topological_order();
        let children: Vec<NodeId> = order
            .into_iter()
            .filter(|&c| tree.scope_of(c) == Some(entry))
            .collect();
        let mut env = env.clone();
        let mut iter = 0i64;
        // Sequential drain (PEs are a parallelism hint; semantics are
        // order-insensitive by construction).
        while let Some(v) = self
            .streams
            .entry(stream_name.clone())
            .or_default()
            .pop_front()
        {
            env.insert(pe_param.clone(), iter);
            iter += 1;
            for &c in &children {
                self.exec_node(sid, tree, c, &env, Some((&stream_name, v)))?;
            }
        }
        Ok(())
    }

    fn exec_reduce(&mut self, sid: StateId, n: NodeId, env: &Env) -> Result<(), InterpError> {
        let state = self.sdfg.state(sid);
        let Node::Reduce {
            wcr,
            axes,
            identity,
        } = state.graph.node(n)
        else {
            unreachable!()
        };
        let wcr = CompiledWcr::compile(wcr)?;
        let identity = *identity;
        let axes = axes.clone();
        let in_edge = state
            .graph
            .in_edges(n)
            .next()
            .ok_or_else(|| InterpError::BadGraph("reduce without input".into()))?;
        let out_edge = state
            .graph
            .out_edges(n)
            .next()
            .ok_or_else(|| InterpError::BadGraph("reduce without output".into()))?;
        let in_m = state.graph.edge(in_edge).memlet.clone();
        let out_m = state.graph.edge(out_edge).memlet.clone();
        let window = self.gather(in_m.data_name(), &in_m.subset, env)?;
        let dims = in_m.subset.eval(env)?;
        let sizes: Vec<usize> = dims
            .iter()
            .map(|&(s, e, st, _)| (((e - s) + st - 1) / st).max(0) as usize)
            .collect();
        let rank = sizes.len();
        let reduce_axes: Vec<usize> = match &axes {
            Some(a) => a.clone(),
            None => (0..rank).collect(),
        };
        let keep_axes: Vec<usize> = (0..rank).filter(|d| !reduce_axes.contains(d)).collect();
        let out_sizes: Vec<usize> = keep_axes.iter().map(|&d| sizes[d]).collect();
        let out_len: usize = out_sizes.iter().product::<usize>().max(1);
        let mut acc = vec![
            identity
                .or_else(|| wcr.identity(sdfg_core::DType::F64))
                .unwrap_or(0.0);
            out_len
        ];
        let mut initialized =
            vec![identity.is_some() || matches!(wcr, CompiledWcr::Builtin(_)); out_len];
        // Iterate the full input space.
        let total: usize = sizes.iter().product::<usize>();
        let mut strides_out = vec![1usize; out_sizes.len()];
        for d in (0..out_sizes.len().saturating_sub(1)).rev() {
            strides_out[d] = strides_out[d + 1] * out_sizes[d + 1];
        }
        let mut in_strides = vec![1usize; rank];
        for d in (0..rank.saturating_sub(1)).rev() {
            in_strides[d] = in_strides[d + 1] * sizes[d + 1];
        }
        for (flat, &v) in window.iter().enumerate().take(total) {
            // Decompose flat into multi-index.
            let mut out_pos = 0usize;
            for (k, &d) in keep_axes.iter().enumerate() {
                let coord = (flat / in_strides[d]) % sizes[d];
                out_pos += coord * strides_out[k];
            }
            if initialized[out_pos] {
                acc[out_pos] = wcr.apply(&mut self.vm, acc[out_pos], v)?;
            } else {
                acc[out_pos] = v;
                initialized[out_pos] = true;
            }
        }
        // Scatter: if no identity was given, combine with prior contents
        // only when the node is WCR-annotated on the output memlet.
        if out_m.wcr.is_some() {
            self.scatter_wcr(out_m.data_name(), &out_m.subset, env, &acc, &wcr)?;
        } else {
            self.scatter_plain(out_m.data_name(), &out_m.subset, env, &acc)?;
        }
        Ok(())
    }

    fn exec_nested(&mut self, sid: StateId, n: NodeId, env: &Env) -> Result<(), InterpError> {
        let state = self.sdfg.state(sid);
        let Node::NestedSdfg {
            sdfg: nested,
            symbol_mapping,
            inputs,
            outputs,
        } = state.graph.node(n)
        else {
            unreachable!()
        };
        let mut sub = Interpreter::new(nested);
        sub.max_transitions = self.max_transitions;
        for (sym, expr) in symbol_mapping {
            sub.symbols.insert(sym.clone(), expr.eval(env)?);
        }
        // Copy inputs in.
        let in_edges: Vec<EdgeId> = state.graph.in_edges(n).collect();
        for e in in_edges {
            let df = state.graph.edge(e);
            let Some(conn) = &df.dst_conn else { continue };
            if !inputs.contains(conn) {
                continue;
            }
            let m = &df.memlet;
            let window = self.gather(m.data_name(), &m.subset, env)?;
            sub.arrays.insert(conn.clone(), window);
        }
        sub.run()?;
        // Copy outputs out.
        let out_edges: Vec<EdgeId> = state.graph.out_edges(n).collect();
        for e in out_edges {
            let df = self.sdfg.state(sid).graph.edge(e);
            let Some(conn) = &df.src_conn else { continue };
            if !outputs.contains(conn) {
                continue;
            }
            let m = df.memlet.clone();
            let window = sub
                .arrays
                .get(conn)
                .cloned()
                .ok_or_else(|| InterpError::MissingArray(conn.clone()))?;
            self.scatter_plain(m.data_name(), &m.subset, env, &window)?;
        }
        Ok(())
    }

    // --- windows ---------------------------------------------------------

    fn desc_strides(&self, data: &str, env: &Env) -> Result<Vec<i64>, InterpError> {
        match self.sdfg.desc(data) {
            Some(DataDesc::Array(a)) => {
                let mut out = Vec::with_capacity(a.strides.len());
                for s in &a.strides {
                    out.push(s.eval(env)?);
                }
                Ok(out)
            }
            Some(DataDesc::Scalar(_)) => Ok(vec![]),
            _ => Err(InterpError::BadGraph(format!(
                "windowed access into non-array `{data}`"
            ))),
        }
    }

    fn gather(&self, data: &str, subset: &Subset, env: &Env) -> Result<Vec<f64>, InterpError> {
        let arr = self
            .arrays
            .get(data)
            .ok_or_else(|| InterpError::MissingArray(data.to_string()))?;
        let strides = self.desc_strides(data, env)?;
        let dims = subset.eval(env)?;
        let mut out = Vec::with_capacity(count_elems(&dims));
        for_each_offset(&dims, &strides, |off| {
            out.push(*arr.get(off).unwrap_or(&0.0));
        });
        Ok(out)
    }

    fn scatter_plain(
        &mut self,
        data: &str,
        subset: &Subset,
        env: &Env,
        window: &[f64],
    ) -> Result<(), InterpError> {
        let strides = self.desc_strides(data, env)?;
        let dims = subset.eval(env)?;
        let arr = self
            .arrays
            .get_mut(data)
            .ok_or_else(|| InterpError::MissingArray(data.to_string()))?;
        let mut i = 0usize;
        for_each_offset(&dims, &strides, |off| {
            if let Some(slot) = arr.get_mut(off) {
                *slot = window[i];
            }
            i += 1;
        });
        Ok(())
    }

    fn scatter_wcr(
        &mut self,
        data: &str,
        subset: &Subset,
        env: &Env,
        window: &[f64],
        wcr: &CompiledWcr,
    ) -> Result<(), InterpError> {
        let strides = self.desc_strides(data, env)?;
        let dims = subset.eval(env)?;
        // Collect offsets first to keep the borrow checker happy around the
        // VM borrow in custom WCRs.
        let mut offsets = Vec::with_capacity(count_elems(&dims));
        for_each_offset(&dims, &strides, |off| offsets.push(off));
        for (i, off) in offsets.into_iter().enumerate() {
            let old = *self
                .arrays
                .get(data)
                .ok_or_else(|| InterpError::MissingArray(data.to_string()))?
                .get(off)
                .unwrap_or(&0.0);
            let combined = wcr.apply(&mut self.vm, old, window[i])?;
            if let Some(slot) = self.arrays.get_mut(data).unwrap().get_mut(off) {
                *slot = combined;
            }
        }
        Ok(())
    }
}

/// True when every access to `data` in the whole SDFG lies inside the
/// scope of `entry` in state `sid` — only then does the container have
/// scope lifetime (fresh per iteration, thread-private).
fn scope_owns_container(sdfg: &Sdfg, sid: StateId, members: &[NodeId], data: &str) -> bool {
    for other_sid in sdfg.graph.node_ids() {
        let other = sdfg.graph.node(other_sid);
        for n in other.graph.node_ids() {
            if other.graph.node(n).access_data() == Some(data)
                && !(other_sid == sid && members.contains(&n))
            {
                return false;
            }
        }
    }
    true
}

/// Number of elements selected by evaluated subset dims.
fn count_elems(dims: &[(i64, i64, i64, i64)]) -> usize {
    let mut n = 1usize;
    for &(s, e, st, t) in dims {
        let len = if st > 0 { ((e - s) + st - 1) / st } else { 0 };
        n = n
            .saturating_mul(len.max(0) as usize)
            .saturating_mul(t.max(1) as usize);
    }
    n
}

/// Iterates flat element offsets of a strided subset in row-major order.
fn for_each_offset(dims: &[(i64, i64, i64, i64)], strides: &[i64], mut f: impl FnMut(usize)) {
    if dims.is_empty() {
        f(0);
        return;
    }
    // Expand tiles into the innermost dimension.
    let mut idx: Vec<i64> = dims.iter().map(|d| d.0).collect();
    if dims.iter().any(|&(s, e, _, _)| s >= e) {
        return;
    }
    loop {
        let mut base = 0i64;
        for (d, &(_, _, _, _t)) in dims.iter().enumerate() {
            base += idx[d] * strides.get(d).copied().unwrap_or(1);
        }
        let tile = dims.last().map(|d| d.3.max(1)).unwrap_or(1);
        for t in 0..tile {
            let off = base + t;
            if off >= 0 {
                f(off as usize);
            }
        }
        // Odometer.
        let mut d = dims.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += dims[d].2;
            if idx[d] < dims[d].1 {
                break;
            }
            idx[d] = dims[d].0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::node::{ConsumeScope, MapScope};
    use sdfg_core::sdfg::InterstateEdge;
    use sdfg_core::{DType, Memlet, Schedule};
    use sdfg_frontend::SdfgBuilder;
    use sdfg_symbolic::SymRange;

    #[test]
    fn vector_add_runs() {
        let mut b = SdfgBuilder::new("vadd");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        b.array("C", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "add",
            &[("i", "0:N")],
            &[("a", "A", "i"), ("b", "B", "i")],
            "c = a + b",
            &[("c", "C", "i")],
        );
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", 5);
        it.set_array("A", vec![1.0; 5]);
        it.set_array("B", (0..5).map(|x| x as f64).collect());
        it.set_array("C", vec![0.0; 5]);
        it.run().unwrap();
        assert_eq!(it.array("C"), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn wcr_dot_product() {
        let mut b = SdfgBuilder::new("dot");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        b.array("out", &["1"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet_wcr(
            st,
            "mul",
            &[("i", "0:N")],
            &[("a", "A", "i"), ("b", "B", "i")],
            "o = a * b",
            &[("o", "out", "0", Some(Wcr::Sum))],
            Schedule::CpuMulticore,
        );
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", 4);
        it.set_array("A", vec![1.0, 2.0, 3.0, 4.0]);
        it.set_array("B", vec![10.0, 10.0, 10.0, 10.0]);
        it.set_array("out", vec![0.0]);
        it.run().unwrap();
        assert_eq!(it.array("out"), &[100.0]);
    }

    #[test]
    fn laplace_time_loop() {
        // Fig. 2: double-buffered 1-D stencil over a state-machine loop.
        let src = r#"
def laplace(A: dace.float64[2, N], T: dace.int64):
    for t in range(T):
        for i in dace.map[1:N - 1]:
            with dace.tasklet:
                l << A[t % 2, i - 1]
                c << A[t % 2, i]
                r << A[t % 2, i + 1]
                out >> A[(t + 1) % 2, i]
                out = l - 2 * c + r
"#;
        let sdfg = sdfg_frontend::parse_program(src).unwrap();
        let n = 8usize;
        let mut a = vec![0.0; 2 * n];
        a[3] = 1.0; // impulse in buffer 0
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", n as i64);
        it.set_symbol("T", 1);
        it.set_array("A", a.clone());
        it.run().unwrap();
        let out = &it.array("A")[n..]; // buffer 1
                                       // Laplace of an impulse: [.., 1, -2, 1, ..]
        assert_eq!(out[2], 1.0);
        assert_eq!(out[3], -2.0);
        assert_eq!(out[4], 1.0);
        // Reference second step for T=2 matches manual computation.
        let mut it2 = Interpreter::new(&sdfg);
        it2.set_symbol("N", n as i64);
        it2.set_symbol("T", 2);
        it2.set_array("A", a);
        it2.run().unwrap();
        let out2 = &it2.array("A")[..n]; // buffer 0 again
                                         // step2[i] = s1[i-1] - 2*s1[i] + s1[i+1]; s1 = [0,0,1,-2,1,0,0,0]
                                         // step2[3] = 1 - 2*(-2) + 1 = 6.
        assert_eq!(out2[3], 6.0);
    }

    #[test]
    fn laplace_step2_value() {
        // Isolated check of the comment above.
        let src = r#"
def laplace(A: dace.float64[2, N], T: dace.int64):
    for t in range(T):
        for i in dace.map[1:N - 1]:
            with dace.tasklet:
                l << A[t % 2, i - 1]
                c << A[t % 2, i]
                r << A[t % 2, i + 1]
                out >> A[(t + 1) % 2, i]
                out = l - 2 * c + r
"#;
        let sdfg = sdfg_frontend::parse_program(src).unwrap();
        let n = 8usize;
        let mut a = vec![0.0; 2 * n];
        a[3] = 1.0;
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", n as i64);
        it.set_symbol("T", 2);
        it.set_array("A", a);
        it.run().unwrap();
        assert_eq!(it.array("A")[3], 6.0);
    }

    #[test]
    fn branch_state_machine() {
        // Fig. 10a-style data-dependent branching.
        let src = r#"
def branchy(A: dace.float64[4], C: dace.int64):
    if C < 5:
        for i in dace.map[0:4]:
            A[i] = A[i] * 2
    else:
        for i in dace.map[0:4]:
            A[i] = A[i] / 2
"#;
        let sdfg = sdfg_frontend::parse_program(src).unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("C", 3);
        it.set_array("A", vec![1.0, 2.0, 3.0, 4.0]);
        it.run().unwrap();
        assert_eq!(it.array("A"), &[2.0, 4.0, 6.0, 8.0]);
        let mut it2 = Interpreter::new(&sdfg);
        it2.set_symbol("C", 7);
        it2.set_array("A", vec![2.0, 4.0, 6.0, 8.0]);
        it2.run().unwrap();
        assert_eq!(it2.array("A"), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_with_wcr() {
        let src = r#"
def mm(A: dace.float64[M, K], B: dace.float64[K, N], C: dace.float64[M, N]):
    for i, j, k in dace.map[0:M, 0:N, 0:K]:
        C[i, j] += A[i, k] * B[k, j]
"#;
        let sdfg = sdfg_frontend::parse_program(src).unwrap();
        let (m, k, n) = (3usize, 4usize, 2usize);
        let a: Vec<f64> = (0..m * k).map(|x| x as f64).collect();
        let bm: Vec<f64> = (0..k * n).map(|x| (x % 3) as f64).collect();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("M", m as i64)
            .set_symbol("K", k as i64)
            .set_symbol("N", n as i64);
        it.set_array("A", a.clone());
        it.set_array("B", bm.clone());
        it.set_array("C", vec![0.0; m * n]);
        it.run().unwrap();
        // Reference.
        let mut c_ref = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c_ref[i * n + j] += a[i * k + kk] * bm[kk * n + j];
                }
            }
        }
        assert_eq!(it.array("C"), c_ref.as_slice());
    }

    #[test]
    fn reduce_node_sum_over_axis() {
        let mut b = SdfgBuilder::new("red");
        b.symbol("N");
        b.array("A", &["N", "N"], DType::F64);
        b.array("out", &["N"], DType::F64);
        let st = b.state("main");
        b.reduce(
            st,
            "A",
            "0:N, 0:N",
            "out",
            "0:N",
            Wcr::Sum,
            Some(vec![1]),
            Some(0.0),
        );
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", 3);
        it.set_array("A", (0..9).map(|x| x as f64).collect());
        it.set_array("out", vec![0.0; 3]);
        it.run().unwrap();
        assert_eq!(it.array("out"), &[3.0, 12.0, 21.0]); // row sums
    }

    #[test]
    fn fibonacci_consume_scope() {
        // Fig. 8: asynchronous Fibonacci without memoization.
        let mut sdfg = Sdfg::new("fib");
        sdfg.add_stream("S", DType::F64);
        sdfg.add_array("N", &["1"], DType::F64);
        sdfg.add_array("out", &["1"], DType::F64);
        let init = sdfg.add_state("init");
        let main = sdfg.add_state("main");
        sdfg.add_transition(init, main, InterstateEdge::always());
        // init: push N into S.
        {
            let st = sdfg.state_mut(init);
            let n = st.add_access("N");
            let s = st.add_access("S");
            st.add_plain_edge(n, s, Memlet::parse("N", "0"));
        }
        // main: consume S with P workers.
        {
            let st = sdfg.state_mut(main);
            let s_in = st.add_access("S");
            let (ce, cx) = st.add_consume(ConsumeScope {
                label: "fib".into(),
                pe_param: "p".into(),
                num_pes: 4.into(),
                element: "val".into(),
                condition: None,
                schedule: Schedule::CpuMulticore,
            });
            let t = st.add_tasklet(
                "fib",
                &["val"],
                &["res", "S_out"],
                "if val < 2:\n    res = val\nelse:\n    S_out.push(val - 1)\n    S_out.push(val - 2)\n    res = 0",
            );
            let s_push = st.add_access("S");
            let out = st.add_access("out");
            st.add_edge(
                s_in,
                None,
                ce,
                Some("IN_stream"),
                Memlet::parse("S", "0").dynamic(),
            );
            st.add_edge(
                ce,
                Some("OUT_stream"),
                t,
                Some("val"),
                Memlet::parse("S", "0").dynamic(),
            );
            st.add_edge(
                t,
                Some("res"),
                cx,
                Some("IN_out"),
                Memlet::parse("out", "0").with_wcr(Wcr::Sum),
            );
            st.add_edge(
                cx,
                Some("OUT_out"),
                out,
                None,
                Memlet::parse("out", "0").with_wcr(Wcr::Sum),
            );
            st.add_edge(
                t,
                Some("S_out"),
                s_push,
                None,
                Memlet::parse("S", "0").dynamic(),
            );
        }
        sdfg.validate().expect("valid fib sdfg");
        let mut it = Interpreter::new(&sdfg);
        it.set_array("N", vec![10.0]);
        it.set_array("out", vec![0.0]);
        it.run().unwrap();
        assert_eq!(it.array("out"), &[55.0]); // fib(10)
    }

    #[test]
    fn nested_sdfg_invocation() {
        // Inner SDFG doubles a 4-vector; outer invokes it per row.
        let mut inner_b = SdfgBuilder::new("double4");
        inner_b.array("X", &["4"], DType::F64);
        let ist = inner_b.state("s");
        inner_b.mapped_tasklet(
            ist,
            "d",
            &[("i", "0:4")],
            &[("x", "X", "i")],
            "o = x * 2",
            &[("o", "X", "i")],
        );
        let inner = inner_b.build().unwrap();

        let mut sdfg = Sdfg::new("outer");
        sdfg.add_array("A", &["2", "4"], DType::F64);
        let sid = sdfg.add_state("main");
        let st = sdfg.state_mut(sid);
        let a_r = st.add_access("A");
        let a_w = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "rows",
            vec!["r".into()],
            vec![SymRange::new(0, 2)],
        ));
        let nested = st.add_node(Node::NestedSdfg {
            sdfg: Box::new(inner),
            symbol_mapping: Default::default(),
            inputs: vec!["X".into()],
            outputs: vec!["X".into()],
        });
        st.add_edge(a_r, None, me, Some("IN_A"), Memlet::parse("A", "0:2, 0:4"));
        st.add_edge(
            me,
            Some("OUT_A"),
            nested,
            Some("X"),
            Memlet::parse("A", "r, 0:4"),
        );
        st.add_edge(
            nested,
            Some("X"),
            mx,
            Some("IN_A"),
            Memlet::parse("A", "r, 0:4"),
        );
        st.add_edge(mx, Some("OUT_A"), a_w, None, Memlet::parse("A", "0:2, 0:4"));
        sdfg.validate().expect("valid");
        let mut it = Interpreter::new(&sdfg);
        it.set_array("A", (0..8).map(|x| x as f64).collect());
        it.run().unwrap();
        let expect: Vec<f64> = (0..8).map(|x| 2.0 * x as f64).collect();
        assert_eq!(it.array("A"), expect.as_slice());
    }

    #[test]
    fn transients_are_allocated() {
        let mut b = SdfgBuilder::new("tr");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.transient("tmp", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let s1 = b.state("s1");
        b.mapped_tasklet(
            s1,
            "t1",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "tmp", "i")],
        );
        let s2 = b.state("s2");
        b.mapped_tasklet(
            s2,
            "t2",
            &[("i", "0:N")],
            &[("a", "tmp", "i")],
            "o = a * 3",
            &[("o", "B", "i")],
        );
        b.transition(s1, s2);
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", 3);
        it.set_array("A", vec![0.0, 1.0, 2.0]);
        it.set_array("B", vec![0.0; 3]);
        it.run().unwrap();
        assert_eq!(it.array("B"), &[3.0, 6.0, 9.0]);
    }

    #[test]
    fn missing_array_reported() {
        let mut b = SdfgBuilder::new("m");
        b.array("A", &["4"], DType::F64);
        let _ = b.state("s");
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        let e = it.run().unwrap_err();
        assert!(matches!(e, InterpError::MissingArray(n) if n == "A"));
    }

    #[test]
    fn size_mismatch_reported() {
        let mut b = SdfgBuilder::new("m");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        let _ = b.state("s");
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", 8);
        it.set_array("A", vec![0.0; 4]);
        let e = it.run().unwrap_err();
        assert!(matches!(
            e,
            InterpError::SizeMismatch {
                expected: 8,
                got: 4,
                ..
            }
        ));
    }

    #[test]
    fn copy_between_arrays() {
        let mut b = SdfgBuilder::new("cp");
        b.array("A", &["4", "4"], DType::F64);
        b.array("B", &["2", "2"], DType::F64);
        let st = b.state("s");
        b.copy(st, "A", "1:3, 1:3", "B", "0:2, 0:2");
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_array("A", (0..16).map(|x| x as f64).collect());
        it.set_array("B", vec![0.0; 4]);
        it.run().unwrap();
        assert_eq!(it.array("B"), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn triangular_map_range() {
        // Inner range depends on the outer parameter.
        let mut b = SdfgBuilder::new("tri");
        b.symbol("N");
        b.array("A", &["N", "N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N"), ("j", "0:i + 1")],
            &[("a", "A", "i, j")],
            "o = a + 1",
            &[("o", "A", "i, j")],
        );
        let sdfg = b.build().unwrap();
        let mut it = Interpreter::new(&sdfg);
        it.set_symbol("N", 3);
        it.set_array("A", vec![0.0; 9]);
        it.run().unwrap();
        // Lower triangle incremented.
        assert_eq!(
            it.array("A"),
            &[1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0]
        );
    }
}
