//! # sdfg-interp — the reference SDFG interpreter
//!
//! A direct implementation of the operational semantics of the paper's
//! Appendix A: state-machine evaluation at the top level, dataflow
//! propagation in dependency order inside states, symbolic map expansion by
//! enumeration, stream push/pop with queue sizes, consume-scope draining,
//! write-conflict resolution, reductions, and nested-SDFG invocation.
//!
//! This is the **test oracle** of the repository: it is deliberately simple
//! (single-threaded, window-copy based) and obviously faithful to the
//! semantics. Performance execution lives in `sdfg-exec`, whose results are
//! property-tested against this interpreter.
//!
//! All container element values are `f64` (matching the tasklet VM); this
//! represents integers exactly up to 2^53, which covers every workload in
//! the evaluation.
//!
//! ```
//! use sdfg_frontend::SdfgBuilder;
//! use sdfg_core::DType;
//! use sdfg_interp::Interpreter;
//!
//! let mut b = SdfgBuilder::new("double");
//! b.symbol("N");
//! b.array("A", &["N"], DType::F64);
//! let st = b.state("main");
//! b.mapped_tasklet(st, "d", &[("i", "0:N")], &[("a", "A", "i")],
//!                  "o = a * 2", &[("o", "A", "i")]);
//! let sdfg = b.build().unwrap();
//!
//! let mut interp = Interpreter::new(&sdfg);
//! interp.set_symbol("N", 4);
//! interp.set_array("A", vec![1.0, 2.0, 3.0, 4.0]);
//! interp.run().unwrap();
//! assert_eq!(interp.array("A"), &[2.0, 4.0, 6.0, 8.0]);
//! ```

mod machine;

pub use machine::{InterpError, Interpreter};
// Re-export the profiling vocabulary so callers can enable instrumentation
// and consume reports without naming `sdfg-profile` directly.
pub use sdfg_profile::{InstrumentationReport, Profiling};
