//! Bytecode compiler for tasklet programs.
//!
//! Tasklets execute once per map point, so the per-execution overhead must
//! be small: the AST is compiled once into a flat register bytecode, and the
//! VM ([`crate::vm`]) executes it with a reusable register file — the same
//! role the Python-to-C++ converter plays in the paper (§3.2).

use crate::ast::{parse_tasklet, BinOp, Builtin, CmpOp, ExprAst, LangError, Stmt};
use std::collections::HashMap;

/// Operand of a connector access: a constant offset or a register holding
/// the (flattened) index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Offset {
    /// Compile-time constant element offset.
    Const(u32),
    /// Offset computed at runtime (truncated from the register's value).
    Reg(u16),
}

/// One bytecode instruction. Registers are `f64` slots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// `regs[d] = v`
    Const {
        /// Destination register.
        d: u16,
        /// Literal.
        v: f64,
    },
    /// `regs[d] = regs[s]`
    Mov {
        /// Destination register.
        d: u16,
        /// Source register.
        s: u16,
    },
    /// `regs[d] = regs[a] <op> regs[b]`
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        d: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `regs[d] = regs[a] <cmp> regs[b] ? 1.0 : 0.0`
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination register.
        d: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `regs[d] = -regs[a]`
    Neg {
        /// Destination register.
        d: u16,
        /// Operand register.
        a: u16,
    },
    /// `regs[d] = regs[a] == 0.0 ? 1.0 : 0.0`
    Not {
        /// Destination register.
        d: u16,
        /// Operand register.
        a: u16,
    },
    /// `regs[d] = min(regs[a], regs[b])`
    MinI {
        /// Destination register.
        d: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `regs[d] = max(regs[a], regs[b])`
    MaxI {
        /// Destination register.
        d: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `regs[d] = f(regs[a])` for unary builtins.
    Call1 {
        /// Builtin function.
        f: Builtin,
        /// Destination register.
        d: u16,
        /// Operand register.
        a: u16,
    },
    /// `regs[d] = syms[slot]` — read an SDFG symbol value.
    LoadSym {
        /// Destination register.
        d: u16,
        /// Symbol slot (index into `TaskletProgram::symbols`).
        slot: u16,
    },
    /// `regs[d] = inputs[slot][offset]`
    Load {
        /// Destination register.
        d: u16,
        /// Input connector index.
        slot: u16,
        /// Element offset.
        off: Offset,
    },
    /// `outputs[slot][offset] = regs[s]` (also readable for `+=`).
    Store {
        /// Output connector index.
        slot: u16,
        /// Element offset.
        off: Offset,
        /// Source register.
        s: u16,
    },
    /// `regs[d] = outputs[slot][offset]` (for augmented assignment).
    LoadOut {
        /// Destination register.
        d: u16,
        /// Output connector index.
        slot: u16,
        /// Element offset.
        off: Offset,
    },
    /// Push `regs[s]` onto stream output `slot`.
    Push {
        /// Output connector index (must be a stream port at runtime).
        slot: u16,
        /// Source register.
        s: u16,
    },
    /// Jump to `target` if `regs[c] == 0.0`.
    JumpIfZero {
        /// Condition register.
        c: u16,
        /// Instruction index.
        target: u32,
    },
    /// Jump to `target` if `regs[c] != 0.0`.
    JumpIfNonZero {
        /// Condition register.
        c: u16,
        /// Instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Instruction index.
        target: u32,
    },
}

/// A compiled tasklet: bytecode plus connector metadata.
#[derive(Clone, Debug)]
pub struct TaskletProgram {
    /// Flat instruction stream.
    pub instrs: Vec<Instr>,
    /// Number of registers needed.
    pub n_regs: u16,
    /// Input connector names (slot order).
    pub inputs: Vec<String>,
    /// Output connector names (slot order).
    pub outputs: Vec<String>,
    /// SDFG symbols referenced by the body (resolved by the engine per
    /// execution and passed to [`crate::TaskletVm::run_with_syms`]).
    pub symbols: Vec<String>,
    /// Parsed AST (kept for pattern recognition and code generation).
    pub body: Vec<Stmt>,
}

impl TaskletProgram {
    /// Parses and compiles a tasklet body. `inputs`/`outputs` are the
    /// connector names in slot order (matching the memlets attached to the
    /// tasklet node).
    pub fn compile(
        code: &str,
        inputs: &[String],
        outputs: &[String],
    ) -> Result<TaskletProgram, LangError> {
        let body = parse_tasklet(code)?;
        let mut c = Compiler {
            instrs: Vec::new(),
            inputs,
            outputs,
            locals: HashMap::new(),
            symbols: Vec::new(),
            next_reg: 0,
            max_reg: 0,
        };
        c.compile_block(&body)?;
        Ok(TaskletProgram {
            instrs: c.instrs,
            n_regs: c.max_reg,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
            symbols: c.symbols,
            body,
        })
    }

    /// Input slot by connector name.
    pub fn input_slot(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|n| n == name)
    }

    /// Output slot by connector name.
    pub fn output_slot(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|n| n == name)
    }
}

struct Compiler<'a> {
    instrs: Vec<Instr>,
    inputs: &'a [String],
    outputs: &'a [String],
    /// Local variable registers (persist across statements).
    locals: HashMap<String, u16>,
    /// SDFG symbols referenced (names not bound to connectors or locals).
    symbols: Vec<String>,
    /// Next free temp register (above locals).
    next_reg: u16,
    max_reg: u16,
}

impl Compiler<'_> {
    fn alloc(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    fn local(&mut self, name: &str) -> u16 {
        if let Some(&r) = self.locals.get(name) {
            return r;
        }
        let r = self.alloc();
        // Locals stay allocated: raise the temp floor permanently.
        self.locals.insert(name.to_string(), r);
        r
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.instrs[at] {
            Instr::JumpIfZero { target: t, .. }
            | Instr::JumpIfNonZero { target: t, .. }
            | Instr::Jump { target: t } => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn compile_block(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            self.compile_stmt(s)?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        // Temps used within one statement are released afterwards; locals
        // (tracked in `self.locals`) keep their registers because `local()`
        // allocates below the floor we restore to.
        let floor = self.next_reg;
        match stmt {
            Stmt::Assign {
                target,
                index,
                op,
                value,
            } => {
                let off = match index {
                    None => Offset::Const(0),
                    Some(idx) => {
                        if idx.len() != 1 {
                            return Err(LangError {
                                line: 0,
                                message: format!(
                                    "connector `{target}` indexed with {} dimensions; tasklet \
                                     connectors are flat (use a single flattened index)",
                                    idx.len()
                                ),
                            });
                        }
                        self.compile_offset(&idx[0])?
                    }
                };
                if let Some(slot) = self.outputs.iter().position(|n| n == target) {
                    let slot = slot as u16;
                    let v = if let Some(op) = op {
                        let cur = self.alloc();
                        self.instrs.push(Instr::LoadOut { d: cur, slot, off });
                        let rhs = self.compile_expr(value)?;
                        let d = self.alloc();
                        self.instrs.push(Instr::Bin {
                            op: *op,
                            d,
                            a: cur,
                            b: rhs,
                        });
                        d
                    } else {
                        self.compile_expr(value)?
                    };
                    self.instrs.push(Instr::Store { slot, off, s: v });
                } else if self.inputs.iter().any(|n| n == target) {
                    return Err(LangError {
                        line: 0,
                        message: format!("cannot assign to input connector `{target}`"),
                    });
                } else {
                    // Local variable.
                    if index.is_some() {
                        return Err(LangError {
                            line: 0,
                            message: format!("cannot index local variable `{target}`"),
                        });
                    }
                    if op.is_some() && !self.locals.contains_key(target) {
                        return Err(LangError {
                            line: 0,
                            message: format!("augmented assignment to undefined `{target}`"),
                        });
                    }
                    let rhs = if let Some(op) = op {
                        let cur = self.locals[target];
                        let v = self.compile_expr(value)?;
                        let d = self.alloc();
                        self.instrs.push(Instr::Bin {
                            op: *op,
                            d,
                            a: cur,
                            b: v,
                        });
                        d
                    } else {
                        self.compile_expr(value)?
                    };
                    // Allocate the local *after* evaluating the RHS so that
                    // `x = x + 1` with undefined x errors in compile_expr.
                    let reg = self.local(target);
                    self.instrs.push(Instr::Mov { d: reg, s: rhs });
                }
            }
            Stmt::Push { stream, value } => {
                let Some(slot) = self.outputs.iter().position(|n| n == stream) else {
                    return Err(LangError {
                        line: 0,
                        message: format!("push to unknown output connector `{stream}`"),
                    });
                };
                let v = self.compile_expr(value)?;
                self.instrs.push(Instr::Push {
                    slot: slot as u16,
                    s: v,
                });
            }
            Stmt::If { cond, then, els } => {
                let c = self.compile_expr(cond)?;
                let jz_at = self.instrs.len();
                self.instrs.push(Instr::JumpIfZero { c, target: 0 });
                self.compile_block(then)?;
                if els.is_empty() {
                    let end = self.here();
                    self.patch(jz_at, end);
                } else {
                    let jmp_at = self.instrs.len();
                    self.instrs.push(Instr::Jump { target: 0 });
                    let else_start = self.here();
                    self.patch(jz_at, else_start);
                    self.compile_block(els)?;
                    let end = self.here();
                    self.patch(jmp_at, end);
                }
            }
        }
        // Release statement temps but never below the local floor (locals
        // allocated in this statement raised `floor`'s meaning — recompute).
        let locals_top = self
            .locals
            .values()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        self.next_reg = floor.max(locals_top);
        Ok(())
    }

    /// Compiles an index expression; constants become `Offset::Const`.
    fn compile_offset(&mut self, e: &ExprAst) -> Result<Offset, LangError> {
        if let ExprAst::Num(v) = e {
            if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 {
                return Ok(Offset::Const(*v as u32));
            }
        }
        Ok(Offset::Reg(self.compile_expr(e)?))
    }

    fn compile_expr(&mut self, e: &ExprAst) -> Result<u16, LangError> {
        match e {
            ExprAst::Num(v) => {
                let d = self.alloc();
                self.instrs.push(Instr::Const { d, v: *v });
                Ok(d)
            }
            ExprAst::Name(name) => {
                if let Some(slot) = self.inputs.iter().position(|n| n == name) {
                    let d = self.alloc();
                    self.instrs.push(Instr::Load {
                        d,
                        slot: slot as u16,
                        off: Offset::Const(0),
                    });
                    return Ok(d);
                }
                if let Some(&r) = self.locals.get(name) {
                    return Ok(r);
                }
                if self.outputs.iter().any(|n| n == name) {
                    let slot = self.outputs.iter().position(|n| n == name).unwrap() as u16;
                    let d = self.alloc();
                    self.instrs.push(Instr::LoadOut {
                        d,
                        slot,
                        off: Offset::Const(0),
                    });
                    return Ok(d);
                }
                // Unknown names resolve to SDFG symbols, supplied per
                // execution by the engine (the DaCe convention: tasklets
                // may read interstate symbols and map parameters).
                let slot = match self.symbols.iter().position(|s| s == name) {
                    Some(p) => p as u16,
                    None => {
                        self.symbols.push(name.clone());
                        (self.symbols.len() - 1) as u16
                    }
                };
                let d = self.alloc();
                self.instrs.push(Instr::LoadSym { d, slot });
                Ok(d)
            }
            ExprAst::Index(name, idx) => {
                if idx.len() != 1 {
                    return Err(LangError {
                        line: 0,
                        message: format!(
                            "connector `{name}` indexed with {} dimensions; use a flattened index",
                            idx.len()
                        ),
                    });
                }
                let off = self.compile_offset(&idx[0])?;
                if let Some(slot) = self.inputs.iter().position(|n| n == name) {
                    let d = self.alloc();
                    self.instrs.push(Instr::Load {
                        d,
                        slot: slot as u16,
                        off,
                    });
                    return Ok(d);
                }
                if let Some(slot) = self.outputs.iter().position(|n| n == name) {
                    let d = self.alloc();
                    self.instrs.push(Instr::LoadOut {
                        d,
                        slot: slot as u16,
                        off,
                    });
                    return Ok(d);
                }
                Err(LangError {
                    line: 0,
                    message: format!("indexing unknown connector `{name}`"),
                })
            }
            ExprAst::Bin(op, a, b) => {
                let ra = self.compile_expr(a)?;
                let rb = self.compile_expr(b)?;
                let d = self.alloc();
                self.instrs.push(Instr::Bin {
                    op: *op,
                    d,
                    a: ra,
                    b: rb,
                });
                Ok(d)
            }
            ExprAst::Cmp(op, a, b) => {
                let ra = self.compile_expr(a)?;
                let rb = self.compile_expr(b)?;
                let d = self.alloc();
                self.instrs.push(Instr::Cmp {
                    op: *op,
                    d,
                    a: ra,
                    b: rb,
                });
                Ok(d)
            }
            ExprAst::Neg(a) => {
                let ra = self.compile_expr(a)?;
                let d = self.alloc();
                self.instrs.push(Instr::Neg { d, a: ra });
                Ok(d)
            }
            ExprAst::Not(a) => {
                let ra = self.compile_expr(a)?;
                let d = self.alloc();
                self.instrs.push(Instr::Not { d, a: ra });
                Ok(d)
            }
            ExprAst::And(a, b) => {
                let d = self.alloc();
                let ra = self.compile_expr(a)?;
                self.instrs.push(Instr::Mov { d, s: ra });
                let jz_at = self.instrs.len();
                self.instrs.push(Instr::JumpIfZero { c: d, target: 0 });
                let rb = self.compile_expr(b)?;
                self.instrs.push(Instr::Mov { d, s: rb });
                let end = self.here();
                self.patch(jz_at, end);
                Ok(d)
            }
            ExprAst::Or(a, b) => {
                let d = self.alloc();
                let ra = self.compile_expr(a)?;
                self.instrs.push(Instr::Mov { d, s: ra });
                let jnz_at = self.instrs.len();
                self.instrs.push(Instr::JumpIfNonZero { c: d, target: 0 });
                let rb = self.compile_expr(b)?;
                self.instrs.push(Instr::Mov { d, s: rb });
                let end = self.here();
                self.patch(jnz_at, end);
                Ok(d)
            }
            ExprAst::Call(f, args) => match f {
                Builtin::Min | Builtin::Max => {
                    // N-ary min/max folds left-to-right.
                    let mut acc = self.compile_expr(&args[0])?;
                    for arg in &args[1..] {
                        let r = self.compile_expr(arg)?;
                        let d = self.alloc();
                        self.instrs.push(if *f == Builtin::Min {
                            Instr::MinI { d, a: acc, b: r }
                        } else {
                            Instr::MaxI { d, a: acc, b: r }
                        });
                        acc = d;
                    }
                    Ok(acc)
                }
                _ => {
                    let a = self.compile_expr(&args[0])?;
                    let d = self.alloc();
                    self.instrs.push(Instr::Call1 { f: *f, d, a });
                    Ok(d)
                }
            },
            ExprAst::Ternary { cond, then, els } => {
                let d = self.alloc();
                let c = self.compile_expr(cond)?;
                let jz_at = self.instrs.len();
                self.instrs.push(Instr::JumpIfZero { c, target: 0 });
                let rt = self.compile_expr(then)?;
                self.instrs.push(Instr::Mov { d, s: rt });
                let jmp_at = self.instrs.len();
                self.instrs.push(Instr::Jump { target: 0 });
                let els_start = self.here();
                self.patch(jz_at, els_start);
                let re = self.compile_expr(els)?;
                self.instrs.push(Instr::Mov { d, s: re });
                let end = self.here();
                self.patch(jmp_at, end);
                Ok(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_simple_program() {
        let p =
            TaskletProgram::compile("c = a + b", &["a".into(), "b".into()], &["c".into()]).unwrap();
        assert!(p.n_regs >= 3);
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Store { slot: 0, .. })));
    }

    #[test]
    fn unknown_names_become_symbols() {
        let p = TaskletProgram::compile("c = q + 1", &[], &["c".into()]).unwrap();
        assert_eq!(p.symbols, vec!["q".to_string()]);
        // Deduplicated on reuse.
        let p2 = TaskletProgram::compile("c = q + q * 2", &[], &["c".into()]).unwrap();
        assert_eq!(p2.symbols.len(), 1);
    }

    #[test]
    fn rejects_assign_to_input() {
        let e = TaskletProgram::compile("a = 1", &["a".into()], &[]).unwrap_err();
        assert!(e.message.contains("input connector"));
    }

    #[test]
    fn locals_persist_temps_do_not() {
        let p = TaskletProgram::compile(
            "t = a * a\nu = t + t\nc = u * t",
            &["a".into()],
            &["c".into()],
        )
        .unwrap();
        // Should compile without unbounded register growth.
        assert!(p.n_regs < 16);
    }
}
