//! Lexer and parser for the tasklet language.
//!
//! The surface syntax is a restricted Python: statements separated by
//! newlines (or `;`), blocks by indentation. The lexer produces explicit
//! `Indent`/`Dedent` tokens from an indentation stack, exactly like
//! CPython's tokenizer.

use std::fmt;

/// Parse/compile error with a line number.
#[derive(Clone, Debug, PartialEq)]
pub struct LangError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LangError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, LangError> {
    Err(LangError {
        line,
        message: message.into(),
    })
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%` (Python modulo)
    Mod,
    /// `**`
    Pow,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Built-in functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// `abs(x)`
    Abs,
    /// `sqrt(x)`
    Sqrt,
    /// `exp(x)`
    Exp,
    /// `log(x)`
    Log,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `min(a, b, ...)`
    Min,
    /// `max(a, b, ...)`
    Max,
    /// `int(x)` — truncation toward zero
    Int,
}

impl Builtin {
    fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "abs" => Builtin::Abs,
            "sqrt" => Builtin::Sqrt,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "int" => Builtin::Int,
            _ => return None,
        })
    }
}

/// Expression AST.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprAst {
    /// Numeric literal.
    Num(f64),
    /// Variable or connector reference.
    Name(String),
    /// Indexed access `name[e0, e1, ...]`.
    Index(String, Vec<ExprAst>),
    /// Binary arithmetic.
    Bin(BinOp, Box<ExprAst>, Box<ExprAst>),
    /// Comparison (yields 1.0/0.0).
    Cmp(CmpOp, Box<ExprAst>, Box<ExprAst>),
    /// Unary negation.
    Neg(Box<ExprAst>),
    /// Boolean `and` (short-circuit).
    And(Box<ExprAst>, Box<ExprAst>),
    /// Boolean `or` (short-circuit).
    Or(Box<ExprAst>, Box<ExprAst>),
    /// Boolean `not`.
    Not(Box<ExprAst>),
    /// Built-in call.
    Call(Builtin, Vec<ExprAst>),
    /// `then if cond else els`.
    Ternary {
        /// Condition.
        cond: Box<ExprAst>,
        /// Value when true.
        then: Box<ExprAst>,
        /// Value when false.
        els: Box<ExprAst>,
    },
}

/// Statement AST.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `target[index] op= value` (plain `=` when `op` is `None`).
    Assign {
        /// Assigned variable/connector.
        target: String,
        /// Optional index expressions.
        index: Option<Vec<ExprAst>>,
        /// Augmented-assignment operator (`+=` etc.).
        op: Option<BinOp>,
        /// Right-hand side.
        value: ExprAst,
    },
    /// `stream.push(value)`.
    Push {
        /// Stream connector name.
        stream: String,
        /// Pushed value.
        value: ExprAst,
    },
    /// `if`/`elif`/`else` chain (elif desugared into nested if).
    If {
        /// Condition.
        cond: ExprAst,
        /// True branch.
        then: Vec<Stmt>,
        /// False branch (possibly empty).
        els: Vec<Stmt>,
    },
}

// --- lexer -------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Op(&'static str),
    Newline,
    Indent,
    Dedent,
    Eof,
}

struct Lexer {
    toks: Vec<(Tok, usize)>, // (token, line)
}

fn lex(src: &str) -> Result<Lexer, LangError> {
    let mut toks: Vec<(Tok, usize)> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (lineno0, raw_line) in src.lines().enumerate() {
        let line_num = lineno0 + 1;
        // Strip comments.
        let line = match raw_line.find('#') {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let indent = line.len() - line.trim_start_matches(' ').len();
        if line.as_bytes().get(indent).is_some() && line[..indent].contains('\t') {
            return err(line_num, "tabs are not allowed in indentation");
        }
        let cur = *indents.last().unwrap();
        if indent > cur {
            indents.push(indent);
            toks.push((Tok::Indent, line_num));
        } else {
            while indent < *indents.last().unwrap() {
                indents.pop();
                toks.push((Tok::Dedent, line_num));
            }
            if indent != *indents.last().unwrap() {
                return err(line_num, "inconsistent indentation");
            }
        }
        lex_line(line.trim_end(), indent, line_num, &mut toks)?;
        toks.push((Tok::Newline, line_num));
    }
    let last = src.lines().count();
    while indents.len() > 1 {
        indents.pop();
        toks.push((Tok::Dedent, last));
    }
    toks.push((Tok::Eof, last));
    Ok(Lexer { toks })
}

fn lex_line(
    line: &str,
    start: usize,
    line_num: usize,
    toks: &mut Vec<(Tok, usize)>,
) -> Result<(), LangError> {
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '0'..='9' | '.' if c != '.' || bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                let s = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_digit() {
                        i += 1;
                    } else if ch == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        i += 1;
                    } else if (ch == 'e' || ch == 'E')
                        && !seen_exp
                        && i > s
                        && bytes
                            .get(i + 1)
                            .is_some_and(|&n| n.is_ascii_digit() || n == b'+' || n == b'-')
                    {
                        seen_exp = true;
                        i += 1;
                        if bytes[i] == b'+' || bytes[i] == b'-' {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let v: f64 = line[s..i].parse().map_err(|_| LangError {
                    line: line_num,
                    message: format!("bad number `{}`", &line[s..i]),
                })?;
                toks.push((Tok::Num(v), line_num));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let s = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(line[s..i].to_string()), line_num));
            }
            _ => {
                let two = line.get(i..i + 2).unwrap_or("");
                let op2 = ["**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/="]
                    .iter()
                    .find(|&&o| o == two);
                if let Some(&o) = op2 {
                    toks.push((Tok::Op(o), line_num));
                    i += 2;
                    continue;
                }
                let one: &'static str = match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    ',' => ",",
                    ':' => ":",
                    ';' => ";",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '.' => ".",
                    _ => return err(line_num, format!("unexpected character `{c}`")),
                };
                toks.push((Tok::Op(one), line_num));
                i += 1;
            }
        }
    }
    Ok(())
}

// --- parser ------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Tok::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), LangError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            err(
                self.line(),
                format!("expected `{op}`, found {:?}", self.peek()),
            )
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(i) if i == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof | Tok::Dedent => break,
                Tok::Newline => {
                    self.bump();
                }
                _ => {
                    stmts.push(self.statement()?);
                    // `;` separates statements on one line.
                    while self.eat_op(";") {
                        if matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent) {
                            break;
                        }
                        stmts.push(self.statement()?);
                    }
                }
            }
        }
        Ok(stmts)
    }

    fn suite(&mut self) -> Result<Vec<Stmt>, LangError> {
        // `: NEWLINE INDENT block DEDENT` or `: simple_stmt`
        self.expect_op(":")?;
        if matches!(self.peek(), Tok::Newline) {
            self.bump();
            if !matches!(self.peek(), Tok::Indent) {
                return err(self.line(), "expected an indented block");
            }
            self.bump();
            let body = self.block()?;
            if matches!(self.peek(), Tok::Dedent) {
                self.bump();
            }
            Ok(body)
        } else {
            // Single inline statement.
            let mut stmts = vec![self.statement()?];
            while self.eat_op(";") {
                if matches!(self.peek(), Tok::Newline | Tok::Eof) {
                    break;
                }
                stmts.push(self.statement()?);
            }
            Ok(stmts)
        }
    }

    fn statement(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        if self.eat_keyword("if") {
            return self.if_stmt();
        }
        if self.eat_keyword("pass") {
            // Encode `pass` as an empty if-false (no dedicated node needed).
            return Ok(Stmt::If {
                cond: ExprAst::Num(0.0),
                then: Vec::new(),
                els: Vec::new(),
            });
        }
        // Assignment or push.
        let Tok::Ident(name) = self.bump() else {
            return err(line, "expected a statement");
        };
        // `stream.push(expr)`
        if self.eat_op(".") {
            let Tok::Ident(method) = self.bump() else {
                return err(line, "expected a method name after `.`");
            };
            if method != "push" {
                return err(line, format!("unknown method `{method}` (only `push`)"));
            }
            self.expect_op("(")?;
            let value = self.expr()?;
            self.expect_op(")")?;
            return Ok(Stmt::Push {
                stream: name,
                value,
            });
        }
        // Optional index.
        let index = if self.eat_op("[") {
            let mut idx = vec![self.expr()?];
            while self.eat_op(",") {
                idx.push(self.expr()?);
            }
            self.expect_op("]")?;
            Some(idx)
        } else {
            None
        };
        // Assignment operator.
        let op = if self.eat_op("=") {
            None
        } else if self.eat_op("+=") {
            Some(BinOp::Add)
        } else if self.eat_op("-=") {
            Some(BinOp::Sub)
        } else if self.eat_op("*=") {
            Some(BinOp::Mul)
        } else if self.eat_op("/=") {
            Some(BinOp::Div)
        } else {
            return err(line, "expected `=` or an augmented assignment");
        };
        let value = self.expr()?;
        Ok(Stmt::Assign {
            target: name,
            index,
            op,
            value,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let cond = self.expr()?;
        let then = self.suite()?;
        // Skip blank lines between branches.
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
        let els = if self.eat_keyword("elif") {
            vec![self.if_stmt()?]
        } else if self.eat_keyword("else") {
            self.suite()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then, els })
    }

    // Expression grammar (Python precedence):
    // ternary < or < and < not < comparison < add < mul < unary < power < atom
    fn expr(&mut self) -> Result<ExprAst, LangError> {
        let value = self.or_expr()?;
        if self.eat_keyword("if") {
            let cond = self.or_expr()?;
            if !self.eat_keyword("else") {
                return err(self.line(), "conditional expression requires `else`");
            }
            let els = self.expr()?;
            return Ok(ExprAst::Ternary {
                cond: Box::new(cond),
                then: Box::new(value),
                els: Box::new(els),
            });
        }
        Ok(value)
    }

    fn or_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            lhs = ExprAst::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.not_expr()?;
            lhs = ExprAst::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<ExprAst, LangError> {
        if self.eat_keyword("not") {
            return Ok(ExprAst::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<ExprAst, LangError> {
        let lhs = self.add_expr()?;
        let op = if self.eat_op("<") {
            CmpOp::Lt
        } else if self.eat_op("<=") {
            CmpOp::Le
        } else if self.eat_op(">") {
            CmpOp::Gt
        } else if self.eat_op(">=") {
            CmpOp::Ge
        } else if self.eat_op("==") {
            CmpOp::Eq
        } else if self.eat_op("!=") {
            CmpOp::Ne
        } else {
            return Ok(lhs);
        };
        let rhs = self.add_expr()?;
        Ok(ExprAst::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_op("+") {
                let rhs = self.mul_expr()?;
                lhs = ExprAst::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("-") {
                let rhs = self.mul_expr()?;
                lhs = ExprAst::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.unary()?;
        loop {
            if self.eat_op("*") {
                let rhs = self.unary()?;
                lhs = ExprAst::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("/") {
                let rhs = self.unary()?;
                lhs = ExprAst::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("//") {
                let rhs = self.unary()?;
                lhs = ExprAst::Bin(BinOp::FloorDiv, Box::new(lhs), Box::new(rhs));
            } else if self.eat_op("%") {
                let rhs = self.unary()?;
                lhs = ExprAst::Bin(BinOp::Mod, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self) -> Result<ExprAst, LangError> {
        if self.eat_op("-") {
            return Ok(ExprAst::Neg(Box::new(self.unary()?)));
        }
        if self.eat_op("+") {
            return self.unary();
        }
        self.power()
    }

    fn power(&mut self) -> Result<ExprAst, LangError> {
        let base = self.atom()?;
        if self.eat_op("**") {
            // Right-associative.
            let exp = self.unary()?;
            return Ok(ExprAst::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<ExprAst, LangError> {
        let line = self.line();
        match self.bump() {
            Tok::Num(v) => Ok(ExprAst::Num(v)),
            Tok::Ident(name) => {
                if name == "True" {
                    return Ok(ExprAst::Num(1.0));
                }
                if name == "False" {
                    return Ok(ExprAst::Num(0.0));
                }
                if self.eat_op("(") {
                    let Some(b) = Builtin::from_name(&name) else {
                        return err(line, format!("unknown function `{name}`"));
                    };
                    let mut args = Vec::new();
                    if !self.eat_op(")") {
                        args.push(self.expr()?);
                        while self.eat_op(",") {
                            args.push(self.expr()?);
                        }
                        self.expect_op(")")?;
                    }
                    check_arity(b, args.len(), line)?;
                    return Ok(ExprAst::Call(b, args));
                }
                if self.eat_op("[") {
                    let mut idx = vec![self.expr()?];
                    while self.eat_op(",") {
                        idx.push(self.expr()?);
                    }
                    self.expect_op("]")?;
                    return Ok(ExprAst::Index(name, idx));
                }
                Ok(ExprAst::Name(name))
            }
            Tok::Op("(") => {
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            other => err(line, format!("expected an expression, found {other:?}")),
        }
    }
}

fn check_arity(b: Builtin, n: usize, line: usize) -> Result<(), LangError> {
    let ok = match b {
        Builtin::Min | Builtin::Max => n >= 2,
        _ => n == 1,
    };
    if ok {
        Ok(())
    } else {
        err(line, format!("wrong number of arguments for {b:?}"))
    }
}

/// Parses a tasklet body into a list of statements.
pub fn parse_tasklet(src: &str) -> Result<Vec<Stmt>, LangError> {
    let lexer = lex(src)?;
    let mut p = Parser {
        toks: lexer.toks,
        pos: 0,
    };
    let body = p.block()?;
    if !matches!(p.peek(), Tok::Eof) {
        return err(p.line(), format!("unexpected token {:?}", p.peek()));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_assignment() {
        let b = parse_tasklet("c = a + b").unwrap();
        assert_eq!(b.len(), 1);
        assert!(matches!(
            &b[0],
            Stmt::Assign { target, op: None, index: None, .. } if target == "c"
        ));
    }

    #[test]
    fn parse_multi_statement_locals() {
        let src = "t = a * a\nu = t + 1\nout = u * t";
        let b = parse_tasklet(src).unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn parse_semicolons() {
        let b = parse_tasklet("x = 1; y = 2; z = x + y").unwrap();
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn parse_indexing() {
        let b = parse_tasklet("out = w[0] * a + w[1] * b").unwrap();
        assert_eq!(b.len(), 1);
        let b2 = parse_tasklet("acc[0] += x").unwrap();
        assert!(matches!(
            &b2[0],
            Stmt::Assign {
                index: Some(_),
                op: Some(BinOp::Add),
                ..
            }
        ));
    }

    #[test]
    fn parse_if_blocks() {
        let src = "if a < b:\n    out = a\nelse:\n    out = b";
        let b = parse_tasklet(src).unwrap();
        assert_eq!(b.len(), 1);
        let Stmt::If { then, els, .. } = &b[0] else {
            panic!("not an if");
        };
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
    }

    #[test]
    fn parse_elif_chain() {
        let src = "if a < 0:\n    s = -1\nelif a > 0:\n    s = 1\nelse:\n    s = 0";
        let b = parse_tasklet(src).unwrap();
        let Stmt::If { els, .. } = &b[0] else {
            panic!()
        };
        assert!(matches!(&els[0], Stmt::If { .. }));
    }

    #[test]
    fn parse_inline_if() {
        let b = parse_tasklet("if a < b: out = a; flag = 1").unwrap();
        let Stmt::If { then, .. } = &b[0] else {
            panic!()
        };
        assert_eq!(then.len(), 2);
    }

    #[test]
    fn parse_ternary() {
        let b = parse_tasklet("out = a if a > b else b").unwrap();
        let Stmt::Assign { value, .. } = &b[0] else {
            panic!()
        };
        assert!(matches!(value, ExprAst::Ternary { .. }));
    }

    #[test]
    fn parse_push() {
        let b = parse_tasklet("S.push(v + 1)").unwrap();
        assert!(matches!(&b[0], Stmt::Push { stream, .. } if stream == "S"));
    }

    #[test]
    fn parse_builtins_and_power() {
        let b = parse_tasklet("out = sqrt(x**2 + y**2) + min(a, b, c)").unwrap();
        assert_eq!(b.len(), 1);
        assert!(parse_tasklet("out = nosuchfn(x)").is_err());
        assert!(parse_tasklet("out = sqrt(x, y)").is_err());
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let src = "# compute\n\nc = a + b  # sum\n";
        assert_eq!(parse_tasklet(src).unwrap().len(), 1);
    }

    #[test]
    fn parse_numbers() {
        let b = parse_tasklet("x = 1.5e-3 + 2. + .5 + 10").unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_tasklet("a = 1\nb = ]").unwrap_err();
        assert_eq!(e.line, 2);
        let e2 = parse_tasklet("if a:\nout = 1").unwrap_err();
        assert_eq!(e2.line, 2); // missing indent
    }

    #[test]
    fn inconsistent_indentation_rejected() {
        let src = "if a:\n        x = 1\n    y = 2";
        assert!(parse_tasklet(src).is_err());
    }
}
