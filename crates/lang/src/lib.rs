//! # sdfg-lang — the tasklet language
//!
//! Tasklets are "stateless, arbitrary computational functions of any
//! granularity" whose code "remains immutable" through transformations
//! (paper §3.2). DaCe implements them in Python and converts them to C++;
//! this crate is the Rust analogue: a small Python-like language that is
//!
//! 1. parsed once into an AST ([`ast`]),
//! 2. compiled to a compact register bytecode ([`compile`]), and
//! 3. executed by a reusable virtual machine ([`vm`]) — by the reference
//!    interpreter, the optimizing executor, and the accelerator simulators.
//!
//! The language covers the tasklet bodies that appear in the paper and its
//! workloads: arithmetic (`+ - * / // % **`), comparisons and boolean
//! operators, conditional expressions (`a if c else b`), `if`/`elif`/`else`
//! statements with indentation, local variables, augmented assignment,
//! indexing into array-shaped connectors (`w[0]`, `A[i]`), math builtins
//! (`abs`, `sqrt`, `exp`, `log`, `sin`, `cos`, `floor`, `ceil`, `min`,
//! `max`), and `S.push(x)` on stream output connectors.
//!
//! All values are IEEE `f64`; integers are represented exactly up to 2^53
//! (documented restriction — the workloads' index arithmetic fits easily).
//!
//! ```
//! use sdfg_lang::TaskletProgram;
//!
//! let prog = TaskletProgram::compile(
//!     "c = a * 2 + b", &["a".into(), "b".into()], &["c".into()]).unwrap();
//! let mut vm = sdfg_lang::TaskletVm::new();
//! let mut out = [0.0];
//! vm.run_simple(&prog, &[&[3.0], &[4.0]], &mut [&mut out]).unwrap();
//! assert_eq!(out[0], 10.0);
//! ```

pub mod ast;
pub mod compile;
pub mod recognize;
pub mod vm;

pub use ast::{parse_tasklet, LangError, Stmt};
pub use compile::TaskletProgram;
pub use recognize::{recognize, BinOpKind, Pattern};
pub use vm::{OutPort, RuntimeError, TaskletVm};
