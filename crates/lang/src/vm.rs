//! The tasklet virtual machine.
//!
//! A [`TaskletVm`] owns a register file that is reused across executions —
//! the executor keeps one VM per worker thread and runs the same compiled
//! program for every map point.

use crate::ast::{BinOp, Builtin, CmpOp};
use crate::compile::{Instr, Offset, TaskletProgram};
use std::fmt;

/// Output connector port: a memory window, a stream to push into, or a
/// write log.
pub enum OutPort<'a> {
    /// A (readable and writable) memory window.
    Mem(&'a mut [f64]),
    /// A stream: `push` appends.
    Stream(&'a mut Vec<f64>),
    /// Write log: stores append `(offset, value)` instead of writing — used
    /// by the executor for sparse write-conflict-resolved outputs (e.g.
    /// histogram bins), where only touched elements should be combined.
    /// Reads (`LoadOut`) are not allowed on log ports.
    Log(&'a mut Vec<(u32, f64)>),
}

/// Runtime failure during tasklet execution.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// Connector accessed out of bounds.
    OutOfBounds {
        /// Connector name.
        conn: String,
        /// Offending flat index.
        index: i64,
        /// Window length.
        len: usize,
    },
    /// `push` on a memory port, or indexed store on a stream port.
    PortKindMismatch {
        /// Connector name.
        conn: String,
    },
    /// Division/modulo by zero in integer-style ops.
    DivisionByZero,
    /// The program references SDFG symbols but none were supplied.
    MissingSymbols {
        /// First missing symbol name.
        name: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfBounds { conn, index, len } => {
                write!(
                    f,
                    "connector `{conn}`: index {index} out of bounds (len {len})"
                )
            }
            RuntimeError::PortKindMismatch { conn } => {
                write!(f, "connector `{conn}`: operation does not match port kind")
            }
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::MissingSymbols { name } => {
                write!(f, "symbol `{name}` required but not supplied")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Reusable tasklet executor.
#[derive(Default)]
pub struct TaskletVm {
    regs: Vec<f64>,
}

impl TaskletVm {
    /// Creates a VM with an empty register file.
    pub fn new() -> TaskletVm {
        TaskletVm { regs: Vec::new() }
    }

    /// Runs a program. `ins[i]` is the window for input connector slot `i`;
    /// `outs[i]` the port for output slot `i`.
    pub fn run(
        &mut self,
        prog: &TaskletProgram,
        ins: &[&[f64]],
        outs: &mut [OutPort<'_>],
    ) -> Result<(), RuntimeError> {
        if let Some(name) = prog.symbols.first() {
            return Err(RuntimeError::MissingSymbols { name: name.clone() });
        }
        self.run_with_syms(prog, ins, outs, &[])
    }

    /// Runs a program with SDFG symbol values (`syms[i]` corresponds to
    /// `prog.symbols[i]`).
    pub fn run_with_syms(
        &mut self,
        prog: &TaskletProgram,
        ins: &[&[f64]],
        outs: &mut [OutPort<'_>],
        syms: &[f64],
    ) -> Result<(), RuntimeError> {
        debug_assert_eq!(ins.len(), prog.inputs.len(), "input arity mismatch");
        debug_assert_eq!(outs.len(), prog.outputs.len(), "output arity mismatch");
        if self.regs.len() < prog.n_regs as usize {
            self.regs.resize(prog.n_regs as usize, 0.0);
        }
        let regs = &mut self.regs[..];
        let mut pc = 0usize;
        let code = &prog.instrs[..];
        while pc < code.len() {
            match code[pc] {
                Instr::Const { d, v } => regs[d as usize] = v,
                Instr::Mov { d, s } => regs[d as usize] = regs[s as usize],
                Instr::Bin { op, d, a, b } => {
                    let (x, y) = (regs[a as usize], regs[b as usize]);
                    regs[d as usize] = apply_bin(op, x, y);
                }
                Instr::Cmp { op, d, a, b } => {
                    let (x, y) = (regs[a as usize], regs[b as usize]);
                    let t = match op {
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                    };
                    regs[d as usize] = if t { 1.0 } else { 0.0 };
                }
                Instr::MinI { d, a, b } => {
                    regs[d as usize] = regs[a as usize].min(regs[b as usize])
                }
                Instr::MaxI { d, a, b } => {
                    regs[d as usize] = regs[a as usize].max(regs[b as usize])
                }
                Instr::Neg { d, a } => regs[d as usize] = -regs[a as usize],
                Instr::Not { d, a } => {
                    regs[d as usize] = if regs[a as usize] == 0.0 { 1.0 } else { 0.0 }
                }
                Instr::Call1 { f, d, a } => {
                    let x = regs[a as usize];
                    regs[d as usize] = match f {
                        Builtin::Abs => x.abs(),
                        Builtin::Sqrt => x.sqrt(),
                        Builtin::Exp => x.exp(),
                        Builtin::Log => x.ln(),
                        Builtin::Sin => x.sin(),
                        Builtin::Cos => x.cos(),
                        Builtin::Floor => x.floor(),
                        Builtin::Ceil => x.ceil(),
                        Builtin::Int => x.trunc(),
                        Builtin::Min | Builtin::Max => unreachable!("lowered to MinI/MaxI"),
                    };
                }
                Instr::LoadSym { d, slot } => {
                    regs[d as usize] = syms.get(slot as usize).copied().unwrap_or(0.0);
                }
                Instr::Load { d, slot, off } => {
                    let window = ins[slot as usize];
                    let idx = resolve(off, regs);
                    if idx < 0 || idx as usize >= window.len() {
                        return Err(RuntimeError::OutOfBounds {
                            conn: prog.inputs[slot as usize].clone(),
                            index: idx,
                            len: window.len(),
                        });
                    }
                    regs[d as usize] = window[idx as usize];
                }
                Instr::LoadOut { d, slot, off } => {
                    let idx = resolve(off, regs);
                    match &outs[slot as usize] {
                        OutPort::Mem(w) => {
                            if idx < 0 || idx as usize >= w.len() {
                                return Err(RuntimeError::OutOfBounds {
                                    conn: prog.outputs[slot as usize].clone(),
                                    index: idx,
                                    len: w.len(),
                                });
                            }
                            regs[d as usize] = w[idx as usize];
                        }
                        OutPort::Stream(_) | OutPort::Log(_) => {
                            return Err(RuntimeError::PortKindMismatch {
                                conn: prog.outputs[slot as usize].clone(),
                            })
                        }
                    }
                }
                Instr::Store { slot, off, s } => {
                    let idx = resolve(off, regs);
                    let v = regs[s as usize];
                    match &mut outs[slot as usize] {
                        OutPort::Mem(w) => {
                            if idx < 0 || idx as usize >= w.len() {
                                return Err(RuntimeError::OutOfBounds {
                                    conn: prog.outputs[slot as usize].clone(),
                                    index: idx,
                                    len: w.len(),
                                });
                            }
                            w[idx as usize] = v;
                        }
                        OutPort::Log(log) => {
                            if idx < 0 || idx > u32::MAX as i64 {
                                return Err(RuntimeError::OutOfBounds {
                                    conn: prog.outputs[slot as usize].clone(),
                                    index: idx,
                                    len: u32::MAX as usize,
                                });
                            }
                            log.push((idx as u32, v));
                        }
                        OutPort::Stream(_) => {
                            return Err(RuntimeError::PortKindMismatch {
                                conn: prog.outputs[slot as usize].clone(),
                            })
                        }
                    }
                }
                Instr::Push { slot, s } => {
                    let v = regs[s as usize];
                    match &mut outs[slot as usize] {
                        OutPort::Stream(q) => q.push(v),
                        OutPort::Mem(_) | OutPort::Log(_) => {
                            return Err(RuntimeError::PortKindMismatch {
                                conn: prog.outputs[slot as usize].clone(),
                            })
                        }
                    }
                }
                Instr::JumpIfZero { c, target } => {
                    if regs[c as usize] == 0.0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Instr::JumpIfNonZero { c, target } => {
                    if regs[c as usize] != 0.0 {
                        pc = target as usize;
                        continue;
                    }
                }
                Instr::Jump { target } => {
                    pc = target as usize;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(())
    }

    /// Convenience wrapper: all outputs are memory windows.
    pub fn run_simple(
        &mut self,
        prog: &TaskletProgram,
        ins: &[&[f64]],
        outs: &mut [&mut [f64]],
    ) -> Result<(), RuntimeError> {
        let mut ports: Vec<OutPort> = outs.iter_mut().map(|w| OutPort::Mem(w)).collect();
        self.run(prog, ins, &mut ports)
    }
}

#[inline]
fn resolve(off: Offset, regs: &[f64]) -> i64 {
    match off {
        Offset::Const(c) => c as i64,
        Offset::Reg(r) => regs[r as usize] as i64,
    }
}

/// Python-style arithmetic semantics on f64.
#[inline]
pub fn apply_bin(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::FloorDiv => (x / y).floor(),
        BinOp::Mod => x - (x / y).floor() * y,
        BinOp::Pow => x.powf(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::TaskletProgram;

    fn run1(code: &str, ins: &[(&str, &[f64])], out: &str) -> f64 {
        let in_names: Vec<String> = ins.iter().map(|(n, _)| n.to_string()).collect();
        let prog = TaskletProgram::compile(code, &in_names, &[out.to_string()]).unwrap();
        let windows: Vec<&[f64]> = ins.iter().map(|(_, w)| *w).collect();
        let mut vm = TaskletVm::new();
        let mut o = [0.0f64];
        vm.run_simple(&prog, &windows, &mut [&mut o]).unwrap();
        o[0]
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run1("c = a + b", &[("a", &[2.0]), ("b", &[3.0])], "c"), 5.0);
        assert_eq!(run1("c = a ** 2 + 1", &[("a", &[3.0])], "c"), 10.0);
        assert_eq!(run1("c = 7 // 2", &[], "c"), 3.0);
        assert_eq!(run1("c = -7 // 2", &[], "c"), -4.0);
        assert_eq!(run1("c = -7 % 2", &[], "c"), 1.0);
        assert_eq!(run1("c = 7 / 2", &[], "c"), 3.5);
    }

    #[test]
    fn locals_and_multiple_statements() {
        let v = run1("t = a * a\nu = t + t\nc = u - 1", &[("a", &[3.0])], "c");
        assert_eq!(v, 17.0);
    }

    #[test]
    fn stencil_weights() {
        // The Fig. 2 Laplace tasklet shape: window dot constant weights.
        let v = run1(
            "c = w[0] - 2 * w[1] + w[2]",
            &[("w", &[1.0, 2.0, 4.0])],
            "c",
        );
        assert_eq!(v, 1.0);
    }

    #[test]
    fn dynamic_indexing() {
        let v = run1(
            "c = x[int(i)]",
            &[("x", &[10.0, 20.0, 30.0]), ("i", &[2.0])],
            "c",
        );
        assert_eq!(v, 30.0);
    }

    #[test]
    fn branches() {
        let code = "if a < b:\n    c = a\nelse:\n    c = b";
        assert_eq!(run1(code, &[("a", &[1.0]), ("b", &[5.0])], "c"), 1.0);
        assert_eq!(run1(code, &[("a", &[9.0]), ("b", &[5.0])], "c"), 5.0);
    }

    #[test]
    fn ternary_and_booleans() {
        assert_eq!(
            run1(
                "c = 1 if a > 0 and b > 0 else 0",
                &[("a", &[1.0]), ("b", &[0.0])],
                "c"
            ),
            0.0
        );
        assert_eq!(
            run1(
                "c = 1 if a > 0 or b > 0 else 0",
                &[("a", &[1.0]), ("b", &[0.0])],
                "c"
            ),
            1.0
        );
        assert_eq!(run1("c = not a", &[("a", &[0.0])], "c"), 1.0);
    }

    #[test]
    fn short_circuit_avoids_division_by_zero_semantics() {
        // b != 0 and a / b > 1 — with b = 0 the division is skipped.
        let v = run1(
            "c = 1 if b != 0 and a / b > 1 else 0",
            &[("a", &[4.0]), ("b", &[0.0])],
            "c",
        );
        assert_eq!(v, 0.0);
    }

    #[test]
    fn builtins() {
        assert_eq!(run1("c = sqrt(abs(a))", &[("a", &[-16.0])], "c"), 4.0);
        assert_eq!(
            run1("c = max(a, b, 0)", &[("a", &[-3.0]), ("b", &[-5.0])], "c"),
            0.0
        );
        assert_eq!(run1("c = min(a, 2)", &[("a", &[7.0])], "c"), 2.0);
        assert_eq!(run1("c = floor(2.7) + ceil(2.2)", &[], "c"), 5.0);
    }

    #[test]
    fn augmented_assignment_to_output() {
        let prog = TaskletProgram::compile("c += a", &["a".into()], &["c".into()]).unwrap();
        let mut vm = TaskletVm::new();
        let mut o = [10.0f64];
        vm.run_simple(&prog, &[&[5.0]], &mut [&mut o]).unwrap();
        assert_eq!(o[0], 15.0);
    }

    #[test]
    fn stream_push_and_conditional_push() {
        // The Fibonacci consume tasklet shape (Fig. 8).
        let code = "if v < 2:\n    out.push(v)\nelse:\n    S.push(v - 1)\n    S.push(v - 2)";
        let prog =
            TaskletProgram::compile(code, &["v".into()], &["out".into(), "S".into()]).unwrap();
        let mut vm = TaskletVm::new();
        let mut out_q = Vec::new();
        let mut s_q = Vec::new();
        {
            let mut ports = [OutPort::Stream(&mut out_q), OutPort::Stream(&mut s_q)];
            vm.run(&prog, &[&[5.0]], &mut ports).unwrap();
        }
        assert!(out_q.is_empty());
        assert_eq!(s_q, vec![4.0, 3.0]);
        {
            let mut ports = [OutPort::Stream(&mut out_q), OutPort::Stream(&mut s_q)];
            vm.run(&prog, &[&[1.0]], &mut ports).unwrap();
        }
        assert_eq!(out_q, vec![1.0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let prog = TaskletProgram::compile("c = x[5]", &["x".into()], &["c".into()]).unwrap();
        let mut vm = TaskletVm::new();
        let mut o = [0.0f64];
        let e = vm
            .run_simple(&prog, &[&[1.0, 2.0]], &mut [&mut o])
            .unwrap_err();
        assert!(matches!(
            e,
            RuntimeError::OutOfBounds {
                index: 5,
                len: 2,
                ..
            }
        ));
    }

    #[test]
    fn push_to_mem_port_rejected() {
        let prog = TaskletProgram::compile("c.push(1)", &[], &["c".into()]).unwrap();
        let mut vm = TaskletVm::new();
        let mut o = [0.0f64];
        let e = vm.run_simple(&prog, &[], &mut [&mut o]).unwrap_err();
        assert!(matches!(e, RuntimeError::PortKindMismatch { .. }));
    }

    #[test]
    fn vm_register_file_reused() {
        let prog = TaskletProgram::compile("c = a * 2", &["a".into()], &["c".into()]).unwrap();
        let mut vm = TaskletVm::new();
        for i in 0..100 {
            let mut o = [0.0f64];
            vm.run_simple(&prog, &[&[i as f64]], &mut [&mut o]).unwrap();
            assert_eq!(o[0], 2.0 * i as f64);
        }
    }
}
