//! Tasklet pattern recognition.
//!
//! The paper's pipeline reaches native performance because the generated
//! C++ is vectorized by the platform compiler. The Rust analogue: after the
//! `Vectorization` transformation, the executor asks this module whether a
//! tasklet body is one of a handful of canonical element-wise forms and, if
//! so, dispatches a native (LLVM-autovectorized) micro-kernel instead of
//! interpreting bytecode per element.

use crate::ast::{BinOp, ExprAst, Stmt};

/// Binary operation kinds with native kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOpKind {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
}

/// One operand of a recognized pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// Input connector by slot.
    Input(usize),
    /// Literal constant.
    Const(f64),
}

/// A recognized canonical tasklet form. `out` is always output slot 0 and
/// unindexed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pattern {
    /// `out = a`
    Copy {
        /// Source input slot.
        input: usize,
    },
    /// `out = a <op> b`
    BinOp {
        /// Operation.
        op: BinOpKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `out = a * b + c` (fused multiply-add shape; also matches
    /// `c + a * b`).
    Fma {
        /// Multiplicand input slot.
        a: usize,
        /// Multiplier input slot.
        b: usize,
        /// Addend input slot.
        c: usize,
    },
    /// `out = mul * a + add` — affine scale/shift of one input (matches
    /// all commutations).
    Axpb {
        /// Input slot.
        input: usize,
        /// Multiplier.
        mul: f64,
        /// Addend.
        add: f64,
    },
}

/// A product chain `out = scale · Π in[slots[i]]` — the shape of tensor
/// contraction tasklets (e.g. the paper's Σ≷ kernel multiplies four
/// operands). Variable arity, so recognized separately.
#[derive(Clone, Debug, PartialEq)]
pub struct MulChain {
    /// Input slots, in multiplication order.
    pub slots: Vec<usize>,
    /// Constant scale factor.
    pub scale: f64,
}

/// Attempts to match a single-assignment tasklet as a scaled product of
/// three or more inputs (one/two-input products are covered by
/// [`Pattern`]).
pub fn recognize_mulchain(
    body: &[Stmt],
    inputs: &[String],
    outputs: &[String],
) -> Option<MulChain> {
    if body.len() != 1 || outputs.len() != 1 {
        return None;
    }
    let Stmt::Assign {
        target,
        index: None,
        op: None,
        value,
    } = &body[0]
    else {
        return None;
    };
    if target != &outputs[0] {
        return None;
    }
    let mut slots = Vec::new();
    let mut scale = 1.0f64;
    if !collect_product(value, inputs, &mut slots, &mut scale) {
        return None;
    }
    if slots.len() < 3 {
        return None;
    }
    Some(MulChain { slots, scale })
}

fn collect_product(
    e: &ExprAst,
    inputs: &[String],
    slots: &mut Vec<usize>,
    scale: &mut f64,
) -> bool {
    match e {
        ExprAst::Num(v) => {
            *scale *= v;
            true
        }
        ExprAst::Name(n) => match inputs.iter().position(|i| i == n) {
            Some(slot) => {
                slots.push(slot);
                true
            }
            None => false,
        },
        ExprAst::Neg(inner) => {
            *scale = -*scale;
            collect_product(inner, inputs, slots, scale)
        }
        ExprAst::Bin(BinOp::Mul, a, b) => {
            collect_product(a, inputs, slots, scale) && collect_product(b, inputs, slots, scale)
        }
        _ => false,
    }
}

/// A linear combination `out = bias + Σ coeffs[i].1 · in[coeffs[i].0]` —
/// the shape of stencil tasklets. Not part of [`Pattern`] (variable arity);
/// recognized separately by [`recognize_lincomb`].
#[derive(Clone, Debug, PartialEq)]
pub struct LinComb {
    /// `(input slot, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Constant bias.
    pub bias: f64,
}

/// Attempts to match a single-assignment tasklet as a linear combination of
/// its inputs (e.g. `o = 0.2 * (c + w + e + n + s)`).
pub fn recognize_lincomb(body: &[Stmt], inputs: &[String], outputs: &[String]) -> Option<LinComb> {
    if body.len() != 1 || outputs.len() != 1 {
        return None;
    }
    let Stmt::Assign {
        target,
        index: None,
        op: None,
        value,
    } = &body[0]
    else {
        return None;
    };
    if target != &outputs[0] {
        return None;
    }
    let mut terms: Vec<(usize, f64)> = Vec::new();
    let mut bias = 0.0f64;
    if !collect_linear(value, 1.0, inputs, &mut terms, &mut bias) {
        return None;
    }
    if terms.is_empty() {
        return None;
    }
    // Merge duplicate slots.
    terms.sort_by_key(|(s, _)| *s);
    let mut merged: Vec<(usize, f64)> = Vec::new();
    for (s, c) in terms {
        match merged.last_mut() {
            Some((ls, lc)) if *ls == s => *lc += c,
            _ => merged.push((s, c)),
        }
    }
    Some(LinComb {
        terms: merged,
        bias,
    })
}

/// Recursively folds `factor * e` into terms/bias; returns false when the
/// expression is not linear in the inputs.
fn collect_linear(
    e: &ExprAst,
    factor: f64,
    inputs: &[String],
    terms: &mut Vec<(usize, f64)>,
    bias: &mut f64,
) -> bool {
    match e {
        ExprAst::Num(v) => {
            *bias += factor * v;
            true
        }
        ExprAst::Name(n) => match inputs.iter().position(|i| i == n) {
            Some(slot) => {
                terms.push((slot, factor));
                true
            }
            None => false,
        },
        ExprAst::Neg(inner) => collect_linear(inner, -factor, inputs, terms, bias),
        ExprAst::Bin(BinOp::Add, a, b) => {
            collect_linear(a, factor, inputs, terms, bias)
                && collect_linear(b, factor, inputs, terms, bias)
        }
        ExprAst::Bin(BinOp::Sub, a, b) => {
            collect_linear(a, factor, inputs, terms, bias)
                && collect_linear(b, -factor, inputs, terms, bias)
        }
        ExprAst::Bin(BinOp::Mul, a, b) => {
            // One side must be a pure constant.
            if let Some(c) = const_of(a) {
                collect_linear(b, factor * c, inputs, terms, bias)
            } else if let Some(c) = const_of(b) {
                collect_linear(a, factor * c, inputs, terms, bias)
            } else {
                false
            }
        }
        ExprAst::Bin(BinOp::Div, a, b) => match const_of(b) {
            Some(c) if c != 0.0 => collect_linear(a, factor / c, inputs, terms, bias),
            _ => false,
        },
        _ => false,
    }
}

fn const_of(e: &ExprAst) -> Option<f64> {
    match e {
        ExprAst::Num(v) => Some(*v),
        ExprAst::Neg(inner) => const_of(inner).map(|v| -v),
        _ => None,
    }
}

/// Attempts to recognize the body of a compiled tasklet.
///
/// Requirements: exactly one statement, a plain (unindexed, non-augmented)
/// assignment to the sole output connector, with operands that are plain
/// (unindexed) input connector reads or constants.
pub fn recognize(body: &[Stmt], inputs: &[String], outputs: &[String]) -> Option<Pattern> {
    if body.len() != 1 || outputs.len() != 1 {
        return None;
    }
    let Stmt::Assign {
        target,
        index: None,
        op: None,
        value,
    } = &body[0]
    else {
        return None;
    };
    if target != &outputs[0] {
        return None;
    }
    let operand = |e: &ExprAst| -> Option<Operand> {
        match e {
            ExprAst::Num(v) => Some(Operand::Const(*v)),
            ExprAst::Name(n) => inputs.iter().position(|i| i == n).map(Operand::Input),
            ExprAst::Neg(inner) => match &**inner {
                ExprAst::Num(v) => Some(Operand::Const(-v)),
                _ => None,
            },
            _ => None,
        }
    };
    let input_slot = |e: &ExprAst| -> Option<usize> {
        match operand(e) {
            Some(Operand::Input(i)) => Some(i),
            _ => None,
        }
    };
    match value {
        // out = a
        e if input_slot(e).is_some() => Some(Pattern::Copy {
            input: input_slot(e).unwrap(),
        }),
        // out = a op b  /  fma shapes
        ExprAst::Bin(op, l, r) => {
            let kind = match op {
                BinOp::Add => BinOpKind::Add,
                BinOp::Sub => BinOpKind::Sub,
                BinOp::Mul => BinOpKind::Mul,
                BinOp::Div => BinOpKind::Div,
                _ => return None,
            };
            // FMA: out = x*y + z  or  out = z + x*y
            if kind == BinOpKind::Add {
                if let ExprAst::Bin(BinOp::Mul, x, y) = &**l {
                    if let (Some(a), Some(b), Some(c)) =
                        (input_slot(x), input_slot(y), input_slot(r))
                    {
                        return Some(Pattern::Fma { a, b, c });
                    }
                }
                if let ExprAst::Bin(BinOp::Mul, x, y) = &**r {
                    if let (Some(a), Some(b), Some(c)) =
                        (input_slot(x), input_slot(y), input_slot(l))
                    {
                        return Some(Pattern::Fma { a, b, c });
                    }
                }
            }
            // Axpb: out = c1*x + c2 (and commutations, and c2 - c1*x-free
            // subtract shapes via constant folding below).
            if kind == BinOpKind::Add || kind == BinOpKind::Sub {
                let sign = if kind == BinOpKind::Sub { -1.0 } else { 1.0 };
                let scaled = |e: &ExprAst| -> Option<(usize, f64)> {
                    match e {
                        ExprAst::Bin(BinOp::Mul, x, y) => match (operand(x), operand(y)) {
                            (Some(Operand::Input(i)), Some(Operand::Const(c)))
                            | (Some(Operand::Const(c)), Some(Operand::Input(i))) => Some((i, c)),
                            _ => None,
                        },
                        _ => input_slot(e).map(|i| (i, 1.0)),
                    }
                };
                if let (Some((i, c1)), Some(Operand::Const(c2))) = (scaled(l), operand(r)) {
                    return Some(Pattern::Axpb {
                        input: i,
                        mul: c1,
                        add: sign * c2,
                    });
                }
                if kind == BinOpKind::Add {
                    if let (Some(Operand::Const(c2)), Some((i, c1))) = (operand(l), scaled(r)) {
                        return Some(Pattern::Axpb {
                            input: i,
                            mul: c1,
                            add: c2,
                        });
                    }
                }
            }
            let a = operand(l)?;
            let b = operand(r)?;
            // At least one side must be an input; const-const would be a
            // degenerate tasklet.
            if matches!((a, b), (Operand::Const(_), Operand::Const(_))) {
                return None;
            }
            Some(Pattern::BinOp { op: kind, a, b })
        }
        ExprAst::Call(crate::ast::Builtin::Min, args) if args.len() == 2 => {
            let a = operand(&args[0])?;
            let b = operand(&args[1])?;
            Some(Pattern::BinOp {
                op: BinOpKind::Min,
                a,
                b,
            })
        }
        ExprAst::Call(crate::ast::Builtin::Max, args) if args.len() == 2 => {
            let a = operand(&args[0])?;
            let b = operand(&args[1])?;
            Some(Pattern::BinOp {
                op: BinOpKind::Max,
                a,
                b,
            })
        }
        _ => None,
    }
}

/// Applies a recognized binary op to scalars (used by native kernels).
#[inline]
pub fn apply_binop_kind(op: BinOpKind, x: f64, y: f64) -> f64 {
    match op {
        BinOpKind::Add => x + y,
        BinOpKind::Sub => x - y,
        BinOpKind::Mul => x * y,
        BinOpKind::Div => x / y,
        BinOpKind::Min => x.min(y),
        BinOpKind::Max => x.max(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_tasklet;

    fn rec(code: &str, ins: &[&str], outs: &[&str]) -> Option<Pattern> {
        let body = parse_tasklet(code).unwrap();
        let ins: Vec<String> = ins.iter().map(|s| s.to_string()).collect();
        let outs: Vec<String> = outs.iter().map(|s| s.to_string()).collect();
        recognize(&body, &ins, &outs)
    }

    #[test]
    fn recognizes_copy() {
        assert_eq!(
            rec("o = a", &["a"], &["o"]),
            Some(Pattern::Copy { input: 0 })
        );
    }

    #[test]
    fn recognizes_binops() {
        assert_eq!(
            rec("o = a + b", &["a", "b"], &["o"]),
            Some(Pattern::BinOp {
                op: BinOpKind::Add,
                a: Operand::Input(0),
                b: Operand::Input(1)
            })
        );
        assert_eq!(
            rec("o = a * 2", &["a"], &["o"]),
            Some(Pattern::BinOp {
                op: BinOpKind::Mul,
                a: Operand::Input(0),
                b: Operand::Const(2.0)
            })
        );
        assert_eq!(
            rec("o = min(a, b)", &["a", "b"], &["o"]),
            Some(Pattern::BinOp {
                op: BinOpKind::Min,
                a: Operand::Input(0),
                b: Operand::Input(1)
            })
        );
    }

    #[test]
    fn recognizes_fma_both_orders() {
        assert_eq!(
            rec("o = a * b + c", &["a", "b", "c"], &["o"]),
            Some(Pattern::Fma { a: 0, b: 1, c: 2 })
        );
        assert_eq!(
            rec("o = c + a * b", &["a", "b", "c"], &["o"]),
            Some(Pattern::Fma { a: 0, b: 1, c: 2 })
        );
    }

    #[test]
    fn recognizes_axpb() {
        assert_eq!(
            rec("o = a * 2 + 1", &["a"], &["o"]),
            Some(Pattern::Axpb {
                input: 0,
                mul: 2.0,
                add: 1.0
            })
        );
        assert_eq!(
            rec("o = 1 + 2 * a", &["a"], &["o"]),
            Some(Pattern::Axpb {
                input: 0,
                mul: 2.0,
                add: 1.0
            })
        );
        assert_eq!(
            rec("o = a - 3", &["a"], &["o"]),
            Some(Pattern::Axpb {
                input: 0,
                mul: 1.0,
                add: -3.0
            })
        );
    }

    #[test]
    fn recognizes_lincomb_stencil() {
        let body = parse_tasklet("o = 0.2 * (c + w + e + nn + s)").unwrap();
        let ins: Vec<String> = ["c", "w", "e", "nn", "s"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let lc = recognize_lincomb(&body, &ins, &["o".to_string()]).unwrap();
        assert_eq!(lc.terms.len(), 5);
        assert!(lc.terms.iter().all(|&(_, c)| (c - 0.2).abs() < 1e-12));
        assert_eq!(lc.bias, 0.0);
        // l - 2*c + r
        let body2 = parse_tasklet("o = l - 2 * c + r").unwrap();
        let ins2: Vec<String> = ["l", "c", "r"].iter().map(|s| s.to_string()).collect();
        let lc2 = recognize_lincomb(&body2, &ins2, &["o".to_string()]).unwrap();
        assert_eq!(lc2.terms, vec![(0, 1.0), (1, -2.0), (2, 1.0)]);
        // Division by a constant is linear; by an input is not.
        let b3 = parse_tasklet("o = (a + b) / 9").unwrap();
        let ins3: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        assert!(recognize_lincomb(&b3, &ins3, &["o".to_string()]).is_some());
        let b4 = parse_tasklet("o = a / b").unwrap();
        assert!(recognize_lincomb(&b4, &ins3, &["o".to_string()]).is_none());
        // Products of inputs are not linear.
        let b5 = parse_tasklet("o = a * b").unwrap();
        assert!(recognize_lincomb(&b5, &ins3, &["o".to_string()]).is_none());
    }

    #[test]
    fn recognizes_mulchain() {
        let ins: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let body = parse_tasklet("o = a * b * c * d").unwrap();
        let mc = recognize_mulchain(&body, &ins, &["o".to_string()]).unwrap();
        assert_eq!(mc.slots, vec![0, 1, 2, 3]);
        assert_eq!(mc.scale, 1.0);
        let body2 = parse_tasklet("o = 2 * a * -b * c").unwrap();
        let mc2 = recognize_mulchain(&body2, &ins, &["o".to_string()]).unwrap();
        assert_eq!(mc2.slots, vec![0, 1, 2]);
        assert_eq!(mc2.scale, -2.0);
        // Two-input products are Pattern::BinOp territory.
        let body3 = parse_tasklet("o = a * b").unwrap();
        assert!(recognize_mulchain(&body3, &ins, &["o".to_string()]).is_none());
        // Sums disqualify.
        let body4 = parse_tasklet("o = a * b * (c + d)").unwrap();
        assert!(recognize_mulchain(&body4, &ins, &["o".to_string()]).is_none());
    }

    #[test]
    fn rejects_complex_bodies() {
        assert_eq!(rec("t = a + b\no = t * 2", &["a", "b"], &["o"]), None);
        assert_eq!(rec("o = w[0] + w[1]", &["w"], &["o"]), None);
        assert_eq!(rec("o = sqrt(a)", &["a"], &["o"]), None);
        assert_eq!(rec("o = 1 + 2", &[], &["o"]), None);
        assert_eq!(rec("if a > 0: o = a", &["a"], &["o"]), None);
    }
}
