//! Property: every transformation in the registry preserves program
//! semantics.
//!
//! Random restricted-Python programs are generated, a golden output is
//! computed with the reference interpreter on the untransformed SDFG, and
//! then each transformation that matches (first match, default parameters)
//! is applied to a fresh clone. The transformed SDFG must still validate
//! and must produce the golden output on **both** engines. A second
//! property applies random transformation *sequences*, since rewrites must
//! compose (that is how the Fig. 15 chain uses them).
//!
//! Inputs are integer-valued f64 and the expression grammar excludes
//! division, so results are exact and comparisons can be strict.

use proptest::prelude::*;
use sdfg_core::{validate, Sdfg};
use sdfg_exec::Executor;
use sdfg_frontend::parse_program;
use sdfg_interp::Interpreter;
use sdfg_transforms::{apply_first, apply_strict, registry, Params};

// --- random programs -------------------------------------------------------

/// Random arithmetic expression over the given terminals (no division, so
/// integer-valued inputs stay exact).
fn expr(terminals: &'static [&'static str]) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        proptest::sample::select(terminals).prop_map(|t| t.to_string()),
        (-3i64..=3).prop_map(|c| format!("{c}")),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (
            inner.clone(),
            proptest::sample::select(&["+", "-", "*"][..]),
            inner,
        )
            .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
    })
}

/// A generated program: frontend source, containers to mark transient, the
/// output array to compare, and its length as a function of N.
#[derive(Debug, Clone)]
struct Program {
    src: String,
    transients: Vec<&'static str>,
    check: &'static str,
    check_len: fn(usize) -> usize,
}

fn one_d(n: usize) -> usize {
    n
}
fn two_d(n: usize) -> usize {
    n * n
}
fn scalar(_: usize) -> usize {
    1
}

/// One elementwise 1-D map.
fn p_map1d() -> impl Strategy<Value = Program> {
    expr(&["A[i]", "B[i]"]).prop_map(|e| Program {
        src: format!(
            "def p(A: dace.float64[N], B: dace.float64[N], C: dace.float64[N]):\n\
             \x20   for i in dace.map[0:N]:\n\
             \x20       C[i] = {e}\n"
        ),
        transients: vec![],
        check: "C",
        check_len: one_d,
    })
}

/// Two maps chained through a transient — gives MapFusion, RedundantArray,
/// and StateFusion something to match.
fn p_chain() -> impl Strategy<Value = Program> {
    (expr(&["A[i]", "B[i]"]), expr(&["D[i]", "A[i]"])).prop_map(|(e1, e2)| Program {
        src: format!(
            "def p(A: dace.float64[N], B: dace.float64[N], C: dace.float64[N],\n\
             \x20     D: dace.float64[N]):\n\
             \x20   for i in dace.map[0:N]:\n\
             \x20       D[i] = {e1}\n\
             \x20   for i in dace.map[0:N]:\n\
             \x20       C[i] = {e2}\n"
        ),
        transients: vec!["D"],
        check: "C",
        check_len: one_d,
    })
}

/// One 2-D map (MapCollapse/Expansion/Interchange/Tiling territory). The
/// transposed read keeps interchange non-trivial.
fn p_map2d() -> impl Strategy<Value = Program> {
    expr(&["A[i, j]", "B[j, i]"]).prop_map(|e| Program {
        src: format!(
            "def p(A: dace.float64[N, N], B: dace.float64[N, N],\n\
             \x20     C: dace.float64[N, N]):\n\
             \x20   for i, j in dace.map[0:N, 0:N]:\n\
             \x20       C[i, j] = {e}\n"
        ),
        transients: vec![],
        check: "C",
        check_len: two_d,
    })
}

/// A WCR reduction into a scalar.
fn p_reduce() -> impl Strategy<Value = Program> {
    expr(&["A[i]", "B[i]"]).prop_map(|e| Program {
        src: format!(
            "def p(A: dace.float64[N], B: dace.float64[N], out: dace.float64[1]):\n\
             \x20   for i in dace.map[0:N]:\n\
             \x20       out[0] += {e}\n"
        ),
        transients: vec![],
        check: "out",
        check_len: scalar,
    })
}

/// A sequential state-machine loop around a WCR map (Fig. 2b structure).
fn p_loop() -> impl Strategy<Value = Program> {
    expr(&["A[i]", "B[i]"]).prop_map(|e| Program {
        src: format!(
            "def p(A: dace.float64[N], B: dace.float64[N], C: dace.float64[N]):\n\
             \x20   for t in range(3):\n\
             \x20       for i in dace.map[0:N]:\n\
             \x20           C[i] += {e}\n"
        ),
        transients: vec![],
        check: "C",
        check_len: one_d,
    })
}

fn program() -> impl Strategy<Value = Program> {
    prop_oneof![p_map1d(), p_chain(), p_map2d(), p_reduce(), p_loop()]
}

// --- the oracle ------------------------------------------------------------

/// Builds the SDFG for a generated program.
fn build(p: &Program) -> Sdfg {
    let mut sdfg = parse_program(&p.src).expect("generated program parses");
    for t in &p.transients {
        sdfg.desc_mut(t).unwrap().set_transient(true);
    }
    sdfg
}

/// Integer-valued inputs for every non-transient container of the program.
fn inputs(p: &Program, n: usize, seed: i64) -> Vec<(String, Vec<f64>)> {
    let names_lens: &[(&str, usize)] = match p.check {
        "out" => &[("A", 1), ("B", 1), ("out", 0)],
        _ if p.src.contains("float64[N, N]") => &[("A", 2), ("B", 2), ("C", 2)],
        _ if p.transients.is_empty() => &[("A", 1), ("B", 1), ("C", 1)],
        _ => &[("A", 1), ("B", 1), ("C", 1)],
    };
    names_lens
        .iter()
        .map(|(name, rank)| {
            let len = match rank {
                0 => 1,
                1 => n,
                _ => n * n,
            };
            let data = (0..len)
                .map(|i| (((i as i64 * 7 + seed * 13 + *rank as i64 * 3) % 9) - 4) as f64)
                .collect();
            (name.to_string(), data)
        })
        .collect()
}

fn run_interp(sdfg: &Sdfg, n: usize, ins: &[(String, Vec<f64>)], check: &str) -> Vec<f64> {
    let mut it = Interpreter::new(sdfg);
    it.set_symbol("N", n as i64);
    for (name, data) in ins {
        it.set_array(name, data.clone());
    }
    it.run().expect("interpreter runs");
    it.array(check).to_vec()
}

fn run_exec(sdfg: &Sdfg, n: usize, ins: &[(String, Vec<f64>)], check: &str) -> Vec<f64> {
    let mut ex = Executor::new(sdfg);
    ex.set_symbol("N", n as i64);
    for (name, data) in ins {
        ex.set_array(name, data.clone());
    }
    ex.run().expect("executor runs");
    ex.array(check).to_vec()
}

/// Default parameters per transformation. `MapInterchange` requires an
/// explicit permutation; everything else has usable defaults.
fn default_params(name: &str, p: &Program) -> Params {
    let mut params = Params::new();
    if name == "MapInterchange" {
        let order = if p.src.contains("for i, j in") {
            "1,0"
        } else {
            "0"
        };
        params.set_text("order", order);
    }
    params
}

fn assert_same(label: &str, golden: &[f64], got: &[f64]) {
    assert_eq!(golden.len(), got.len(), "{label}: output length");
    for (i, (g, o)) in golden.iter().zip(got).enumerate() {
        assert!(
            (g - o).abs() <= 1e-12 * (1.0 + g.abs()),
            "{label}: element {i}: golden={g} got={o}"
        );
    }
}

// --- properties ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Each registry transformation, applied alone wherever it matches,
    /// preserves semantics on both engines and keeps the SDFG valid.
    #[test]
    fn single_transformation_preserves_semantics(
        p in program(),
        n in 1usize..10,
        seed in 0i64..16,
    ) {
        let base = build(&p);
        let ins = inputs(&p, n, seed);
        let golden = run_interp(&base, n, &ins, p.check);
        prop_assert_eq!(golden.len(), (p.check_len)(n));

        for t in registry() {
            let mut s = base.clone();
            // A no-match, or a precondition rejected at apply time
            // (e.g. Vectorization on a non-contiguous access), is a
            // legitimate skip — `s` is a clone, so nothing leaks.
            if let Ok(true) = apply_first(&mut s, t.as_ref(), &default_params(t.name(), &p)) {
                validate(&s).unwrap_or_else(|e| {
                    panic!("{} broke validation: {e:?}\n{}", t.name(), p.src)
                });
                let label = format!("{} on\n{}", t.name(), p.src);
                assert_same(&label, &golden, &run_interp(&s, n, &ins, p.check));
                assert_same(&label, &golden, &run_exec(&s, n, &ins, p.check));
            }
        }
    }

    /// Random transformation *sequences* compose soundly (the chain /
    /// version-control workflow of §4.2).
    #[test]
    fn transformation_sequences_compose(
        p in program(),
        n in 1usize..10,
        seed in 0i64..16,
        picks in proptest::collection::vec(0usize..17, 1..4),
    ) {
        let mut s = build(&p);
        let ins = inputs(&p, n, seed);
        let golden = run_interp(&s, n, &ins, p.check);

        let reg = registry();
        let mut applied = Vec::new();
        for idx in picks {
            let t = &reg[idx % reg.len()];
            if let Ok(true) = apply_first(&mut s, t.as_ref(), &default_params(t.name(), &p)) {
                applied.push(t.name());
                validate(&s).unwrap_or_else(|e| {
                    panic!("after {applied:?}: validation {e:?}\n{}", p.src)
                });
                let label = format!("chain {applied:?} on\n{}", p.src);
                assert_same(&label, &golden, &run_interp(&s, n, &ins, p.check));
                assert_same(&label, &golden, &run_exec(&s, n, &ins, p.check));
            }
        }
    }

    /// The strict-transformation fixpoint pass (applied automatically by
    /// DaCe after parsing) is always safe.
    #[test]
    fn strict_pass_preserves_semantics(
        p in program(),
        n in 1usize..10,
        seed in 0i64..16,
    ) {
        let mut s = build(&p);
        let ins = inputs(&p, n, seed);
        let golden = run_interp(&s, n, &ins, p.check);
        apply_strict(&mut s).expect("strict pass applies");
        validate(&s).expect("strict pass keeps SDFG valid");
        assert_same("strict pass", &golden, &run_interp(&s, n, &ins, p.check));
        assert_same("strict pass", &golden, &run_exec(&s, n, &ins, p.check));
    }
}

/// `inputs` keys off the program source to size containers — pin that a
/// 2-D program gets n*n-length inputs so grammar edits can't silently
/// produce length-mismatched arrays (which the engines would reject).
#[test]
fn inputs_cover_every_shape() {
    let p = Program {
        src: "def p(A: dace.float64[N, N], B: dace.float64[N, N],\n\
              \x20     C: dace.float64[N, N]):\n\
              \x20   for i, j in dace.map[0:N, 0:N]:\n\
              \x20       C[i, j] = A[i, j]\n"
            .to_string(),
        transients: vec![],
        check: "C",
        check_len: two_d,
    };
    let ins = inputs(&p, 3, 0);
    assert!(ins.iter().all(|(_, d)| d.len() == 9));
}
