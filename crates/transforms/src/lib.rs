//! # sdfg-transforms — data-centric graph transformations
//!
//! The performance-engineer toolbox of the paper (§4.1, Appendix B): each
//! transformation is a "find and replace" operation over the SDFG, defined
//! by a pattern, a matching predicate, and a rewrite. Matches are found with
//! VF2 subgraph search (via `sdfg-graph`) or targeted scans, mirroring
//! DaCe's `can_be_applied`/`apply` protocol (Appendix D).
//!
//! Implemented standard library (Appendix B, Table 4):
//!
//! | Category | Transformations |
//! |---|---|
//! | Map | [`MapCollapse`], [`MapExpansion`], [`MapFusion`], [`MapInterchange`], [`MapReduceFusion`], [`MapTiling`] |
//! | Data | [`DoubleBuffering`], [`LocalStorage`], [`LocalStream`], [`Vectorization`] |
//! | Control flow | [`MapToForLoop`], [`StateFusion`], [`InlineSdfg`] |
//! | Hardware mapping | [`FpgaTransform`], [`GpuTransform`], [`MpiTransform`] |
//!
//! Plus [`RedundantArray`] (Appendix D) as a *strict* transformation —
//! applied automatically by [`apply_strict`].
//!
//! Transformation applications can be recorded into a [`Chain`] and
//! replayed — the "optimization version control" of DIODE (§4.2).

pub mod autotune;
pub mod chain;
pub mod data_transforms;
pub mod device_transforms;
pub mod flow_transforms;
pub mod framework;
pub mod helpers;
pub mod map_transforms;
pub mod pipeline;

pub use autotune::{optimize_tuned, TuneEntry, TuneKey, TunedConfig, TuningDb};
pub use chain::{AppliedStep, ApplyReport, Chain};
pub use data_transforms::{
    DoubleBuffering, LocalStorage, LocalStream, RedundantArray, Vectorization,
};
pub use device_transforms::{FpgaTransform, GpuTransform, MpiTransform};
pub use flow_transforms::{InlineSdfg, MapToForLoop, StateFusion};
pub use framework::{
    apply_first, apply_strict, registry, CostHint, ParamValue, Params, TMatch, Transformation,
};
// The workspace-wide error type (transformation failures are `SdfgError`
// since the typed-params redesign; the old `TransformError` is gone).
pub use map_transforms::{
    MapCollapse, MapExpansion, MapFusion, MapInterchange, MapReduceFusion, MapTiling,
};
pub use pipeline::{optimize, optimize_with_env, OptLevel, OptimizationReport, SkippedMatch};
pub use sdfg_core::SdfgError;
