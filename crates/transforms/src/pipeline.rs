//! The automatic optimization pipeline (paper §4.2, §6): a pass manager
//! that drives the transformation standard library without a performance
//! engineer in the loop.
//!
//! Two phases, mirroring DaCe's workflow:
//!
//! 1. **Strict fixpoint** — every [`Transformation::strict`] transformation
//!    (StateFusion, RedundantArray) is applied greedily until none matches.
//!    Strict transformations only remove redundancy, so this can run
//!    unconditionally. The SDFG is re-[`validate`](Sdfg::validate)d and
//!    memlets re-propagated after *every* rewrite, and a content-hash set
//!    guards against rewrite cycles (a repeated graph state aborts the
//!    phase instead of looping).
//! 2. **Heuristic phase** (aggressive only) — an ordered list of
//!    profitability-driven transformations (MapCollapse → MapFusion →
//!    MapTiling → Vectorization → MapToForLoop). Each candidate match asks
//!    the transformation for a [`CostHint`] under the caller's symbol
//!    bindings; only `Beneficial`/`Neutral` matches fire. Every application
//!    is validated; a failing application is rolled back from a snapshot
//!    and recorded as skipped rather than aborting the pipeline.
//!
//! The pipeline returns an [`OptimizationReport`] describing exactly what
//! fired where (as [`ApplyReport`] steps), what was skipped and why, and
//! the content hashes before/after — the *after* hash is what re-keys the
//! executor's plan cache for optimized SDFGs.

use crate::chain::{AppliedStep, ApplyReport};
use crate::framework::{by_name, registry, CostHint, Params, Transformation};
use sdfg_core::serialize::content_hash;
use sdfg_core::{Sdfg, SdfgError};
use sdfg_symbolic::Env;
use std::collections::HashSet;
use std::fmt;

/// Round bound for the strict fixpoint (a backstop on top of the
/// content-hash cycle guard).
const MAX_STRICT_ROUNDS: usize = 64;

/// Per-transformation application bound in the heuristic phase.
pub(crate) const MAX_HEURISTIC_APPS: usize = 128;

/// The heuristic phase, in order. Earlier passes enable later ones:
/// collapsing widens maps for fusion, fusion exposes innermost maps for
/// vectorization, and sequentialization decisions come last so they see
/// the final map structure.
const HEURISTIC_ORDER: [&str; 5] = [
    "MapCollapse",
    "MapFusion",
    "MapTiling",
    "Vectorization",
    "MapToForLoop",
];

/// How hard the pipeline tries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OptLevel {
    /// Leave the SDFG untouched.
    #[default]
    None,
    /// Strict fixpoint only (always semantics- and cost-safe).
    Strict,
    /// Strict fixpoint plus the cost-hint-driven heuristic phase.
    Aggressive,
    /// Measurement-tuned: the executor looks up a persisted
    /// [`crate::autotune::TunedConfig`] for the graph's content hash and
    /// replays it ([`crate::autotune::optimize_tuned`]); on a database
    /// miss it falls back to `Aggressive`. Calling the pipeline directly
    /// with this level (no config in hand) behaves like `Aggressive`.
    Tuned,
}

impl OptLevel {
    /// Parses a `--opt` command-line value.
    pub fn parse(text: &str) -> Option<OptLevel> {
        match text {
            "none" | "0" => Some(OptLevel::None),
            "strict" | "1" => Some(OptLevel::Strict),
            "aggressive" | "2" => Some(OptLevel::Aggressive),
            "tuned" | "3" => Some(OptLevel::Tuned),
            _ => None,
        }
    }

    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Strict => "strict",
            OptLevel::Aggressive => "aggressive",
            OptLevel::Tuned => "tuned",
        }
    }
}

/// A candidate the heuristic phase declined, with the reason (cost hint or
/// rolled-back failure) and how many matches it covered.
#[derive(Clone, Debug, PartialEq)]
pub struct SkippedMatch {
    /// Transformation name.
    pub transform: String,
    /// Why it did not fire.
    pub reason: String,
    /// Number of matches sharing this reason.
    pub count: usize,
}

/// What the pipeline did to an SDFG.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptimizationReport {
    /// Requested level.
    pub level: OptLevel,
    /// Fixpoint rounds the strict phase ran (including the final empty one).
    pub strict_rounds: usize,
    /// Strict applications fired.
    pub strict_applied: usize,
    /// Heuristic applications fired.
    pub heuristic_applied: usize,
    /// States before / after.
    pub states_before: usize,
    /// See `states_before`.
    pub states_after: usize,
    /// Dataflow nodes (summed over states) before / after.
    pub nodes_before: usize,
    /// See `nodes_before`.
    pub nodes_after: usize,
    /// Content hash of the input SDFG.
    pub hash_before: u64,
    /// Content hash of the optimized SDFG — the executor's plan-cache
    /// re-key for optimized runs.
    pub hash_after: u64,
    /// Every fired application, in order (strict phase first).
    pub applied: ApplyReport,
    /// Declined heuristic candidates, aggregated by reason.
    pub skipped: Vec<SkippedMatch>,
}

impl OptimizationReport {
    /// True when the pipeline changed the graph.
    pub fn changed(&self) -> bool {
        self.hash_before != self.hash_after
    }
}

impl fmt::Display for OptimizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "optimization level={} passes_fired={} (strict {}, heuristic {}) \
             states {}->{} nodes {}->{} hash {:016x}->{:016x}",
            self.level.as_str(),
            self.applied.len(),
            self.strict_applied,
            self.heuristic_applied,
            self.states_before,
            self.states_after,
            self.nodes_before,
            self.nodes_after,
            self.hash_before,
            self.hash_after,
        )?;
        if !self.applied.is_empty() {
            writeln!(f, "applied:")?;
            write!(f, "{}", self.applied)?;
        }
        for s in &self.skipped {
            writeln!(f, "skipped: {} x{} ({})", s.transform, s.count, s.reason)?;
        }
        Ok(())
    }
}

pub(crate) fn count_nodes(sdfg: &Sdfg) -> usize {
    sdfg.graph
        .node_ids()
        .map(|sid| sdfg.graph.node(sid).graph.node_count())
        .sum()
}

/// Validates after a rewrite, wrapping failures with the pass name so the
/// offending transformation is identifiable from the error alone.
pub(crate) fn validate_after(sdfg: &Sdfg, pass: &str) -> Result<(), SdfgError> {
    sdfg.validate().map_err(|es| {
        SdfgError::optimization(
            pass,
            format!("validation failed after rewrite: {}", SdfgError::from(es)),
        )
    })
}

pub(crate) fn record_skip(skipped: &mut Vec<SkippedMatch>, transform: &str, reason: String) {
    if let Some(s) = skipped
        .iter_mut()
        .find(|s| s.transform == transform && s.reason == reason)
    {
        s.count += 1;
    } else {
        skipped.push(SkippedMatch {
            transform: transform.to_string(),
            reason,
            count: 1,
        });
    }
}

/// Runs the pipeline with no symbol bindings (cost hints that need concrete
/// sizes return `Unknown` and their transforms stay off).
pub fn optimize(sdfg: &mut Sdfg, level: OptLevel) -> Result<OptimizationReport, SdfgError> {
    optimize_with_env(sdfg, level, &Env::new())
}

/// Observability for one optimization-pass outcome: bumps the global
/// `sdfg_opt_passes_total{outcome=...}` counter and (when sampling)
/// records a flight-recorder event carrying the pass's position in the
/// pipeline's applied sequence.
pub(crate) fn observe_pass(applied: bool, idx: usize) {
    use sdfg_profile::{flight, metrics};
    let m = metrics::core();
    if applied {
        m.opt_applied.inc();
    } else {
        m.opt_rolled_back.inc();
    }
    if flight::enabled() {
        let kind = if applied {
            flight::EventKind::OptApplied
        } else {
            flight::EventKind::OptRolledBack
        };
        flight::record(kind, idx as u64, 0);
    }
}

/// Runs the pipeline. `env` carries the symbol bindings the SDFG will be
/// executed under — the heuristic phase uses them to evaluate iteration
/// counts in cost hints (e.g. sequentializing maps too small to amortize a
/// thread-scope spawn).
pub fn optimize_with_env(
    sdfg: &mut Sdfg,
    level: OptLevel,
    env: &Env,
) -> Result<OptimizationReport, SdfgError> {
    let mut report = OptimizationReport {
        level,
        states_before: sdfg.graph.node_count(),
        nodes_before: count_nodes(sdfg),
        hash_before: content_hash(sdfg),
        ..Default::default()
    };
    report.states_after = report.states_before;
    report.nodes_after = report.nodes_before;
    report.hash_after = report.hash_before;
    if level == OptLevel::None {
        return Ok(report);
    }
    // The input must be structurally sound before rewriting starts.
    sdfg.validate().map_err(|es| {
        SdfgError::optimization(
            "input",
            format!("input SDFG invalid: {}", SdfgError::from(es)),
        )
    })?;

    // Phase 1: strict fixpoint with cycle guard.
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(report.hash_before);
    let strict: Vec<Box<dyn Transformation>> =
        registry().into_iter().filter(|t| t.strict()).collect();
    let no_params = Params::new();
    'rounds: for _ in 0..MAX_STRICT_ROUNDS {
        report.strict_rounds += 1;
        let mut fired = false;
        for t in &strict {
            loop {
                let matches = t.find(sdfg);
                let Some(m) = matches.first() else {
                    break;
                };
                t.apply(sdfg, m, &no_params)?;
                sdfg_core::propagate::propagate_sdfg(sdfg);
                validate_after(sdfg, t.name())?;
                let h = content_hash(sdfg);
                if !seen.insert(h) {
                    return Err(SdfgError::optimization(
                        t.name(),
                        "rewrite cycle detected: graph state repeated during strict fixpoint",
                    ));
                }
                report.applied.push(AppliedStep::from_match(t.name(), m));
                report.strict_applied += 1;
                observe_pass(true, report.applied.len() - 1);
                fired = true;
            }
        }
        if !fired {
            break 'rounds;
        }
    }

    // Phase 2: cost-hint-driven heuristics. A direct `Tuned` call (no
    // measured config in hand) degrades to the `Aggressive` behaviour —
    // the executor substitutes `optimize_tuned` when it has a config.
    if matches!(level, OptLevel::Aggressive | OptLevel::Tuned) {
        for name in HEURISTIC_ORDER {
            let t = by_name(name).expect("heuristic order names a registered transformation");
            let mut apps = 0usize;
            'transform: while apps < MAX_HEURISTIC_APPS {
                let matches = t.find(sdfg);
                if matches.is_empty() {
                    break;
                }
                let mut fired_this_pass = false;
                for m in &matches {
                    match t.cost_hint(sdfg, m, env) {
                        CostHint::Beneficial | CostHint::Neutral => {}
                        CostHint::Unprofitable => {
                            record_skip(
                                &mut report.skipped,
                                name,
                                "cost hint: unprofitable".into(),
                            );
                            continue;
                        }
                        CostHint::Unknown => {
                            record_skip(&mut report.skipped, name, "cost hint: unknown".into());
                            continue;
                        }
                    }
                    let snapshot = sdfg.clone();
                    let outcome = t
                        .apply(sdfg, m, &no_params)
                        .map(|()| sdfg_core::propagate::propagate_sdfg(sdfg))
                        .and_then(|()| validate_after(sdfg, name));
                    match outcome {
                        Ok(()) => {
                            let h = content_hash(sdfg);
                            if !seen.insert(h) {
                                // Re-reached a previous graph state: undo and
                                // stop this transform to guarantee progress.
                                *sdfg = snapshot;
                                observe_pass(false, report.applied.len());
                                record_skip(
                                    &mut report.skipped,
                                    name,
                                    "cycle guard: rewrite repeated a prior graph state".into(),
                                );
                                break 'transform;
                            }
                            report.applied.push(AppliedStep::from_match(name, m));
                            report.heuristic_applied += 1;
                            observe_pass(true, report.applied.len() - 1);
                            apps += 1;
                            fired_this_pass = true;
                            // The graph changed; stale matches must be
                            // re-discovered.
                            break;
                        }
                        Err(e) => {
                            *sdfg = snapshot;
                            observe_pass(false, report.applied.len());
                            record_skip(&mut report.skipped, name, format!("rolled back: {e}"));
                        }
                    }
                }
                if !fired_this_pass {
                    break;
                }
            }
        }
    }

    report.states_after = sdfg.graph.node_count();
    report.nodes_after = count_nodes(sdfg);
    report.hash_after = content_hash(sdfg);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;

    /// Two states through a transient: StateFusion then MapFusion collapse
    /// the whole program into one map.
    fn two_state_chain() -> Sdfg {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.transient("T", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let s1 = b.state("one");
        b.mapped_tasklet(
            s1,
            "t1",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "T", "i")],
        );
        let s2 = b.state("two");
        b.mapped_tasklet(
            s2,
            "t2",
            &[("j", "0:N")],
            &[("t", "T", "j")],
            "o = t + 1",
            &[("o", "B", "j")],
        );
        b.transition(s1, s2);
        b.build().unwrap()
    }

    #[test]
    fn none_level_is_identity() {
        let mut sdfg = two_state_chain();
        let before = content_hash(&sdfg);
        let r = optimize(&mut sdfg, OptLevel::None).unwrap();
        assert_eq!(content_hash(&sdfg), before);
        assert!(!r.changed());
        assert_eq!(r.applied.len(), 0);
    }

    #[test]
    fn strict_fuses_states_and_terminates() {
        let mut sdfg = two_state_chain();
        let r = optimize(&mut sdfg, OptLevel::Strict).unwrap();
        assert_eq!(sdfg.graph.node_count(), 1, "states fused");
        assert!(r.strict_applied >= 1);
        assert!(r.changed());
        assert!(r.strict_rounds <= MAX_STRICT_ROUNDS);
        sdfg.validate().unwrap();
        // Idempotent: a second run is a no-op.
        let r2 = optimize(&mut sdfg, OptLevel::Strict).unwrap();
        assert_eq!(r2.strict_applied, 0);
        assert!(!r2.changed());
    }

    #[test]
    fn aggressive_fuses_maps_and_preserves_semantics() {
        let mut sdfg = two_state_chain();
        let reference = {
            let mut it = sdfg_interp::Interpreter::new(&sdfg);
            it.set_symbol("N", 13);
            it.set_array("A", (0..13).map(|x| x as f64).collect());
            it.set_array("B", vec![0.0; 13]);
            it.run().unwrap();
            it.array("B").to_vec()
        };
        let env = sdfg_symbolic::env(&[("N", 13)]);
        let r = optimize_with_env(&mut sdfg, OptLevel::Aggressive, &env).unwrap();
        assert!(r.heuristic_applied >= 1, "{r}");
        assert!(
            r.applied.steps.iter().any(|s| s.transform == "MapFusion"),
            "{r}"
        );
        // MapTiling considered but declined by its cost hint.
        assert!(
            r.skipped
                .iter()
                .any(|s| s.transform == "MapTiling" && s.reason.contains("unprofitable")),
            "{r}"
        );
        sdfg.validate().unwrap();
        let mut it = sdfg_interp::Interpreter::new(&sdfg);
        it.set_symbol("N", 13);
        it.set_array("A", (0..13).map(|x| x as f64).collect());
        it.set_array("B", vec![0.0; 13]);
        it.run().unwrap();
        assert_eq!(it.array("B"), reference.as_slice());
    }

    #[test]
    fn report_hash_rekeys_only_on_change() {
        let mut sdfg = two_state_chain();
        let r = optimize(&mut sdfg, OptLevel::Strict).unwrap();
        assert_ne!(r.hash_before, r.hash_after);
        assert_eq!(r.hash_after, content_hash(&sdfg));
    }

    #[test]
    fn opt_level_parses() {
        assert_eq!(OptLevel::parse("strict"), Some(OptLevel::Strict));
        assert_eq!(OptLevel::parse("aggressive"), Some(OptLevel::Aggressive));
        assert_eq!(OptLevel::parse("none"), Some(OptLevel::None));
        assert_eq!(OptLevel::parse("bogus"), None);
    }
}
