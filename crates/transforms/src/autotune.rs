//! Measurement-driven autotuning: a persisted tuning database plus a
//! knob-parameterized replay of the heuristic phase.
//!
//! The SC19 paper's workflow is a performance engineer iterating
//! *transform → measure → keep or revert*; [`crate::pipeline`] automates
//! the transform step with static cost hints, and this module closes the
//! loop with measurement. A search driver (in `sdfg-bench`) explores the
//! knob space described by [`TunedConfig`] / [`default_stages`], times each
//! candidate with the warm-median bench protocol, and persists the winner
//! into a [`TuningDb`] keyed by `(content_hash, target, nthreads)`. The
//! executor's `OptLevel::Tuned` then looks the entry up at plan time and
//! replays it via [`optimize_tuned`]; a database miss falls back to the
//! `Aggressive` pipeline.
//!
//! The database is schema-versioned canonical JSON (sorted keys, sorted
//! entries) so diffs stay reviewable when it is committed to a repo.

use crate::framework::{by_name, CostHint, Params, TMatch, Transformation};
use crate::pipeline::{
    count_nodes, observe_pass, record_skip, validate_after, OptLevel, OptimizationReport,
    MAX_HEURISTIC_APPS,
};
use sdfg_core::serialize::{content_hash, json_escape, parse_json, Json};
use sdfg_core::{Schedule, Sdfg, SdfgError};
use sdfg_symbolic::Env;
use std::collections::HashSet;
use std::fmt;
use std::path::Path;

/// Version of the on-disk tuning-database format. Bumped on any change to
/// the entry layout; [`TuningDb::parse`] rejects a mismatch outright
/// (stale measurements silently reinterpreted under a new schema are worse
/// than a cold database).
pub const SCHEMA_VERSION: i64 = 3;

/// One point in the autotuner's search space: the knob settings that
/// parameterize [`optimize_tuned`]'s replay of the heuristic phase plus
/// the scheduler's grain target.
///
/// `Default` is the `Aggressive`-equivalent configuration — replaying it
/// produces the same graph the static pipeline would.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TunedConfig {
    /// Run the MapFusion pass (cost-gated, as in the static pipeline).
    pub fusion: bool,
    /// Force MapTiling with these tile sizes on top-level multicore maps.
    /// Empty (the default) leaves tiling to the cost hint, which declines
    /// it on this runtime.
    pub tile_sizes: Vec<usize>,
    /// Vectorization width; `1` disables the pass.
    pub vector_width: u32,
    /// Iteration-count threshold below which a top-level multicore map is
    /// sequentialized (`MapToForLoop`); `0` never sequentializes.
    pub seq_threshold: i64,
    /// Steal-scheduler per-tile time target in nanoseconds; `0` keeps the
    /// scheduler's built-in default. Plumbed to the executor, not a graph
    /// rewrite.
    pub grain_ns: u64,
    /// Allow the executor's JIT native-code tier for hot map bodies.
    /// Plumbed to the executor (not a graph rewrite); the executor still
    /// needs a working C compiler and `SDFG_JIT` unset/on for the tier to
    /// engage.
    pub jit: bool,
    /// Allow whole-nest JIT lowering (state-machine loop collapse and
    /// tile-to-nest-kernel dispatch) on top of the per-map JIT tier.
    /// Ignored when `jit` is off.
    pub nest_jit: bool,
}

impl Default for TunedConfig {
    fn default() -> TunedConfig {
        TunedConfig {
            fusion: true,
            tile_sizes: Vec::new(),
            vector_width: 4,
            seq_threshold: crate::flow_transforms::SEQUENTIALIZE_BELOW_POINTS,
            grain_ns: 0,
            jit: true,
            nest_jit: true,
        }
    }
}

impl fmt::Display for TunedConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fusion={} tiles={:?} width={} seq<{} grain={} jit={} nest={}",
            if self.fusion { "on" } else { "off" },
            self.tile_sizes,
            self.vector_width,
            self.seq_threshold,
            if self.grain_ns == 0 {
                "default".to_string()
            } else {
                format!("{}ns", self.grain_ns)
            },
            if self.jit { "on" } else { "off" },
            if self.nest_jit { "on" } else { "off" },
        )
    }
}

impl TunedConfig {
    /// Canonical JSON object (sorted keys).
    pub fn to_json(&self) -> String {
        let tiles: Vec<String> = self.tile_sizes.iter().map(|t| t.to_string()).collect();
        format!(
            "{{\"fusion\":{},\"grain_ns\":{},\"jit\":{},\"nest_jit\":{},\"seq_threshold\":{},\"tile_sizes\":[{}],\"vector_width\":{}}}",
            self.fusion,
            self.grain_ns,
            self.jit,
            self.nest_jit,
            self.seq_threshold,
            tiles.join(","),
            self.vector_width,
        )
    }

    /// Parses the object written by [`TunedConfig::to_json`]. Missing keys
    /// are an error — the schema version gates compatibility, not
    /// per-field defaulting.
    pub fn from_json(j: &Json) -> Result<TunedConfig, String> {
        let tiles = j
            .arr_field("tile_sizes")?
            .iter()
            .map(|t| match t {
                Json::Num(n) if *n >= 0.0 => Ok(*n as usize),
                other => Err(format!("bad tile size {other:?}")),
            })
            .collect::<Result<Vec<usize>, String>>()?;
        Ok(TunedConfig {
            fusion: j.bool_field("fusion")?,
            tile_sizes: tiles,
            vector_width: j.num_field("vector_width")? as u32,
            seq_threshold: j.num_field("seq_threshold")? as i64,
            grain_ns: j.num_field("grain_ns")? as u64,
            jit: j.bool_field("jit")?,
            nest_jit: j.bool_field("nest_jit")?,
        })
    }
}

/// A single knob mutation the search driver can apply to a candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Knob {
    /// Set [`TunedConfig::fusion`].
    Fusion(bool),
    /// Set [`TunedConfig::tile_sizes`].
    TileSizes(Vec<usize>),
    /// Set [`TunedConfig::vector_width`].
    VectorWidth(u32),
    /// Set [`TunedConfig::seq_threshold`].
    SeqThreshold(i64),
    /// Set [`TunedConfig::grain_ns`].
    GrainNs(u64),
    /// Set [`TunedConfig::jit`].
    Jit(bool),
    /// Set [`TunedConfig::nest_jit`].
    NestJit(bool),
}

impl Knob {
    /// Applies the mutation.
    pub fn apply(&self, cfg: &mut TunedConfig) {
        match self {
            Knob::Fusion(b) => cfg.fusion = *b,
            Knob::TileSizes(ts) => cfg.tile_sizes = ts.clone(),
            Knob::VectorWidth(w) => cfg.vector_width = *w,
            Knob::SeqThreshold(t) => cfg.seq_threshold = *t,
            Knob::GrainNs(g) => cfg.grain_ns = *g,
            Knob::Jit(b) => cfg.jit = *b,
            Knob::NestJit(b) => cfg.nest_jit = *b,
        }
    }

    /// Short label for trial logs (`seq<16384`, `tiles=[32]`, …).
    pub fn label(&self) -> String {
        match self {
            Knob::Fusion(b) => format!("fusion={}", if *b { "on" } else { "off" }),
            Knob::TileSizes(ts) => format!("tiles={ts:?}"),
            Knob::VectorWidth(w) => format!("width={w}"),
            Knob::SeqThreshold(t) => format!("seq<{t}"),
            Knob::GrainNs(g) => format!("grain={g}ns"),
            Knob::Jit(b) => format!("jit={}", if *b { "on" } else { "off" }),
            Knob::NestJit(b) => format!("nest={}", if *b { "on" } else { "off" }),
        }
    }
}

/// The default coordinate-descent search space: one stage per knob, in the
/// order the knobs interact least (structure first, scheduler grain last).
/// Within a stage the driver tries each candidate against the incumbent
/// and keeps the best; the `Aggressive`-equivalent default value of each
/// knob is the incumbent's starting point and is not re-listed.
pub fn default_stages() -> Vec<(&'static str, Vec<Knob>)> {
    vec![
        (
            "seq_threshold",
            vec![
                Knob::SeqThreshold(1024),
                Knob::SeqThreshold(16384),
                Knob::SeqThreshold(65536),
            ],
        ),
        ("fusion", vec![Knob::Fusion(false)]),
        (
            "vector_width",
            vec![Knob::VectorWidth(1), Knob::VectorWidth(8)],
        ),
        (
            "tile_sizes",
            vec![
                Knob::TileSizes(vec![16]),
                Knob::TileSizes(vec![32]),
                Knob::TileSizes(vec![64]),
            ],
        ),
        (
            "grain_ns",
            vec![Knob::GrainNs(5_000), Knob::GrainNs(80_000)],
        ),
        ("jit", vec![Knob::Jit(false)]),
        ("nest_jit", vec![Knob::NestJit(false)]),
    ]
}

/// The lookup key for a tuned entry: the *unoptimized* graph's content
/// hash plus the execution context the measurement was taken in. Any graph
/// edit changes the hash, so a stale entry is structurally a miss.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// [`content_hash`] of the unoptimized SDFG.
    pub content_hash: u64,
    /// Backend target tag (`cpu`, `gpu`, `fpga`, `hetero`).
    pub target: String,
    /// Worker-thread count the measurement used (grain and
    /// sequentialization thresholds are thread-count-sensitive).
    pub nthreads: u32,
}

/// One persisted tuning result.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneEntry {
    /// Lookup key.
    pub key: TuneKey,
    /// Kernel name, for humans reading the database.
    pub kernel: String,
    /// The winning configuration.
    pub config: TunedConfig,
    /// Warm-median milliseconds of the winner.
    pub tuned_warm_ms: f64,
    /// Warm-median milliseconds of the `Aggressive` baseline it beat (or
    /// tied — the driver never persists a slower config).
    pub baseline_warm_ms: f64,
    /// Number of measured trials behind this entry.
    pub trials: u32,
}

/// The persistent per-kernel tuning database (`bench/tuned.json`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuningDb {
    entries: Vec<TuneEntry>,
}

impl TuningDb {
    /// An empty database.
    pub fn new() -> TuningDb {
        TuningDb::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in canonical order.
    pub fn entries(&self) -> &[TuneEntry] {
        &self.entries
    }

    /// Looks up the entry for a graph/context. A hash from an edited graph
    /// simply finds nothing: stale entries are misses, not errors.
    pub fn lookup(&self, content_hash: u64, target: &str, nthreads: u32) -> Option<&TuneEntry> {
        self.entries.iter().find(|e| {
            e.key.content_hash == content_hash
                && e.key.target == target
                && e.key.nthreads == nthreads
        })
    }

    /// Inserts an entry, replacing any existing entry with the same key
    /// (last measurement wins), and keeps the canonical sort order.
    pub fn insert(&mut self, entry: TuneEntry) {
        self.entries.retain(|e| e.key != entry.key);
        self.entries.push(entry);
        self.entries.sort_by(|a, b| {
            (&a.kernel, &a.key.target, a.key.nthreads, a.key.content_hash).cmp(&(
                &b.kernel,
                &b.key.target,
                b.key.nthreads,
                b.key.content_hash,
            ))
        });
    }

    /// Canonical JSON: sorted keys, entries in canonical order, one entry
    /// per line so database diffs review like ledgers.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n\"schema\": {SCHEMA_VERSION},\n\"entries\": ["
        ));
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "{{\"baseline_warm_ms\":{},\"config\":{},\"content_hash\":\"{:016x}\",\"kernel\":\"{}\",\"nthreads\":{},\"target\":\"{}\",\"trials\":{},\"tuned_warm_ms\":{}}}",
                e.baseline_warm_ms,
                e.config.to_json(),
                e.key.content_hash,
                json_escape(&e.kernel),
                e.key.nthreads,
                json_escape(&e.key.target),
                e.trials,
                e.tuned_warm_ms,
            ));
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Parses a database, rejecting a schema-version mismatch cleanly (the
    /// caller should treat that as "retune", never as "reinterpret").
    pub fn parse(src: &str) -> Result<TuningDb, String> {
        let j = parse_json(src)?;
        let schema = j.num_field("schema")? as i64;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "tuning DB schema version {schema} != supported {SCHEMA_VERSION}; \
                 delete the database and re-run --autotune"
            ));
        }
        let mut db = TuningDb::new();
        for e in j.arr_field("entries")? {
            let hash_hex = e.str_field("content_hash")?;
            let content_hash = u64::from_str_radix(hash_hex, 16)
                .map_err(|_| format!("bad content_hash {hash_hex:?}"))?;
            db.insert(TuneEntry {
                key: TuneKey {
                    content_hash,
                    target: e.str_field("target")?.to_string(),
                    nthreads: e.num_field("nthreads")? as u32,
                },
                kernel: e.str_field("kernel")?.to_string(),
                config: TunedConfig::from_json(e.get("config").ok_or("entry missing `config`")?)?,
                tuned_warm_ms: e.num_field("tuned_warm_ms")?,
                baseline_warm_ms: e.num_field("baseline_warm_ms")?,
                trials: e.num_field("trials")? as u32,
            });
        }
        Ok(db)
    }

    /// Loads a database from disk. A missing file is `Ok(None)` (cold
    /// database); an unreadable or schema-incompatible file is an error.
    pub fn load(path: &Path) -> Result<Option<TuningDb>, String> {
        if !path.exists() {
            return Ok(None);
        }
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        TuningDb::parse(&src).map(Some)
    }

    /// Writes the database in canonical form.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// How a pass in the tuned replay decides whether a match fires.
enum Gate {
    /// Defer to the transformation's own cost hint (pipeline behaviour).
    Cost,
    /// Fire on every top-level multicore map not already tiled, ignoring
    /// the cost hint (the measurement *is* the cost model here).
    ForcedTiling,
    /// Sequentialize top-level multicore maps below this iteration count.
    Sequentialize(i64),
}

/// True when `entry` heads a top-level `CpuMulticore` map scope.
fn top_level_multicore(sdfg: &Sdfg, m: &TMatch, entry: sdfg_graph::NodeId) -> bool {
    let st = sdfg.state(m.state);
    if crate::helpers::scope_of(st, entry).schedule != Schedule::CpuMulticore {
        return false;
    }
    match sdfg_core::scope::scope_tree(st) {
        Ok(tree) => tree.scope_of(entry).is_none(),
        Err(_) => false,
    }
}

/// Evaluates whether a gate admits the match.
fn gate_admits(gate: &Gate, t: &dyn Transformation, sdfg: &Sdfg, m: &TMatch, env: &Env) -> bool {
    match gate {
        Gate::Cost => matches!(
            t.cost_hint(sdfg, m, env),
            CostHint::Beneficial | CostHint::Neutral
        ),
        Gate::ForcedTiling => {
            let Ok(entry) = m.try_node("map") else {
                return false;
            };
            if !top_level_multicore(sdfg, m, entry) {
                return false;
            }
            // Tiling prepends `<param>_tile` dimensions; their presence
            // marks a map this replay already tiled (keeps the pass
            // idempotent without tracking node identity across rewrites).
            !crate::helpers::scope_of(sdfg.state(m.state), entry)
                .params
                .iter()
                .any(|p| p.ends_with("_tile"))
        }
        Gate::Sequentialize(threshold) => {
            let Ok(entry) = m.try_node("map") else {
                return false;
            };
            if !top_level_multicore(sdfg, m, entry) {
                return false;
            }
            let mut points: i64 = 1;
            for r in &crate::helpers::scope_of(sdfg.state(m.state), entry).ranges {
                match r.eval_len(env) {
                    Ok(l) => points = points.saturating_mul(l.max(0)),
                    Err(_) => return false,
                }
            }
            points < *threshold
        }
    }
}

/// Replays the heuristic phase under a measured configuration: strict
/// fixpoint first (always safe), then the knob-gated passes. Structure
/// mirrors [`crate::pipeline::optimize_with_env`] — snapshot/rollback on
/// failing applications, content-hash cycle guard, same report shape —
/// but the knobs replace the static cost hints where the search measured
/// an alternative.
pub fn optimize_tuned(
    sdfg: &mut Sdfg,
    cfg: &TunedConfig,
    env: &Env,
) -> Result<OptimizationReport, SdfgError> {
    let mut report = crate::pipeline::optimize_with_env(sdfg, OptLevel::Strict, env)?;
    report.level = OptLevel::Tuned;

    // Knob-gated pass list, in pipeline order.
    let mut passes: Vec<(&'static str, Params, Gate)> = Vec::new();
    passes.push(("MapCollapse", Params::new(), Gate::Cost));
    if cfg.fusion {
        passes.push(("MapFusion", Params::new(), Gate::Cost));
    }
    if cfg.tile_sizes.iter().any(|&t| t > 1) {
        passes.push((
            "MapTiling",
            Params::new().with("tile_sizes", cfg.tile_sizes.clone()),
            Gate::ForcedTiling,
        ));
    }
    if cfg.vector_width > 1 {
        passes.push((
            "Vectorization",
            Params::new().with("width", cfg.vector_width as i64),
            Gate::Cost,
        ));
    }
    if cfg.seq_threshold > 0 {
        passes.push((
            "MapToForLoop",
            Params::new(),
            Gate::Sequentialize(cfg.seq_threshold),
        ));
    }

    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(content_hash(sdfg));
    for (name, params, gate) in &passes {
        let t = by_name(name).expect("tuned pass list names a registered transformation");
        let mut apps = 0usize;
        'transform: while apps < MAX_HEURISTIC_APPS {
            let matches = t.find(sdfg);
            if matches.is_empty() {
                break;
            }
            let mut fired_this_pass = false;
            for m in &matches {
                if !gate_admits(gate, t.as_ref(), sdfg, m, env) {
                    record_skip(&mut report.skipped, name, "tuned config: gated off".into());
                    continue;
                }
                let snapshot = sdfg.clone();
                let outcome = t
                    .apply(sdfg, m, params)
                    .map(|()| sdfg_core::propagate::propagate_sdfg(sdfg))
                    .and_then(|()| validate_after(sdfg, name));
                match outcome {
                    Ok(()) => {
                        let h = content_hash(sdfg);
                        if !seen.insert(h) {
                            *sdfg = snapshot;
                            observe_pass(false, report.applied.len());
                            record_skip(
                                &mut report.skipped,
                                name,
                                "cycle guard: rewrite repeated a prior graph state".into(),
                            );
                            break 'transform;
                        }
                        report
                            .applied
                            .push(crate::chain::AppliedStep::from_match(name, m));
                        report.heuristic_applied += 1;
                        observe_pass(true, report.applied.len() - 1);
                        apps += 1;
                        fired_this_pass = true;
                        break;
                    }
                    Err(e) => {
                        *sdfg = snapshot;
                        observe_pass(false, report.applied.len());
                        record_skip(&mut report.skipped, name, format!("rolled back: {e}"));
                    }
                }
            }
            if !fired_this_pass {
                break;
            }
        }
    }

    report.states_after = sdfg.graph.node_count();
    report.nodes_after = count_nodes(sdfg);
    report.hash_after = content_hash(sdfg);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;

    fn two_state_chain() -> Sdfg {
        let mut b = SdfgBuilder::new("p");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.transient("T", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let s1 = b.state("one");
        b.mapped_tasklet(
            s1,
            "t1",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "T", "i")],
        );
        let s2 = b.state("two");
        b.mapped_tasklet(
            s2,
            "t2",
            &[("j", "0:N")],
            &[("t", "T", "j")],
            "o = t + 1",
            &[("o", "B", "j")],
        );
        b.transition(s1, s2);
        b.build().unwrap()
    }

    #[test]
    fn config_json_roundtrip() {
        let cfg = TunedConfig {
            fusion: false,
            tile_sizes: vec![32, 8],
            vector_width: 8,
            seq_threshold: 16384,
            grain_ns: 5000,
            jit: false,
            nest_jit: false,
        };
        let j = parse_json(&cfg.to_json()).unwrap();
        assert_eq!(TunedConfig::from_json(&j).unwrap(), cfg);
        // Default round-trips too.
        let d = TunedConfig::default();
        let j = parse_json(&d.to_json()).unwrap();
        assert_eq!(TunedConfig::from_json(&j).unwrap(), d);
    }

    #[test]
    fn db_roundtrip_and_lookup() {
        let mut db = TuningDb::new();
        db.insert(TuneEntry {
            key: TuneKey {
                content_hash: 0xdeadbeef,
                target: "cpu".into(),
                nthreads: 8,
            },
            kernel: "atax".into(),
            config: TunedConfig::default(),
            tuned_warm_ms: 1.25,
            baseline_warm_ms: 1.5,
            trials: 8,
        });
        let text = db.to_json();
        let back = TuningDb::parse(&text).unwrap();
        assert_eq!(back, db);
        assert!(back.lookup(0xdeadbeef, "cpu", 8).is_some());
        // Stale hash, other target, other thread count: all misses.
        assert!(back.lookup(0xdeadbef0, "cpu", 8).is_none());
        assert!(back.lookup(0xdeadbeef, "gpu", 8).is_none());
        assert!(back.lookup(0xdeadbeef, "cpu", 4).is_none());
    }

    #[test]
    fn db_insert_replaces_same_key() {
        let key = TuneKey {
            content_hash: 1,
            target: "cpu".into(),
            nthreads: 2,
        };
        let mut db = TuningDb::new();
        let mut e = TuneEntry {
            key: key.clone(),
            kernel: "k".into(),
            config: TunedConfig::default(),
            tuned_warm_ms: 2.0,
            baseline_warm_ms: 2.0,
            trials: 1,
        };
        db.insert(e.clone());
        e.tuned_warm_ms = 1.0;
        db.insert(e);
        assert_eq!(db.len(), 1);
        assert_eq!(db.lookup(1, "cpu", 2).unwrap().tuned_warm_ms, 1.0);
    }

    #[test]
    fn schema_version_bump_rejected() {
        let text = TuningDb::new()
            .to_json()
            .replace(&format!("\"schema\": {SCHEMA_VERSION}"), "\"schema\": 999");
        let err = TuningDb::parse(&text).unwrap_err();
        assert!(err.contains("schema version 999"), "{err}");
    }

    #[test]
    fn default_config_matches_aggressive_pipeline() {
        let env = sdfg_symbolic::env(&[("N", 13)]);
        let mut tuned = two_state_chain();
        let rt = optimize_tuned(&mut tuned, &TunedConfig::default(), &env).unwrap();
        let mut agg = two_state_chain();
        let ra = crate::pipeline::optimize_with_env(&mut agg, OptLevel::Aggressive, &env).unwrap();
        assert_eq!(
            rt.hash_after, ra.hash_after,
            "default tuned replay must reproduce the aggressive graph\n{rt}\n{ra}"
        );
    }

    #[test]
    fn forced_tiling_fires_and_validates() {
        // Large N so MapToForLoop leaves the multicore map parallel.
        let env = sdfg_symbolic::env(&[("N", 100_000)]);
        let cfg = TunedConfig {
            tile_sizes: vec![32],
            ..TunedConfig::default()
        };
        let mut sdfg = two_state_chain();
        let r = optimize_tuned(&mut sdfg, &cfg, &env).unwrap();
        assert!(
            r.applied.steps.iter().any(|s| s.transform == "MapTiling"),
            "{r}"
        );
        sdfg.validate().unwrap();
        // Idempotent: the `_tile` marker keeps a second replay from
        // re-tiling the already-tiled maps.
        let mut again = sdfg.clone();
        let r2 = optimize_tuned(&mut again, &cfg, &env).unwrap();
        assert!(
            !r2.applied.steps.iter().any(|s| s.transform == "MapTiling"),
            "{r2}"
        );
    }

    #[test]
    fn knob_stages_cover_every_field() {
        let stages = default_stages();
        let mut cfg = TunedConfig::default();
        for (_, knobs) in &stages {
            for k in knobs {
                k.apply(&mut cfg);
            }
        }
        let d = TunedConfig::default();
        assert_ne!(cfg.fusion, d.fusion);
        assert_ne!(cfg.tile_sizes, d.tile_sizes);
        assert_ne!(cfg.vector_width, d.vector_width);
        assert_ne!(cfg.seq_threshold, d.seq_threshold);
        assert_ne!(cfg.grain_ns, d.grain_ns);
        assert_ne!(cfg.jit, d.jit);
    }
}
