//! Data transformations (Appendix B, "Data transformations") plus the
//! `RedundantArray` strict transformation of Appendix D.

use crate::framework::{CostHint, Params, TMatch, Transformation};
use crate::helpers::{find_pattern, is_access, is_map_entry, is_transient_access, Pattern};
use sdfg_core::desc::{ArrayDesc, DataDesc, StreamDesc};
use sdfg_core::{Memlet, Node, Sdfg, SdfgError, Subset, SymRange};
use sdfg_graph::EdgeId;
use sdfg_symbolic::{Env, Expr};

/// `LocalStorage` — introduces a transient for caching data between two
/// scopes (Fig. 11b): the edge `outer(OUT_x) → consumer` gains an
/// intermediate local array sized to the moved window, and all memlets in
/// the consumer scope are reindexed relative to the window.
///
/// Parameter `data` restricts matching to one container name.
pub struct LocalStorage;

impl Transformation for LocalStorage {
    fn name(&self) -> &'static str {
        "LocalStorage"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let pattern = Pattern {
                roles: vec![("outer", is_map_entry), ("inner", is_map_entry)],
                edges: vec![(0, 1)],
            };
            for m in find_pattern(sdfg, sid, &pattern) {
                out.push(TMatch {
                    state: sid,
                    nodes: m,
                    states: Default::default(),
                });
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), SdfgError> {
        let outer = m.try_node("outer")?;
        let inner = m.try_node("inner")?;
        let want_data = params.str("data")?;
        // Pick the edge: outer(OUT_x) → inner carrying `data`.
        let (edge, data, window) = {
            let st = sdfg.state(m.state);
            let mut found = None;
            for e in st.graph.out_edges(outer) {
                if st.graph.edge_dst(e) != inner {
                    continue;
                }
                let df = st.graph.edge(e);
                if df.memlet.is_empty() {
                    continue;
                }
                let d = df.memlet.data_name().to_string();
                if let Some(w) = want_data {
                    if d != w {
                        continue;
                    }
                }
                found = Some((e, d, df.memlet.subset.clone()));
                break;
            }
            found.ok_or_else(|| {
                SdfgError::transform("no matching edge between the scopes for LocalStorage")
            })?
        };
        // Local array shaped by a parameter-free upper bound of the window.
        let local_name = sdfg.fresh_data_name(&format!("local_{data}"));
        let dtype = sdfg
            .desc(&data)
            .ok_or_else(|| SdfgError::transform(format!("unknown container `{data}`")))?
            .dtype();
        let inner_params: Vec<String> = {
            let st = sdfg.state(m.state);
            crate::helpers::scope_of(st, inner).params.clone()
        };
        let outer_params: Vec<String> = {
            let st = sdfg.state(m.state);
            crate::helpers::scope_of(st, outer).params.clone()
        };
        let mut shape = Vec::new();
        let mut extents = Vec::new(); // dynamic extents (for partial tiles)
        for r in &window.dims {
            let extent = (r.end.clone() - r.start.clone()).simplify();
            extents.push(extent.clone());
            shape.push(param_free_upper(&extent, &outer_params, &inner_params)?);
        }
        let mut desc = ArrayDesc::new(dtype, shape);
        desc.transient = true;
        sdfg.data.insert(local_name.clone(), DataDesc::Array(desc));
        // Rewrite memlets inside the inner scope to local coordinates.
        let members = sdfg_core::scope::scope_members(sdfg.state(m.state), inner);
        let state = sdfg.state_mut(m.state);
        let mut edges: Vec<EdgeId> = Vec::new();
        for &n in &members {
            edges.extend(state.graph.out_edges(n));
            edges.extend(state.graph.in_edges(n));
        }
        // Also the inner entry's own out-edges (inner side of the scope).
        edges.extend(state.graph.out_edges(inner));
        edges.sort_unstable();
        edges.dedup();
        for e in edges {
            let df = state.graph.edge_mut(e);
            if df.memlet.data.as_deref() == Some(data.as_str()) {
                df.memlet.data = Some(local_name.clone());
                df.memlet.subset = df.memlet.subset.offset_by(&window);
            }
        }
        // Insert the local access node on the crossing edge.
        let df = state.graph.edge(edge).clone();
        state.graph.remove_edge(edge);
        let acc = state.add_access(&local_name);
        // Copy-in: global window → local [0:extent...].
        let dst_sub = Subset::new(
            extents
                .iter()
                .map(|e| SymRange::new(Expr::zero(), e.clone()))
                .collect(),
        );
        state.add_edge(
            outer,
            df.src_conn.as_deref(),
            acc,
            None,
            Memlet::new(&data, window.clone()).with_other_subset(dst_sub.clone()),
        );
        state.add_edge(
            acc,
            None,
            inner,
            df.dst_conn.as_deref(),
            Memlet::new(&local_name, dst_sub),
        );
        Ok(())
    }
}

/// Picks a parameter-free upper bound for a window extent by resolving
/// `min(a, b)` to whichever operand eliminates the scope parameters
/// (`min(t + T, N) - t` → `T`).
fn param_free_upper(
    extent: &Expr,
    outer_params: &[String],
    inner_params: &[String],
) -> Result<Expr, SdfgError> {
    let is_free = |e: &Expr| {
        let syms = e.free_symbols();
        !outer_params
            .iter()
            .chain(inner_params)
            .any(|p| syms.contains(p))
    };
    if is_free(extent) {
        return Ok(extent.clone());
    }
    // Try replacing each Min with one operand (min ≤ both, so either is an
    // upper bound) and each Max with the symbolic max of operand candidates.
    fn candidates(e: &Expr) -> Vec<Expr> {
        match e {
            Expr::Min(a, b) => {
                let mut out = Vec::new();
                for ca in candidates(a) {
                    out.push(ca);
                }
                for cb in candidates(b) {
                    out.push(cb);
                }
                out
            }
            Expr::Max(a, b) => {
                let mut out = vec![e.clone()];
                for ca in candidates(a) {
                    for cb in candidates(b) {
                        out.push(ca.clone().max2(cb.clone()));
                    }
                }
                out
            }
            Expr::Add(v) => {
                // Replace one Min-containing operand at a time.
                let mut out = vec![e.clone()];
                for (i, op) in v.iter().enumerate() {
                    for c in candidates(op) {
                        if &c != op {
                            let mut vv = v.clone();
                            vv[i] = c;
                            out.push(Expr::add(vv));
                        }
                    }
                }
                out
            }
            Expr::Mul(v) => {
                let mut out = vec![e.clone()];
                for (i, op) in v.iter().enumerate() {
                    for c in candidates(op) {
                        if &c != op {
                            let mut vv = v.clone();
                            vv[i] = c;
                            out.push(Expr::mul(vv));
                        }
                    }
                }
                out
            }
            other => vec![other.clone()],
        }
    }
    for cand in candidates(extent) {
        if is_free(&cand) {
            return Ok(cand);
        }
    }
    Err(SdfgError::transform(format!(
        "cannot derive a parameter-free size for extent `{extent}`"
    )))
}

/// `LocalStream` — accumulates stream pushes into a scope-local transient
/// stream that is flushed in bulk at scope exit (used in the BFS case
/// study to batch frontier updates).
pub struct LocalStream;

impl Transformation for LocalStream {
    fn name(&self) -> &'static str {
        "LocalStream"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        // Tasklet inside a map pushing directly to a global stream access.
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            let Ok(tree) = sdfg_core::scope::scope_tree(st) else {
                continue;
            };
            for n in st.graph.node_ids() {
                if !matches!(st.graph.node(n), Node::Tasklet { .. }) {
                    continue;
                }
                if tree.scope_of(n).is_none() {
                    continue;
                }
                for e in st.graph.out_edges(n) {
                    let dst = st.graph.edge_dst(e);
                    // The push edge may lead to the stream's access node
                    // directly or into the scope-exit chain (with the
                    // memlet naming the stream).
                    let m = &st.graph.edge(e).memlet;
                    if m.is_empty() {
                        continue;
                    }
                    let d = m.data_name();
                    if !matches!(sdfg.desc(d), Some(DataDesc::Stream(_))) {
                        continue;
                    }
                    let via_exit = st.graph.node(dst).is_scope_exit();
                    let via_access = st.graph.node(dst).access_data() == Some(d);
                    if !via_exit && !via_access {
                        continue;
                    }
                    // "Global" stream: non-transient, or referenced in more
                    // than one place (e.g. drained in a later state).
                    // An already-localized stream (single access) is
                    // skipped, making the transformation idempotent.
                    let global = !sdfg.desc(d).unwrap().transient()
                        || crate::helpers::access_count(sdfg, d) > 1;
                    if global {
                        out.push(TMatch::in_state(sid).with("tasklet", n).with("target", dst));
                    }
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let tasklet = m.try_node("tasklet")?;
        let target = m.try_node("target")?;
        let (edge, stream_data) = {
            let st = sdfg.state(m.state);
            let edge = st
                .graph
                .out_edges(tasklet)
                .find(|&e| {
                    st.graph.edge_dst(e) == target
                        && !st.graph.edge(e).memlet.is_empty()
                        && matches!(
                            sdfg.desc(st.graph.edge(e).memlet.data_name()),
                            Some(DataDesc::Stream(_))
                        )
                })
                .ok_or_else(|| SdfgError::transform("push edge vanished"))?;
            (
                edge,
                st.graph
                    .edge(e_data_name(st, edge))
                    .memlet
                    .data_name()
                    .to_string(),
            )
        };
        let dtype = sdfg.desc(&stream_data).unwrap().dtype();
        let local_name = sdfg.fresh_data_name(&format!("L{stream_data}"));
        sdfg.data
            .insert(local_name.clone(), DataDesc::Stream(StreamDesc::new(dtype)));
        let state = sdfg.state_mut(m.state);
        let target_is_exit = state.graph.node(target).is_scope_exit();
        if target_is_exit {
            // tasklet →(LS)→ exit(IN_LS); exit(OUT_LS) → localS → next hop
            // with the original stream memlet (the per-scope bulk flush).
            let df = state.graph.edge(edge).clone();
            // Retag the inner edge to the local stream.
            {
                let e = state.graph.edge_mut(edge);
                e.memlet.data = Some(local_name.clone());
                e.dst_conn = Some(format!("IN_{local_name}"));
            }
            // Find the outer continuation edge exit(OUT_S) → Y.
            let out_conn = format!("OUT_{stream_data}");
            let cont = state
                .graph
                .out_edges(target)
                .find(|&e2| state.graph.edge(e2).src_conn.as_deref() == Some(out_conn.as_str()))
                .ok_or_else(|| SdfgError::transform("stream edge not forwarded by exit"))?;
            let cont_df = state.graph.edge(cont).clone();
            let (_, y) = state.graph.edge_endpoints(cont);
            state.graph.remove_edge(cont);
            let local_acc = state.add_access(&local_name);
            state.add_edge(
                target,
                Some(&format!("OUT_{local_name}")),
                local_acc,
                None,
                Memlet::parse(&local_name, "0").dynamic(),
            );
            state.add_edge(
                local_acc,
                None,
                y,
                cont_df.dst_conn.as_deref(),
                cont_df.memlet.clone(),
            );
            let _ = df;
        } else {
            // Direct access target: tasklet → localS → S (drain-append).
            let df = state.graph.edge(edge).clone();
            state.graph.remove_edge(edge);
            let local_acc = state.add_access(&local_name);
            let mut lm = df.memlet.clone();
            lm.data = Some(local_name.clone());
            state.add_edge(tasklet, df.src_conn.as_deref(), local_acc, None, lm);
            state.add_edge(
                local_acc,
                None,
                target,
                None,
                Memlet::parse(&stream_data, "0").dynamic(),
            );
        }
        Ok(())
    }
}

/// Tiny helper keeping borrowck happy when reading an edge's stream name.
fn e_data_name(_st: &sdfg_core::State, e: sdfg_graph::EdgeId) -> sdfg_graph::EdgeId {
    e
}

/// `DoubleBuffering` — pipelines a copied-into transient with two buffers
/// alternating on a loop parameter (`p % 2`), enabling copy/compute overlap
/// on accelerator targets. Parameter `param`: the alternation parameter
/// (default: the innermost parameter of the enclosing map).
pub struct DoubleBuffering;

impl Transformation for DoubleBuffering {
    fn name(&self) -> &'static str {
        "DoubleBuffering"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        // A transient array copied into from a scope entry.
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            for n in st.graph.node_ids() {
                if !is_transient_access(sdfg, st, n) {
                    continue;
                }
                let Some(d) = st.graph.node(n).access_data() else {
                    continue;
                };
                if !matches!(sdfg.desc(d), Some(DataDesc::Array(_))) {
                    continue;
                }
                let from_entry = st
                    .graph
                    .in_edges(n)
                    .any(|e| st.graph.node(st.graph.edge_src(e)).is_scope_entry());
                if from_entry {
                    out.push(TMatch::in_state(sid).with("buffer", n));
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), SdfgError> {
        let acc = m.try_node("buffer")?;
        let data = {
            let st = sdfg.state(m.state);
            st.graph.node(acc).access_data().unwrap().to_string()
        };
        // Alternation parameter.
        let param = match params.str("param")? {
            Some(p) => p.to_string(),
            None => {
                let st = sdfg.state(m.state);
                let tree = sdfg_core::scope::scope_tree(st)
                    .map_err(|e| SdfgError::transform(e.to_string()))?;
                let entry = tree
                    .scope_of(acc)
                    .ok_or_else(|| SdfgError::transform("buffer not inside a scope"))?;
                crate::helpers::scope_of(st, entry)
                    .params
                    .last()
                    .cloned()
                    .ok_or_else(|| SdfgError::transform("scope has no parameters"))?
            }
        };
        // Extend the shape with a leading [2].
        match sdfg.desc_mut(&data) {
            Some(DataDesc::Array(a)) => {
                a.shape.insert(0, Expr::int(2));
                a.reset_strides();
            }
            _ => return Err(SdfgError::transform("buffer is not an array")),
        }
        // Rewrite every memlet on this container (in this state): prefix
        // subsets with `param % 2`.
        let alternating = SymRange::index(Expr::sym(param).modulo(Expr::int(2)));
        let state = sdfg.state_mut(m.state);
        let edges: Vec<EdgeId> = state.graph.edge_ids().collect();
        for e in edges {
            let df = state.graph.edge_mut(e);
            if df.memlet.data.as_deref() == Some(data.as_str()) {
                df.memlet.subset.dims.insert(0, alternating.clone());
            }
            if let Some(os) = &mut df.memlet.other_subset {
                // Copies INTO the buffer address it through other_subset.
                let points_at_buffer = df.memlet.data.as_deref() != Some(data.as_str());
                let dst_is_buffer = {
                    // The edge destination (or source) references the buffer.
                    true
                };
                if points_at_buffer && dst_is_buffer {
                    // Only adjust when the opposite endpoint is this buffer.
                    let (s, d) = state_endpoints_placeholder();
                    let _ = (s, d);
                }
                let _ = os;
            }
        }
        // Fix other_subset on edges whose *destination* is the buffer.
        let in_edges: Vec<EdgeId> = state.graph.in_edges(acc).collect();
        for e in in_edges {
            let df = state.graph.edge_mut(e);
            if df.memlet.data.as_deref() != Some(data.as_str()) {
                if let Some(os) = &mut df.memlet.other_subset {
                    os.dims.insert(0, alternating.clone());
                } else {
                    // Destination defaulted to the whole buffer: make it
                    // explicit with the alternation prefix.
                    let src_dims = df.memlet.subset.dims.clone();
                    let mut dims = vec![alternating.clone()];
                    dims.extend(
                        src_dims
                            .iter()
                            .map(|r| SymRange::new(Expr::zero(), r.end.clone() - r.start.clone())),
                    );
                    df.memlet.other_subset = Some(Subset::new(dims));
                }
            }
        }
        Ok(())
    }
}

// Placeholder kept out of the hot path; required because the borrow in the
// loop above cannot also inspect endpoints. (Handled by the in_edges pass.)
fn state_endpoints_placeholder() -> (u32, u32) {
    (0, 0)
}

/// `Vectorization` — marks the innermost map dimension with a vector width
/// after checking that accesses are contiguous in that parameter.
/// Execution semantics are unchanged; code generation emits vector types
/// and the accelerator models use the width for coalescing/II modeling.
/// Parameter `width` (default 4).
pub struct Vectorization;

impl Transformation for Vectorization {
    fn name(&self) -> &'static str {
        "Vectorization"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            let Ok(tree) = sdfg_core::scope::scope_tree(st) else {
                continue;
            };
            for n in crate::helpers::map_entries(st) {
                // Already vectorized: skip, so matching is idempotent (the
                // automatic pipeline re-finds until no matches remain).
                if crate::helpers::scope_of(st, n).vector_len.is_some() {
                    continue;
                }
                // Innermost: no nested scope entries among members.
                let members = sdfg_core::scope::scope_members(st, n);
                if members.iter().any(|&c| st.graph.node(c).is_scope_entry()) {
                    continue;
                }
                let _ = &tree;
                out.push(TMatch::in_state(sid).with("map", n));
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), SdfgError> {
        // A non-integer `width` is a hard error now — the old string API
        // silently fell back to 4 here.
        let width = params.int_or("width", 4)?;
        if width <= 0 {
            return Err(SdfgError::ParamParse {
                param: "width".to_string(),
                text: width.to_string(),
            });
        }
        let width = width as u32;
        let entry = m.try_node("map")?;
        // Contiguity check: the innermost parameter must appear only in the
        // last dimension of each memlet subset, with coefficient 1 (or not
        // at all).
        let (last_param, members) = {
            let st = sdfg.state(m.state);
            let sc = crate::helpers::scope_of(st, entry);
            let lp = sc
                .params
                .last()
                .cloned()
                .ok_or_else(|| SdfgError::transform("empty map"))?;
            (lp, sdfg_core::scope::scope_members(st, entry))
        };
        {
            let st = sdfg.state(m.state);
            let mut edges: Vec<EdgeId> = Vec::new();
            for &n in &members {
                edges.extend(st.graph.in_edges(n));
                edges.extend(st.graph.out_edges(n));
            }
            edges.sort_unstable();
            edges.dedup();
            for e in edges {
                let mlet = &st.graph.edge(e).memlet;
                if mlet.is_empty() {
                    continue;
                }
                let rank = mlet.subset.rank();
                for (d, r) in mlet.subset.dims.iter().enumerate() {
                    let uses = r.start.has_symbol(&last_param) || r.end.has_symbol(&last_param);
                    if uses && d + 1 != rank {
                        return Err(SdfgError::transform(format!(
                            "access `{mlet}` is not contiguous in `{last_param}`"
                        )));
                    }
                    if uses {
                        // Coefficient must be exactly 1.
                        let probe0 = r.start.subs(&last_param, &Expr::int(0));
                        let probe1 = r.start.subs(&last_param, &Expr::int(1));
                        let diff = probe1 - probe0;
                        if diff != Expr::one() && diff != Expr::zero() {
                            return Err(SdfgError::transform(format!(
                                "access `{mlet}` has stride {diff} in `{last_param}`"
                            )));
                        }
                    }
                }
            }
        }
        let st = sdfg.state_mut(m.state);
        crate::helpers::scope_of_mut(st, entry).vector_len = Some(width);
        Ok(())
    }

    fn cost_hint(&self, _sdfg: &Sdfg, _m: &TMatch, _env: &Env) -> CostHint {
        // Metadata-only on this runtime (the CPU engine's inner loops are
        // auto-vectorized regardless); harmless either way.
        CostHint::Neutral
    }
}

/// `RedundantArray` — removes a transient array that is only copied into
/// another array (Appendix D). Strict.
pub struct RedundantArray;

impl Transformation for RedundantArray {
    fn name(&self) -> &'static str {
        "RedundantArray"
    }

    fn strict(&self) -> bool {
        true
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let pattern = Pattern {
                roles: vec![("in_array", is_transient_access), ("out_array", is_access)],
                edges: vec![(0, 1)],
            };
            for m in find_pattern(sdfg, sid, &pattern) {
                let st = sdfg.state(sid);
                let a = m["in_array"];
                let b = m["out_array"];
                // Out-degree one (only the copy).
                if st.graph.out_degree(a) != 1 {
                    continue;
                }
                let a_data = st.graph.node(a).access_data().unwrap();
                let b_data = st.graph.node(b).access_data().unwrap();
                if a_data == b_data {
                    continue;
                }
                // Single occurrence anywhere.
                if crate::helpers::access_count(sdfg, a_data) != 1 {
                    continue;
                }
                // Same storage and shape (strict mode of Appendix D).
                let (da, db) = (sdfg.desc(a_data).unwrap(), sdfg.desc(b_data).unwrap());
                if da.storage() != db.storage() || da.shape() != db.shape() {
                    continue;
                }
                out.push(TMatch {
                    state: sid,
                    nodes: m,
                    states: Default::default(),
                });
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let a = m.try_node("in_array")?;
        let b = m.try_node("out_array")?;
        let state = sdfg.state_mut(m.state);
        let a_data = state.graph.node(a).access_data().unwrap().to_string();
        let b_data = state.graph.node(b).access_data().unwrap().to_string();
        // Redirect all incoming edges of `a` to `b`, renaming memlet data.
        let in_edges: Vec<EdgeId> = state.graph.in_edges(a).collect();
        for e in in_edges {
            let mut df = state.graph.edge(e).clone();
            let src = state.graph.edge_src(e);
            if df.memlet.data.as_deref() == Some(a_data.as_str()) {
                df.memlet.data = Some(b_data.clone());
            }
            state.graph.remove_edge(e);
            state.graph.add_edge(src, b, df);
        }
        // Rename remaining memlets referencing `a` anywhere in the state
        // (paths through scope exits).
        let edges: Vec<EdgeId> = state.graph.edge_ids().collect();
        for e in edges {
            let df = state.graph.edge_mut(e);
            if df.memlet.data.as_deref() == Some(a_data.as_str()) {
                df.memlet.data = Some(b_data.clone());
            }
        }
        state.graph.remove_node(a);
        sdfg.data.remove(&a_data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{apply_first, apply_strict, Params};
    use sdfg_core::{DType, Wcr};
    use sdfg_frontend::SdfgBuilder;

    #[test]
    fn redundant_array_removed() {
        // t1 → tmp → B  with tmp transient same-shape: tmp removed.
        let mut b = SdfgBuilder::new("ra");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.transient("tmp", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 5",
            &[("o", "tmp", "i")],
        );
        b.copy(st, "tmp", "0:N", "B", "0:N");
        let mut sdfg = b.build().unwrap();
        let applied = apply_strict(&mut sdfg).unwrap();
        assert!(applied >= 1);
        assert!(sdfg.desc("tmp").is_none());
        sdfg.validate().expect("valid after RedundantArray");
        // Semantics: B = A + 5.
        let mut it = sdfg_interp::Interpreter::new(&sdfg);
        it.set_symbol("N", 4);
        it.set_array("A", vec![1.0, 2.0, 3.0, 4.0]);
        it.set_array("B", vec![0.0; 4]);
        it.run().unwrap();
        assert_eq!(it.array("B"), &[6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn local_storage_inserts_tile_buffer() {
        // Tiled copy: outer tile map over i_tile, inner map over i.
        let mut b = SdfgBuilder::new("ls");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "B", "i")],
        );
        let mut sdfg = b.build().unwrap();
        // Tile then expand to create the two-scope structure.
        let tp = Params::new().with("tile_sizes", 8i64);
        apply_first(&mut sdfg, &crate::map_transforms::MapTiling, &tp).unwrap();
        apply_first(
            &mut sdfg,
            &crate::map_transforms::MapExpansion,
            &Params::new(),
        )
        .unwrap();
        sdfg.validate().expect("valid after tiling+expansion");
        let lp = Params::new().with("data", "A");
        apply_first(&mut sdfg, &LocalStorage, &lp).unwrap();
        sdfg.validate().expect("valid after LocalStorage");
        assert!(sdfg.desc("local_A").is_some());
        let desc = sdfg.desc("local_A").unwrap();
        assert_eq!(desc.shape().len(), 1);
        assert_eq!(desc.shape()[0], Expr::int(8)); // tile-sized
                                                   // Semantics preserved (boundary tiles too: N not divisible by 8).
        let mut it = sdfg_interp::Interpreter::new(&sdfg);
        it.set_symbol("N", 21);
        it.set_array("A", (0..21).map(|x| x as f64).collect());
        it.set_array("B", vec![0.0; 21]);
        it.run().unwrap();
        let expect: Vec<f64> = (0..21).map(|x| 2.0 * x as f64).collect();
        assert_eq!(it.array("B"), expect.as_slice());
    }

    #[test]
    fn vectorization_marks_map() {
        let mut b = SdfgBuilder::new("v");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "B", "i")],
        );
        let mut sdfg = b.build().unwrap();
        let p = Params::new().with("width", 8i64);
        assert!(apply_first(&mut sdfg, &Vectorization, &p).unwrap());
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(crate::helpers::scope_of(st, me).vector_len, Some(8));
    }

    #[test]
    fn vectorization_rejects_strided_access() {
        let mut b = SdfgBuilder::new("v2");
        b.symbol("N");
        b.array("A", &["N", "N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let st = b.state("main");
        // Column access: B[i] = A[i, 0] is fine; A[0, i] okay;
        // A[i, i] has the param in a non-last and last dim? Use A[i*2]
        // equivalent: subset "2*i" in last dim → stride 2, rejected.
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "0, 2*i")],
            "o = a",
            &[("o", "B", "i")],
        );
        let mut sdfg = b.build().unwrap();
        assert!(apply_first(&mut sdfg, &Vectorization, &Params::new()).is_err());
    }

    #[test]
    fn double_buffering_preserves_semantics() {
        // Tile copy into transient then compute, inside a sequential map.
        let mut b = SdfgBuilder::new("db");
        b.symbol("N");
        b.array("A", &["N", "4"], DType::F64);
        b.transient("buf", &["4"], DType::F64);
        b.array("B", &["N", "4"], DType::F64);
        let st_id = b.state("main");
        {
            let st = b.sdfg.state_mut(st_id);
            let a = st.add_access("A");
            let (me, mx) = st.add_map(sdfg_core::node::MapScope::new(
                "rows",
                vec!["r".into()],
                vec![SymRange::new(0, "N")],
            ));
            let buf = st.add_access("buf");
            let t = st.add_tasklet("t", &["x"], &["y"], "y = x * 10");
            let (ie, ix) = st.add_map(sdfg_core::node::MapScope::new(
                "cols",
                vec!["c".into()],
                vec![SymRange::new(0, 4)],
            ));
            let out = st.add_access("B");
            st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N, 0:4"));
            st.add_edge(me, Some("OUT_A"), buf, None, Memlet::parse("A", "r, 0:4"));
            st.add_edge(buf, None, ie, Some("IN_buf"), Memlet::parse("buf", "0:4"));
            st.add_edge(ie, Some("OUT_buf"), t, Some("x"), Memlet::parse("buf", "c"));
            st.add_edge(t, Some("y"), ix, Some("IN_B"), Memlet::parse("B", "r, c"));
            st.add_edge(
                ix,
                Some("OUT_B"),
                mx,
                Some("IN_B"),
                Memlet::parse("B", "r, 0:4"),
            );
            st.add_edge(mx, Some("OUT_B"), out, None, Memlet::parse("B", "0:N, 0:4"));
        }
        let mut sdfg = b.build_unvalidated();
        sdfg.validate().expect("valid before");
        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_symbol("N", 3);
            it.set_array("A", (0..12).map(|x| x as f64).collect());
            it.set_array("B", vec![0.0; 12]);
            it.run().unwrap();
            it.array("B").to_vec()
        };
        let before = run(&sdfg);
        let p = Params::new().with("param", "r");
        assert!(apply_first(&mut sdfg, &DoubleBuffering, &p).unwrap());
        sdfg.validate().expect("valid after double buffering");
        // Shape extended to [2, 4].
        assert_eq!(sdfg.desc("buf").unwrap().shape().len(), 2);
        assert_eq!(run(&sdfg), before);
    }

    #[test]
    fn local_stream_batches_pushes() {
        // Map pushing matches into a global stream → localized.
        let mut sdfg = Sdfg::new("q");
        sdfg.add_symbol("N");
        sdfg.add_array("A", &["N"], DType::F64);
        sdfg.add_stream("S", DType::F64);
        sdfg.add_array("out", &["N"], DType::F64);
        sdfg.add_array("count", &["1"], DType::F64);
        let sid = sdfg.add_state("main");
        let st = sdfg.state_mut(sid);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(sdfg_core::node::MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet(
            "filter",
            &["x"],
            &["S_out", "c"],
            "if x > 10:\n    S_out.push(x)\n    c = 1\nelse:\n    c = 0",
        );
        let s_acc = st.add_access("S");
        let cnt = st.add_access("count");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(
            t,
            Some("S_out"),
            s_acc,
            None,
            Memlet::parse("S", "0").dynamic(),
        );
        st.add_edge(
            t,
            Some("c"),
            mx,
            Some("IN_count"),
            Memlet::parse("count", "0").with_wcr(Wcr::Sum),
        );
        st.add_edge(
            mx,
            Some("OUT_count"),
            cnt,
            None,
            Memlet::parse("count", "0").with_wcr(Wcr::Sum),
        );
        // Drain stream into out.
        let sid2 = sdfg.add_state("drain");
        sdfg.add_transition(sid, sid2, sdfg_core::sdfg::InterstateEdge::always());
        let st2 = sdfg.state_mut(sid2);
        let s2 = st2.add_access("S");
        let o2 = st2.add_access("out");
        st2.add_plain_edge(
            s2,
            o2,
            Memlet::parse("S", "0").with_other_subset(Subset::parse("0:N").unwrap()),
        );
        sdfg.validate().expect("valid before LocalStream");

        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_symbol("N", 6);
            it.set_array("A", vec![5.0, 20.0, 7.0, 30.0, 1.0, 40.0]);
            it.set_array("out", vec![0.0; 6]);
            it.set_array("count", vec![0.0]);
            it.run().unwrap();
            (it.array("count")[0], it.array("out").to_vec())
        };
        let (c_before, _) = run(&sdfg);
        assert_eq!(c_before, 3.0);
        assert!(apply_first(&mut sdfg, &LocalStream, &Params::new()).unwrap());
        sdfg.validate().expect("valid after LocalStream");
        let (c_after, out_after) = run(&sdfg);
        assert_eq!(c_after, 3.0);
        // All three filtered values present (order may vary).
        let mut vals: Vec<f64> = out_after.into_iter().filter(|&v| v != 0.0).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![20.0, 30.0, 40.0]);
    }
}
