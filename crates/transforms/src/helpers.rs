//! Graph-surgery helpers shared by the transformations, including the
//! VF2-backed pattern finder.

use sdfg_core::sdfg::Dataflow;
use sdfg_core::{Node, Sdfg, State, StateId};
use sdfg_graph::vf2::{find_subgraph_matches, MatchOptions};
use sdfg_graph::{EdgeId, MultiGraph, NodeId};
use std::collections::BTreeMap;

/// A node-kind predicate for pattern roles.
pub type NodePred = fn(&Sdfg, &State, NodeId) -> bool;

/// A declarative pattern: named roles with predicates, plus edges between
/// role indices. Matching runs VF2 subgraph monomorphism over the state
/// multigraph (paper §4.1).
pub struct Pattern {
    /// Role names and predicates, in index order.
    pub roles: Vec<(&'static str, NodePred)>,
    /// Directed edges between role indices.
    pub edges: Vec<(usize, usize)>,
}

/// Finds all occurrences of `pattern` in one state.
pub fn find_pattern(sdfg: &Sdfg, sid: StateId, pattern: &Pattern) -> Vec<BTreeMap<String, NodeId>> {
    let state = sdfg.state(sid);
    // Build the pattern multigraph.
    let mut pg: MultiGraph<usize, ()> = MultiGraph::new();
    let pids: Vec<NodeId> = (0..pattern.roles.len()).map(|i| pg.add_node(i)).collect();
    for &(a, b) in &pattern.edges {
        pg.add_edge(pids[a], pids[b], ());
    }
    let matches = find_subgraph_matches(
        &pg,
        &state.graph,
        &|_pid, role_idx, hid, _n| (pattern.roles[*role_idx].1)(sdfg, state, hid),
        &|_, _| true,
        MatchOptions::default(),
    );
    matches
        .into_iter()
        .map(|m| {
            let mut out = BTreeMap::new();
            for (i, pid) in pids.iter().enumerate() {
                out.insert(pattern.roles[i].0.to_string(), m[pid]);
            }
            out
        })
        .collect()
}

// --- node predicates -----------------------------------------------------------

/// Any map entry.
pub fn is_map_entry(_: &Sdfg, st: &State, n: NodeId) -> bool {
    matches!(st.graph.node(n), Node::MapEntry(_))
}

/// Any map exit.
pub fn is_map_exit(_: &Sdfg, st: &State, n: NodeId) -> bool {
    matches!(st.graph.node(n), Node::MapExit { .. })
}

/// Any access node.
pub fn is_access(_: &Sdfg, st: &State, n: NodeId) -> bool {
    matches!(st.graph.node(n), Node::Access { .. })
}

/// Access node whose container is transient.
pub fn is_transient_access(sdfg: &Sdfg, st: &State, n: NodeId) -> bool {
    st.graph
        .node(n)
        .access_data()
        .and_then(|d| sdfg.desc(d))
        .is_some_and(|d| d.transient())
}

/// Any reduce node.
pub fn is_reduce(_: &Sdfg, st: &State, n: NodeId) -> bool {
    matches!(st.graph.node(n), Node::Reduce { .. })
}

/// Any tasklet.
pub fn is_tasklet(_: &Sdfg, st: &State, n: NodeId) -> bool {
    matches!(st.graph.node(n), Node::Tasklet { .. })
}

// --- surgery ---------------------------------------------------------------------

/// Redirects an edge to a new destination (keeping payload).
pub fn redirect_edge_dst(state: &mut State, e: EdgeId, new_dst: NodeId, new_conn: Option<String>) {
    let (src, _) = state.graph.edge_endpoints(e);
    let mut df: Dataflow = state.graph.edge(e).clone();
    df.dst_conn = new_conn;
    state.graph.remove_edge(e);
    state.graph.add_edge(src, new_dst, df);
}

/// Redirects an edge to a new source (keeping payload).
pub fn redirect_edge_src(state: &mut State, e: EdgeId, new_src: NodeId, new_conn: Option<String>) {
    let (_, dst) = state.graph.edge_endpoints(e);
    let mut df: Dataflow = state.graph.edge(e).clone();
    df.src_conn = new_conn;
    state.graph.remove_edge(e);
    state.graph.add_edge(new_src, dst, df);
}

/// All map entries of a state, with their scopes.
pub fn map_entries(state: &State) -> Vec<NodeId> {
    state
        .graph
        .node_ids()
        .filter(|&n| matches!(state.graph.node(n), Node::MapEntry(_)))
        .collect()
}

/// Returns the `MapScope` of an entry (panics otherwise).
pub fn scope_of(state: &State, entry: NodeId) -> &sdfg_core::node::MapScope {
    match state.graph.node(entry) {
        Node::MapEntry(m) => m,
        _ => panic!("not a map entry"),
    }
}

/// Mutable `MapScope`.
pub fn scope_of_mut(state: &mut State, entry: NodeId) -> &mut sdfg_core::node::MapScope {
    match state.graph.node_mut(entry) {
        Node::MapEntry(m) => m,
        _ => panic!("not a map entry"),
    }
}

/// Number of access nodes (across all states) referring to `data`.
pub fn access_count(sdfg: &Sdfg, data: &str) -> usize {
    sdfg.graph
        .node_ids()
        .map(|sid| {
            sdfg.graph
                .node(sid)
                .graph
                .node_ids()
                .filter(|&n| sdfg.graph.node(sid).graph.node(n).access_data() == Some(data))
                .count()
        })
        .sum()
}

/// Renames the data container referenced by all memlets on a path of edges.
pub fn rename_memlet_data(state: &mut State, edges: &[EdgeId], from: &str, to: &str) {
    for &e in edges {
        let df = state.graph.edge_mut(e);
        if df.memlet.data.as_deref() == Some(from) {
            df.memlet.data = Some(to.to_string());
        }
    }
}

/// Finds a read access node (in-degree 0) for `data`, creating one if
/// absent.
pub fn find_read_access(state: &mut State, data: &str) -> NodeId {
    let found = state.graph.node_ids().find(|&n| {
        state.graph.node(n).access_data() == Some(data) && state.graph.in_degree(n) == 0
    });
    match found {
        Some(n) => n,
        None => state.add_access(data),
    }
}

/// Fresh symbol name not colliding with SDFG symbols or any map parameter.
pub fn fresh_param(sdfg: &Sdfg, base: &str) -> String {
    let mut used: std::collections::BTreeSet<String> = sdfg.symbols.clone();
    for sid in sdfg.graph.node_ids() {
        let st = sdfg.graph.node(sid);
        for n in st.graph.node_ids() {
            if let Node::MapEntry(m) = st.graph.node(n) {
                used.extend(m.params.iter().cloned());
            }
        }
    }
    if !used.contains(base) {
        return base.to_string();
    }
    for i in 0.. {
        let cand = format!("{base}_{i}");
        if !used.contains(&cand) {
            return cand;
        }
    }
    unreachable!()
}

/// Stable dependency sort of map parameters: a parameter whose range
/// references another parameter of the same map must be bound (listed)
/// after it. Order among independent parameters is preserved. Cyclic
/// references (invalid anyway) are left as-is and caught by validation.
pub fn dependency_sort_params(params: &mut Vec<String>, ranges: &mut Vec<sdfg_symbolic::SymRange>) {
    let n = params.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let mut picked = None;
        for (slot, &i) in remaining.iter().enumerate() {
            let mut syms = std::collections::BTreeSet::new();
            ranges[i].collect_symbols(&mut syms);
            let depends = remaining
                .iter()
                .any(|&j| j != i && syms.contains(&params[j]));
            if !depends {
                picked = Some(slot);
                break;
            }
        }
        // A cycle: bail out, keeping the residual order.
        let Some(slot) = picked else {
            order.extend(remaining.iter().copied());
            break;
        };
        order.push(remaining.remove(slot));
    }
    let new_params: Vec<String> = order.iter().map(|&i| params[i].clone()).collect();
    let new_ranges: Vec<sdfg_symbolic::SymRange> =
        order.iter().map(|&i| ranges[i].clone()).collect();
    *params = new_params;
    *ranges = new_ranges;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::node::MapScope;
    use sdfg_core::{DType, Memlet};
    use sdfg_symbolic::SymRange;

    fn simple_sdfg() -> Sdfg {
        let mut s = Sdfg::new("t");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_transient("tmp", &["N"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x");
        let tmp = st.add_access("tmp");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("y"), mx, Some("IN_tmp"), Memlet::parse("tmp", "i"));
        st.add_edge(mx, Some("OUT_tmp"), tmp, None, Memlet::parse("tmp", "0:N"));
        s
    }

    #[test]
    fn pattern_finds_map_tasklet() {
        let s = simple_sdfg();
        let pattern = Pattern {
            roles: vec![("entry", is_map_entry), ("tasklet", is_tasklet)],
            edges: vec![(0, 1)],
        };
        let sid = s.start.unwrap();
        let found = find_pattern(&s, sid, &pattern);
        assert_eq!(found.len(), 1);
        assert!(matches!(
            s.state(sid).graph.node(found[0]["entry"]),
            Node::MapEntry(_)
        ));
    }

    #[test]
    fn pattern_respects_predicates() {
        let s = simple_sdfg();
        let pattern = Pattern {
            roles: vec![("exit", is_map_exit), ("out", is_transient_access)],
            edges: vec![(0, 1)],
        };
        let found = find_pattern(&s, s.start.unwrap(), &pattern);
        assert_eq!(found.len(), 1);
        // Non-transient access does not match the transient role.
        let pattern2 = Pattern {
            roles: vec![("acc", is_transient_access), ("entry", is_map_entry)],
            edges: vec![(0, 1)],
        };
        assert!(find_pattern(&s, s.start.unwrap(), &pattern2).is_empty());
    }

    #[test]
    fn access_counting() {
        let s = simple_sdfg();
        assert_eq!(access_count(&s, "A"), 1);
        assert_eq!(access_count(&s, "tmp"), 1);
        assert_eq!(access_count(&s, "nope"), 0);
    }

    #[test]
    fn fresh_param_avoids_collisions() {
        let s = simple_sdfg();
        assert_eq!(fresh_param(&s, "i"), "i_0"); // `i` is a map param
        assert_eq!(fresh_param(&s, "q"), "q");
    }
}
