//! Transformation chains: recorded sequences of (transformation, params)
//! that can be saved to text and replayed — DIODE's "optimization version
//! control" (§4.2), which lets a performance engineer diverge from a
//! mid-point of a chain when retuning for a different architecture.

use crate::framework::{apply_first, by_name, Params, TransformError};
use sdfg_core::Sdfg;
use std::fmt;

/// One recorded application.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// Transformation name (registry key).
    pub name: String,
    /// Parameters.
    pub params: Params,
}

/// A replayable sequence of transformation applications.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Chain {
    /// The steps, in application order.
    pub steps: Vec<Step>,
}

impl Chain {
    /// Empty chain.
    pub fn new() -> Chain {
        Chain::default()
    }

    /// Appends a step (builder style).
    pub fn then(mut self, name: &str, params: &[(&str, &str)]) -> Chain {
        self.steps.push(Step {
            name: name.to_string(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
        self
    }

    /// Applies every step in order (first match each). Errors if a step's
    /// transformation is unknown, fails, or has no match.
    pub fn apply(&self, sdfg: &mut Sdfg) -> Result<(), TransformError> {
        for (i, step) in self.steps.iter().enumerate() {
            let t = by_name(&step.name).ok_or_else(|| {
                TransformError::new(format!("unknown transformation `{}`", step.name))
            })?;
            let applied = apply_first(sdfg, t.as_ref(), &step.params)?;
            if !applied {
                return Err(TransformError::new(format!(
                    "step {i}: `{}` found no match",
                    step.name
                )));
            }
        }
        Ok(())
    }

    /// Applies only the first `n` steps (diverging from a mid-point).
    pub fn apply_prefix(&self, sdfg: &mut Sdfg, n: usize) -> Result<(), TransformError> {
        Chain {
            steps: self.steps[..n.min(self.steps.len())].to_vec(),
        }
        .apply(sdfg)
    }

    /// Serializes to the line-oriented text format:
    /// `MapTiling tile_sizes=32,32 dims=0,1`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&s.name);
            for (k, v) in &s.params {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format (inverse of [`Chain::to_text`]).
    pub fn from_text(text: &str) -> Result<Chain, TransformError> {
        let mut steps = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap().to_string();
            let mut params = Params::new();
            for p in parts {
                let Some((k, v)) = p.split_once('=') else {
                    return Err(TransformError::new(format!(
                        "line {}: malformed parameter `{p}`",
                        lineno + 1
                    )));
                };
                params.insert(k.to_string(), v.to_string());
            }
            steps.push(Step { name, params });
        }
        Ok(Chain { steps })
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;

    fn sample() -> Sdfg {
        let mut b = SdfgBuilder::new("c");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "A", "i")],
        );
        b.build().unwrap()
    }

    #[test]
    fn chain_roundtrip_text() {
        let c = Chain::new()
            .then("MapTiling", &[("tile_sizes", "16")])
            .then("Vectorization", &[("width", "4")]);
        let text = c.to_text();
        let back = Chain::from_text(&text).unwrap();
        assert_eq!(c, back);
        // Comments and blanks tolerated.
        let with_comments = format!("# tuned for xeon\n\n{text}");
        assert_eq!(Chain::from_text(&with_comments).unwrap(), c);
    }

    #[test]
    fn chain_applies_in_order() {
        let mut sdfg = sample();
        let c = Chain::new()
            .then("MapTiling", &[("tile_sizes", "8")])
            .then("Vectorization", &[("width", "4")]);
        c.apply(&mut sdfg).unwrap();
        sdfg.validate().expect("valid after chain");
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        let sc = crate::helpers::scope_of(st, me);
        assert_eq!(sc.params.len(), 2); // tiled
        assert_eq!(sc.vector_len, Some(4)); // vectorized
    }

    #[test]
    fn chain_prefix_diverges_midpoint() {
        let mut sdfg = sample();
        let c = Chain::new()
            .then("MapTiling", &[("tile_sizes", "8")])
            .then("Vectorization", &[("width", "4")]);
        c.apply_prefix(&mut sdfg, 1).unwrap();
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(crate::helpers::scope_of(st, me).vector_len, None);
    }

    #[test]
    fn chain_errors_are_reported() {
        let mut sdfg = sample();
        let bad = Chain::new().then("NoSuch", &[]);
        assert!(bad.apply(&mut sdfg).is_err());
        let nomatch = Chain::new().then("MapCollapse", &[]); // nothing nested
        assert!(nomatch.apply(&mut sdfg).is_err());
        assert!(Chain::from_text("MapTiling sizes").is_err());
    }
}
