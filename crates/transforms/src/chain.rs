//! Transformation chains: recorded sequences of (transformation, params)
//! that can be saved to text and replayed — DIODE's "optimization version
//! control" (§4.2), which lets a performance engineer diverge from a
//! mid-point of a chain when retuning for a different architecture.

use crate::framework::{by_name, ParamValue, Params, TMatch};
use sdfg_core::{Sdfg, SdfgError, StateId};
use sdfg_graph::NodeId;
use std::fmt;

/// One recorded application.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// Transformation name (registry key).
    pub name: String,
    /// Parameters.
    pub params: Params,
}

/// One transformation that actually fired: where it matched and which nodes
/// played which roles. Returned by [`Chain::apply`] and accumulated by the
/// automatic pipeline; `harness --opt --profile` prints these.
#[derive(Clone, Debug, PartialEq)]
pub struct AppliedStep {
    /// Transformation name.
    pub transform: String,
    /// State the match anchored in.
    pub state: StateId,
    /// Role name → matched node, in role order.
    pub node_roles: Vec<(String, NodeId)>,
    /// Role name → matched state (multi-state patterns), in role order.
    pub state_roles: Vec<(String, StateId)>,
}

impl AppliedStep {
    /// Records the match a transformation was applied at.
    pub fn from_match(transform: &str, m: &TMatch) -> AppliedStep {
        AppliedStep {
            transform: transform.to_string(),
            state: m.state,
            node_roles: m.nodes.iter().map(|(r, &n)| (r.clone(), n)).collect(),
            state_roles: m.states.iter().map(|(r, &s)| (r.clone(), s)).collect(),
        }
    }
}

impl fmt::Display for AppliedStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ state {}", self.transform, self.state.0)?;
        let mut sep = " (";
        for (role, n) in &self.node_roles {
            write!(f, "{sep}{role}=n{}", n.0)?;
            sep = ", ";
        }
        for (role, s) in &self.state_roles {
            write!(f, "{sep}{role}=s{}", s.0)?;
            sep = ", ";
        }
        if sep == ", " {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// What a chain (or pipeline phase) actually did: one entry per fired
/// transformation, in application order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ApplyReport {
    /// Fired applications, in order.
    pub steps: Vec<AppliedStep>,
}

impl ApplyReport {
    /// Empty report.
    pub fn new() -> ApplyReport {
        ApplyReport::default()
    }

    /// Number of fired applications.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a fired application.
    pub fn push(&mut self, step: AppliedStep) {
        self.steps.push(step);
    }

    /// Appends all of `other`'s applications.
    pub fn extend(&mut self, other: ApplyReport) {
        self.steps.extend(other.steps);
    }
}

impl fmt::Display for ApplyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {s}", i + 1)?;
        }
        Ok(())
    }
}

/// A replayable sequence of transformation applications.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Chain {
    /// The steps, in application order.
    pub steps: Vec<Step>,
}

impl Chain {
    /// Empty chain.
    pub fn new() -> Chain {
        Chain::default()
    }

    /// Appends a step (builder style). Textual parameter values are parsed
    /// into their typed form ([`ParamValue::from_text`]).
    pub fn then(mut self, name: &str, params: &[(&str, &str)]) -> Chain {
        let mut p = Params::new();
        for (k, v) in params {
            p.set_text(k, v);
        }
        self.steps.push(Step {
            name: name.to_string(),
            params: p,
        });
        self
    }

    /// Applies every step in order (first match each), returning where each
    /// one fired. Errors if a step's transformation is unknown, fails, or
    /// has no match.
    pub fn apply(&self, sdfg: &mut Sdfg) -> Result<ApplyReport, SdfgError> {
        let mut report = ApplyReport::new();
        for (i, step) in self.steps.iter().enumerate() {
            let t = by_name(&step.name).ok_or_else(|| SdfgError::UnknownTransform {
                name: step.name.clone(),
            })?;
            let matches = t.find(sdfg);
            let Some(m) = matches.first() else {
                return Err(SdfgError::NoMatch {
                    name: step.name.clone(),
                    step: Some(i),
                });
            };
            t.apply(sdfg, m, &step.params)?;
            sdfg_core::propagate::propagate_sdfg(sdfg);
            report.push(AppliedStep::from_match(&step.name, m));
        }
        Ok(report)
    }

    /// Applies only the first `n` steps (diverging from a mid-point).
    pub fn apply_prefix(&self, sdfg: &mut Sdfg, n: usize) -> Result<ApplyReport, SdfgError> {
        Chain {
            steps: self.steps[..n.min(self.steps.len())].to_vec(),
        }
        .apply(sdfg)
    }

    /// Serializes to the line-oriented text format:
    /// `MapTiling tile_sizes=32,32 dims=0,1`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&s.name);
            for (k, v) in s.params.iter() {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(&v.to_text());
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format (inverse of [`Chain::to_text`]).
    pub fn from_text(text: &str) -> Result<Chain, SdfgError> {
        let mut steps = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap().to_string();
            let mut params = Params::new();
            for p in parts {
                let Some((k, v)) = p.split_once('=') else {
                    return Err(SdfgError::ParamParse {
                        param: format!("line {}", lineno + 1),
                        text: p.to_string(),
                    });
                };
                params.set(k, ParamValue::from_text(v));
            }
            steps.push(Step { name, params });
        }
        Ok(Chain { steps })
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;

    fn sample() -> Sdfg {
        let mut b = SdfgBuilder::new("c");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "A", "i")],
        );
        b.build().unwrap()
    }

    #[test]
    fn chain_roundtrip_text() {
        let c = Chain::new()
            .then("MapTiling", &[("tile_sizes", "16")])
            .then("Vectorization", &[("width", "4")]);
        let text = c.to_text();
        let back = Chain::from_text(&text).unwrap();
        assert_eq!(c, back);
        // Comments and blanks tolerated.
        let with_comments = format!("# tuned for xeon\n\n{text}");
        assert_eq!(Chain::from_text(&with_comments).unwrap(), c);
    }

    #[test]
    fn chain_applies_in_order_and_reports() {
        let mut sdfg = sample();
        let c = Chain::new()
            .then("MapTiling", &[("tile_sizes", "8")])
            .then("Vectorization", &[("width", "4")]);
        let report = c.apply(&mut sdfg).unwrap();
        sdfg.validate().expect("valid after chain");
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        let sc = crate::helpers::scope_of(st, me);
        assert_eq!(sc.params.len(), 2); // tiled
        assert_eq!(sc.vector_len, Some(4)); // vectorized
        assert_eq!(report.len(), 2);
        assert_eq!(report.steps[0].transform, "MapTiling");
        assert_eq!(report.steps[1].transform, "Vectorization");
        let rendered = report.to_string();
        assert!(rendered.contains("MapTiling @ state"), "{rendered}");
        assert!(rendered.contains("map=n"), "{rendered}");
    }

    #[test]
    fn chain_prefix_diverges_midpoint() {
        let mut sdfg = sample();
        let c = Chain::new()
            .then("MapTiling", &[("tile_sizes", "8")])
            .then("Vectorization", &[("width", "4")]);
        let report = c.apply_prefix(&mut sdfg, 1).unwrap();
        assert_eq!(report.len(), 1);
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(crate::helpers::scope_of(st, me).vector_len, None);
    }

    #[test]
    fn chain_errors_carry_codes() {
        let mut sdfg = sample();
        let bad = Chain::new().then("NoSuch", &[]);
        assert_eq!(bad.apply(&mut sdfg).unwrap_err().code(), "SDFG-T002");
        let nomatch = Chain::new().then("MapCollapse", &[]); // nothing nested
        assert_eq!(nomatch.apply(&mut sdfg).unwrap_err().code(), "SDFG-T003");
        assert_eq!(
            Chain::from_text("MapTiling sizes").unwrap_err().code(),
            "SDFG-P002"
        );
    }
}
