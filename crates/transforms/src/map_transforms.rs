//! Map-scope transformations (Appendix B, "Map transformations").

use crate::framework::{CostHint, Params, TMatch, Transformation};
use crate::helpers::{
    find_pattern, is_access, is_map_entry, is_map_exit, is_reduce, is_transient_access,
    redirect_edge_dst, redirect_edge_src, scope_of, scope_of_mut, Pattern,
};
use sdfg_core::sdfg::InterstateEdge;
use sdfg_core::{Memlet, Node, Sdfg, SdfgError, StateId, Subset, SymRange, Wcr};
use sdfg_graph::EdgeId;
use sdfg_symbolic::{Env, Expr};

/// `MapTiling` — applies orthogonal tiling to a map.
///
/// Each tiled dimension `i ∈ b:e:s` becomes a pair `i_tile ∈ b:e:(s·T)`,
/// `i ∈ i_tile : min(i_tile + s·T, e) : s`, with tile dimensions placed
/// before the original ones. Parameters: `tile_sizes` (comma list, default
/// `32`), `dims` (comma list of dimension indices, default: all).
pub struct MapTiling;

impl Transformation for MapTiling {
    fn name(&self) -> &'static str {
        "MapTiling"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            for n in st.graph.node_ids() {
                if matches!(st.graph.node(n), Node::MapEntry(_)) {
                    out.push(TMatch::in_state(sid).with("map", n));
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), SdfgError> {
        let tile_sizes: Vec<i64> = params
            .dims("tile_sizes")?
            .map(|ds| ds.into_iter().map(|d| d as i64).collect())
            .unwrap_or_else(|| vec![32]);
        if tile_sizes.is_empty() {
            return Err(SdfgError::ParamParse {
                param: "tile_sizes".to_string(),
                text: "<empty list>".to_string(),
            });
        }
        let entry = m.try_node("map")?;
        // Fresh tile-parameter names must be chosen against the whole SDFG.
        let ndims = scope_of(sdfg.state(m.state), entry).params.len();
        let dims = params.dims("dims")?.unwrap_or_else(|| (0..ndims).collect());
        let mut new_params = Vec::new();
        let mut new_ranges = Vec::new();
        {
            let scope_params: Vec<String> = scope_of(sdfg.state(m.state), entry).params.clone();
            let scope_ranges: Vec<SymRange> = scope_of(sdfg.state(m.state), entry).ranges.clone();
            for (k, &d) in dims.iter().enumerate() {
                if d >= ndims {
                    return Err(SdfgError::transform(format!("dimension {d} out of range")));
                }
                let t = tile_sizes[k.min(tile_sizes.len() - 1)];
                if t <= 1 {
                    continue;
                }
                let tp = crate::helpers::fresh_param(sdfg, &format!("{}_tile", scope_params[d]));
                let r = &scope_ranges[d];
                let coarse_step = r.step.clone() * Expr::int(t);
                new_params.push((
                    d,
                    tp.clone(),
                    SymRange {
                        start: r.start.clone(),
                        end: r.end.clone(),
                        step: coarse_step.clone(),
                        tile: Expr::one(),
                    },
                ));
                // Inner range: i ∈ tp : min(tp + s*T, e) : s
                new_ranges.push((
                    d,
                    SymRange {
                        start: Expr::sym(tp),
                        end: (Expr::sym(&new_params.last().unwrap().1) + coarse_step)
                            .min2(r.end.clone()),
                        step: r.step.clone(),
                        tile: r.tile.clone(),
                    },
                ));
            }
        }
        let scope = scope_of_mut(sdfg.state_mut(m.state), entry);
        for (d, r) in new_ranges {
            scope.ranges[d] = r;
        }
        // Prepend tile dims in their dimension order.
        for (i, (_, tp, tr)) in new_params.into_iter().enumerate() {
            scope.params.insert(i, tp);
            scope.ranges.insert(i, tr);
        }
        // Re-tiling an already-tiled map can leave a range referencing a
        // parameter bound later in the list (parameters bind left to
        // right); restore a valid binding order.
        crate::helpers::dependency_sort_params(&mut scope.params, &mut scope.ranges);
        Ok(())
    }

    fn cost_hint(&self, _sdfg: &Sdfg, _m: &TMatch, _env: &Env) -> CostHint {
        // This runtime executes maps directly (no cache-blocking codegen
        // behind it), so tiling only adds loop-nest overhead here.
        CostHint::Unprofitable
    }
}

/// `MapInterchange` — permutes map dimensions (within one multi-dimensional
/// map). Parameter `order`: comma list of dimension indices (a permutation).
pub struct MapInterchange;

impl Transformation for MapInterchange {
    fn name(&self) -> &'static str {
        "MapInterchange"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            for n in st.graph.node_ids() {
                if let Node::MapEntry(msc) = st.graph.node(n) {
                    if msc.params.len() >= 2 {
                        out.push(TMatch::in_state(sid).with("map", n));
                    }
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), SdfgError> {
        let entry = m.try_node("map")?;
        let order = params
            .dims("order")?
            .ok_or_else(|| SdfgError::transform("MapInterchange requires `order`"))?;
        let scope = scope_of_mut(sdfg.state_mut(m.state), entry);
        if order.len() != scope.params.len() {
            return Err(SdfgError::transform("order length mismatch"));
        }
        let mut seen = vec![false; order.len()];
        for &o in &order {
            if o >= order.len() || seen[o] {
                return Err(SdfgError::transform("order must be a permutation"));
            }
            seen[o] = true;
        }
        let old_params = scope.params.clone();
        let old_ranges = scope.ranges.clone();
        // Dependent ranges must only reference earlier (in the new order)
        // parameters.
        for (pos, &o) in order.iter().enumerate() {
            let syms = {
                let mut s = std::collections::BTreeSet::new();
                old_ranges[o].collect_symbols(&mut s);
                s
            };
            for later in order[pos + 1..].iter() {
                if syms.contains(&old_params[*later]) {
                    return Err(SdfgError::transform(format!(
                        "range of `{}` depends on `{}`, which would come later",
                        old_params[o], old_params[*later]
                    )));
                }
            }
        }
        scope.params = order.iter().map(|&o| old_params[o].clone()).collect();
        scope.ranges = order.iter().map(|&o| old_ranges[o].clone()).collect();
        Ok(())
    }
}

/// `MapExpansion` — expands a multi-dimensional map into two nested maps
/// (dimension 0 outside, the rest inside).
pub struct MapExpansion;

impl Transformation for MapExpansion {
    fn name(&self) -> &'static str {
        "MapExpansion"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            for n in st.graph.node_ids() {
                if let Node::MapEntry(msc) = st.graph.node(n) {
                    if msc.params.len() >= 2 {
                        out.push(TMatch::in_state(sid).with("map", n));
                    }
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let entry = m.try_node("map")?;
        let state = sdfg.state_mut(m.state);
        let exit = state
            .exit_of(entry)
            .ok_or_else(|| SdfgError::transform("unpaired map"))?;
        let (outer_label, inner_params, inner_ranges, schedule) = {
            let sc = scope_of(state, entry);
            (
                sc.label.clone(),
                sc.params[1..].to_vec(),
                sc.ranges[1..].to_vec(),
                sc.schedule,
            )
        };
        // Shrink the outer map to dim 0.
        {
            let sc = scope_of_mut(state, entry);
            sc.params.truncate(1);
            sc.ranges.truncate(1);
        }
        // New inner map.
        let mut inner_scope = sdfg_core::node::MapScope::new(
            format!("{outer_label}_inner"),
            inner_params,
            inner_ranges,
        );
        inner_scope.schedule = match schedule {
            sdfg_core::Schedule::GpuDevice => sdfg_core::Schedule::GpuThreadBlock,
            other => other,
        };
        let (ie, ix) = state.add_map(inner_scope);
        // Move the body edges: entry(OUT_x) → consumer becomes
        // inner(OUT_x) → consumer, with a connecting edge entry → inner.
        let out_edges: Vec<EdgeId> = state.graph.out_edges(entry).collect();
        for e in out_edges {
            let df = state.graph.edge(e).clone();
            let dst = state.graph.edge_dst(e);
            if dst == ix {
                continue;
            }
            state.graph.remove_edge(e);
            if let Some(conn) = &df.src_conn {
                // Bridge edge (outer → inner) if not yet present.
                let in_conn = conn.replace("OUT_", "IN_");
                let exists = state
                    .graph
                    .out_edges(entry)
                    .any(|e2| state.graph.edge(e2).dst_conn.as_deref() == Some(in_conn.as_str()));
                if !exists {
                    state.add_edge(entry, Some(conn), ie, Some(&in_conn), df.memlet.clone());
                }
                state.add_edge(ie, Some(conn), dst, df.dst_conn.as_deref(), df.memlet);
            } else {
                state.add_edge(entry, None, ie, None, Memlet::empty());
                state.add_edge(ie, None, dst, df.dst_conn.as_deref(), df.memlet);
            }
        }
        // Mirror for the exit side.
        let in_edges: Vec<EdgeId> = state.graph.in_edges(exit).collect();
        for e in in_edges {
            let df = state.graph.edge(e).clone();
            let src = state.graph.edge_src(e);
            if src == ie {
                continue;
            }
            state.graph.remove_edge(e);
            if let Some(conn) = &df.dst_conn {
                let out_conn = conn.replace("IN_", "OUT_");
                let exists = state
                    .graph
                    .in_edges(exit)
                    .any(|e2| state.graph.edge(e2).src_conn.as_deref() == Some(out_conn.as_str()));
                if !exists {
                    state.add_edge(ix, Some(&out_conn), exit, Some(conn), df.memlet.clone());
                }
                state.add_edge(src, df.src_conn.as_deref(), ix, Some(conn), df.memlet);
            } else {
                state.add_edge(ix, None, exit, None, Memlet::empty());
                state.add_edge(src, df.src_conn.as_deref(), ix, Some("IN__dep"), df.memlet);
            }
        }
        Ok(())
    }
}

/// `MapCollapse` — collapses two directly nested maps into one, whose
/// dimensions are the union.
pub struct MapCollapse;

impl Transformation for MapCollapse {
    fn name(&self) -> &'static str {
        "MapCollapse"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            let pattern = Pattern {
                roles: vec![("outer", is_map_entry), ("inner", is_map_entry)],
                edges: vec![(0, 1)],
            };
            for m in find_pattern(sdfg, sid, &pattern) {
                let outer = m["outer"];
                let inner = m["inner"];
                // Inner must be the only successor scope: every outer
                // out-edge leads to the inner entry.
                let ok = st
                    .graph
                    .out_edges(outer)
                    .all(|e| st.graph.edge_dst(e) == inner);
                if ok {
                    out.push(
                        TMatch::in_state(sid)
                            .with("outer", outer)
                            .with("inner", inner),
                    );
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let outer = m.try_node("outer")?;
        let inner = m.try_node("inner")?;
        let state = sdfg.state_mut(m.state);
        let outer_exit = state
            .exit_of(outer)
            .ok_or_else(|| SdfgError::transform("unpaired outer map"))?;
        let inner_exit = state
            .exit_of(inner)
            .ok_or_else(|| SdfgError::transform("unpaired inner map"))?;
        // Merge dims.
        let (ip, ir) = {
            let isc = scope_of(state, inner);
            (isc.params.clone(), isc.ranges.clone())
        };
        {
            let osc = scope_of_mut(state, outer);
            osc.params.extend(ip);
            osc.ranges.extend(ir);
        }
        // Rewire: inner(OUT_x) → consumer becomes outer(OUT_x) → consumer.
        let inner_out: Vec<EdgeId> = state.graph.out_edges(inner).collect();
        for e in inner_out {
            let conn = state.graph.edge(e).src_conn.clone();
            redirect_edge_src(state, e, outer, conn);
        }
        // Remove bridge edges outer → inner.
        let bridges: Vec<EdgeId> = state
            .graph
            .out_edges(outer)
            .filter(|&e| state.graph.edge_dst(e) == inner)
            .collect();
        for e in bridges {
            state.graph.remove_edge(e);
        }
        // Exit side: producer → inner_exit becomes producer → outer_exit.
        let inner_exit_in: Vec<EdgeId> = state.graph.in_edges(inner_exit).collect();
        for e in inner_exit_in {
            let conn = state.graph.edge(e).dst_conn.clone();
            redirect_edge_dst(state, e, outer_exit, conn);
        }
        let bridges: Vec<EdgeId> = state
            .graph
            .in_edges(outer_exit)
            .filter(|&e| state.graph.edge_src(e) == inner_exit)
            .collect();
        for e in bridges {
            state.graph.remove_edge(e);
        }
        state.graph.remove_node(inner);
        state.graph.remove_node(inner_exit);
        Ok(())
    }

    fn cost_hint(&self, _sdfg: &Sdfg, _m: &TMatch, _env: &Env) -> CostHint {
        // One flat iteration space means one scope setup instead of a
        // nested per-point scope, and more parallelism to split.
        CostHint::Beneficial
    }
}

/// `MapReduceFusion` — fuses a map writing a transient with an immediately
/// following Reduce into a write-conflict-resolution memlet (Fig. 11a). If
/// the reduction has an identity, an initialization state is inserted
/// before the current one.
pub struct MapReduceFusion;

impl Transformation for MapReduceFusion {
    fn name(&self) -> &'static str {
        "MapReduceFusion"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let pattern = Pattern {
                roles: vec![
                    ("exit", is_map_exit),
                    ("tmp", is_transient_access),
                    ("reduce", is_reduce),
                    ("out", is_access),
                ],
                edges: vec![(0, 1), (1, 2), (2, 3)],
            };
            for m in find_pattern(sdfg, sid, &pattern) {
                let st = sdfg.state(sid);
                // The transient must only be used here.
                let data = st.graph.node(m["tmp"]).access_data().unwrap();
                if crate::helpers::access_count(sdfg, data) != 1 {
                    continue;
                }
                out.push(TMatch {
                    state: sid,
                    nodes: m,
                    states: Default::default(),
                });
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let (exit, tmp, reduce, outacc) = (
            m.try_node("exit")?,
            m.try_node("tmp")?,
            m.try_node("reduce")?,
            m.try_node("out")?,
        );
        let (wcr, axes, identity, out_data, out_subset, tmp_data) = {
            let st = sdfg.state(m.state);
            let Node::Reduce {
                wcr,
                axes,
                identity,
            } = st.graph.node(reduce)
            else {
                return Err(SdfgError::transform("role `reduce` is not a Reduce"));
            };
            let out_edge = st
                .graph
                .out_edges(reduce)
                .next()
                .ok_or_else(|| SdfgError::transform("reduce without output"))?;
            let out_m = st.graph.edge(out_edge).memlet.clone();
            (
                wcr.clone(),
                axes.clone(),
                *identity,
                out_m.data_name().to_string(),
                out_m.subset.clone(),
                st.graph.node(tmp).access_data().unwrap().to_string(),
            )
        };
        let state = sdfg.state_mut(m.state);
        // Rewrite producer memlets: edges into `exit` carrying tmp become
        // out_data with kept dims + WCR.
        let producer_edges: Vec<EdgeId> = state
            .graph
            .in_edges(exit)
            .filter(|&e| state.graph.edge(e).memlet.data.as_deref() == Some(tmp_data.as_str()))
            .collect();
        let mut kept_subset_example = None;
        for e in producer_edges {
            let df = state.graph.edge_mut(e);
            let rank = df.memlet.subset.rank();
            let reduce_axes: Vec<usize> = match &axes {
                Some(a) => a.clone(),
                None => (0..rank).collect(),
            };
            let kept: Vec<SymRange> = df
                .memlet
                .subset
                .dims
                .iter()
                .enumerate()
                .filter(|(d, _)| !reduce_axes.contains(d))
                .map(|(_, r)| r.clone())
                .collect();
            let new_subset = if kept.is_empty() {
                Subset::index([Expr::zero()])
            } else {
                Subset::new(kept)
            };
            kept_subset_example = Some(new_subset.clone());
            df.memlet = Memlet::new(&out_data, new_subset).with_wcr(wcr.clone());
            // Rename the exit connectors to the new container.
            if let Some(c) = &df.dst_conn {
                let new = c.replace(&format!("IN_{tmp_data}"), &format!("IN_{out_data}"));
                df.dst_conn = Some(new);
            }
        }
        // Exit's outer edge: straight to the output access node.
        let outer_edges: Vec<EdgeId> = state.graph.out_edges(exit).collect();
        for e in outer_edges {
            let df = state.graph.edge(e);
            if df.memlet.data.as_deref() == Some(tmp_data.as_str()) {
                let conn = df
                    .src_conn
                    .clone()
                    .map(|c| c.replace(&format!("OUT_{tmp_data}"), &format!("OUT_{out_data}")));
                let new_m = Memlet::new(&out_data, out_subset.clone()).with_wcr(wcr.clone());
                state.graph.remove_edge(e);
                state.graph.add_edge(
                    exit,
                    outacc,
                    sdfg_core::sdfg::Dataflow {
                        src_conn: conn,
                        dst_conn: None,
                        memlet: new_m,
                    },
                );
            }
        }
        // Remove tmp access and the reduce node.
        state.graph.remove_node(tmp);
        state.graph.remove_node(reduce);
        sdfg.data.remove(&tmp_data);
        let _ = kept_subset_example;
        // Initialization state (identity) before this one.
        if let Some(id) = identity {
            insert_init_state(sdfg, m.state, &out_data, &out_subset, id)?;
        }
        let _ = wcr_is_builtin(&wcr);
        Ok(())
    }
}

fn wcr_is_builtin(w: &Wcr) -> bool {
    !matches!(w, Wcr::Custom(_))
}

/// Builds `out[subset] = identity` in a fresh state inserted before `sid`.
fn insert_init_state(
    sdfg: &mut Sdfg,
    sid: StateId,
    data: &str,
    subset: &Subset,
    identity: f64,
) -> Result<(), SdfgError> {
    let init = sdfg.add_state(format!("init_{data}"));
    // Redirect incoming transitions of `sid` to `init`.
    let incoming: Vec<EdgeId> = sdfg.graph.in_edges(sid).collect();
    for e in incoming {
        let (src, _) = sdfg.graph.edge_endpoints(e);
        let payload = sdfg.graph.edge(e).clone();
        sdfg.graph.remove_edge(e);
        sdfg.graph.add_edge(src, init, payload);
    }
    sdfg.graph.add_transition_helper(init, sid);
    if sdfg.start == Some(sid) {
        sdfg.start = Some(init);
    }
    // Map over the subset writing the identity.
    let params: Vec<String> = (0..subset.rank()).map(|d| format!("__init{d}")).collect();
    let ranges: Vec<SymRange> = subset.dims.clone();
    let st = sdfg.state_mut(init);
    let (me, mx) = st.add_map(sdfg_core::node::MapScope::new(
        format!("init_{data}"),
        params.clone(),
        ranges,
    ));
    let t = st.add_tasklet("init", &[], &["o"], format!("o = {identity}"));
    let acc = st.add_access(data);
    st.add_edge(me, None, t, None, Memlet::empty());
    let idx = Subset::index(params.iter().map(|p| Expr::sym(p.clone())));
    st.add_edge(
        t,
        Some("o"),
        mx,
        Some(&format!("IN_{data}")),
        Memlet::new(data, idx),
    );
    st.add_edge(
        mx,
        Some(&format!("OUT_{data}")),
        acc,
        None,
        Memlet::new(data, subset.clone()),
    );
    Ok(())
}

/// Helper trait impl-free shim: adding unconditional transitions from the
/// transformation module without importing builder.
trait TransitionExt {
    fn add_transition_helper(&mut self, a: StateId, b: StateId);
}

impl TransitionExt for sdfg_graph::MultiGraph<sdfg_core::State, InterstateEdge> {
    fn add_transition_helper(&mut self, a: StateId, b: StateId) {
        self.add_edge(a, b, InterstateEdge::always());
    }
}

/// `MapFusion` — fuses two consecutive maps communicating through a
/// transient array with matching iteration spaces; the intermediate becomes
/// a scalar transient inside the fused scope.
pub struct MapFusion;

impl Transformation for MapFusion {
    fn name(&self) -> &'static str {
        "MapFusion"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let pattern = Pattern {
                roles: vec![
                    ("exit1", is_map_exit),
                    ("tmp", is_transient_access),
                    ("entry2", is_map_entry),
                ],
                edges: vec![(0, 1), (1, 2)],
            };
            for m in find_pattern(sdfg, sid, &pattern) {
                let st = sdfg.state(sid);
                let exit1 = m["exit1"];
                let entry1 = st.graph.node(exit1).exit_entry().unwrap();
                let entry2 = m["entry2"];
                let (r1, r2) = (
                    scope_of(st, entry1).ranges.clone(),
                    scope_of(st, entry2).ranges.clone(),
                );
                let p1 = scope_of(st, entry1).params.clone();
                let p2 = scope_of(st, entry2).params.clone();
                if r1.len() != r2.len() {
                    continue;
                }
                // Ranges must match after renaming map2 params to map1's.
                let renamed: Vec<SymRange> = r2
                    .iter()
                    .map(|r| {
                        let mut rr = r.clone();
                        for (a, b) in p2.iter().zip(&p1) {
                            rr = rr.subs(a, &Expr::sym(b.clone()));
                        }
                        rr
                    })
                    .collect();
                if renamed != r1 {
                    continue;
                }
                let data = st.graph.node(m["tmp"]).access_data().unwrap();
                if crate::helpers::access_count(sdfg, data) != 1 {
                    continue;
                }
                if st.graph.in_degree(m["tmp"]) != 1 || st.graph.out_degree(m["tmp"]) != 1 {
                    continue;
                }
                // A WCR write into the intermediate means each element
                // accumulates across iterations of the first map and must
                // be complete before the second map reads it — fusing
                // per-point would read partial sums. Reject.
                let wcr_write = st.graph.in_edges(exit1).any(|e| {
                    let mm = &st.graph.edge(e).memlet;
                    mm.data.as_deref() == Some(data) && mm.wcr.is_some()
                }) || st
                    .graph
                    .in_edges(m["tmp"])
                    .any(|e| st.graph.edge(e).memlet.wcr.is_some());
                if wcr_write {
                    continue;
                }
                out.push(TMatch {
                    state: sid,
                    nodes: m,
                    states: Default::default(),
                });
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let (exit1, tmp, entry2) = (
            m.try_node("exit1")?,
            m.try_node("tmp")?,
            m.try_node("entry2")?,
        );
        let sid = m.state;
        let (entry1, exit2, tmp_data, p1, p2) = {
            let st = sdfg.state(sid);
            let entry1 = st.graph.node(exit1).exit_entry().unwrap();
            let exit2 = st
                .exit_of(entry2)
                .ok_or_else(|| SdfgError::transform("unpaired second map"))?;
            (
                entry1,
                exit2,
                st.graph.node(tmp).access_data().unwrap().to_string(),
                scope_of(st, entry1).params.clone(),
                scope_of(st, entry2).params.clone(),
            )
        };
        // Scalar replacement for the intermediate.
        let scalar_name = sdfg.fresh_data_name(&format!("{tmp_data}_s"));
        let dtype = sdfg.desc(&tmp_data).map(|d| d.dtype()).unwrap();
        sdfg.add_scalar(&scalar_name, dtype, true);
        // Rename p2 → p1 in all memlets inside scope 2.
        let members2 = sdfg_core::scope::scope_members(sdfg.state(sid), entry2);
        let state = sdfg.state_mut(sid);
        let mut edges_to_rename: Vec<EdgeId> = Vec::new();
        for &n in &members2 {
            edges_to_rename.extend(state.graph.out_edges(n));
            edges_to_rename.extend(state.graph.in_edges(n));
        }
        edges_to_rename.sort_unstable();
        edges_to_rename.dedup();
        for e in edges_to_rename {
            let df = state.graph.edge_mut(e);
            for (a, b) in p2.iter().zip(&p1) {
                df.memlet.subset = df.memlet.subset.subs(a, &Expr::sym(b.clone()));
                if let Some(os) = &df.memlet.other_subset {
                    df.memlet.other_subset = Some(os.subs(a, &Expr::sym(b.clone())));
                }
                df.memlet.volume = df.memlet.volume.subs(a, &Expr::sym(b.clone()));
            }
        }
        // Rename params in any nested scopes of scope 2.
        for &n in &members2 {
            if let Node::MapEntry(msc) = state.graph.node_mut(n) {
                for r in msc.ranges.iter_mut() {
                    for (a, b) in p2.iter().zip(&p1) {
                        *r = r.subs(a, &Expr::sym(b.clone()));
                    }
                }
            }
        }
        // Producer edge: tasklet1 → exit1 (IN_tmp) becomes tasklet1 →
        // scalar access; consumer: entry2 (OUT_tmp) → tasklet2 becomes
        // scalar access → tasklet2.
        let scalar_acc = state.add_access(&scalar_name);
        let prod_edges: Vec<EdgeId> = state
            .graph
            .in_edges(exit1)
            .filter(|&e| state.graph.edge(e).memlet.data.as_deref() == Some(tmp_data.as_str()))
            .collect();
        for e in prod_edges {
            let mut df = state.graph.edge(e).clone();
            let src = state.graph.edge_src(e);
            df.memlet = Memlet::parse(&scalar_name, "0");
            df.dst_conn = None;
            state.graph.remove_edge(e);
            state.graph.add_edge(src, scalar_acc, df);
        }
        let cons_edges: Vec<EdgeId> = state
            .graph
            .out_edges(entry2)
            .filter(|&e| state.graph.edge(e).memlet.data.as_deref() == Some(tmp_data.as_str()))
            .collect();
        for e in cons_edges {
            let mut df = state.graph.edge(e).clone();
            let dst = state.graph.edge_dst(e);
            df.memlet = Memlet::parse(&scalar_name, "0");
            df.src_conn = None;
            state.graph.remove_edge(e);
            state.graph.add_edge(scalar_acc, dst, df);
        }
        // Drop map2's outer input edges; surviving containers are re-wired
        // through entry1 below (when rerouting entry2's inner edges).
        let entry2_in: Vec<EdgeId> = state.graph.in_edges(entry2).collect();
        for e in entry2_in {
            state.graph.remove_edge(e);
        }
        // Inner consumers of entry2's remaining connectors hook to entry1.
        let entry2_out: Vec<EdgeId> = state.graph.out_edges(entry2).collect();
        for e in entry2_out {
            let df = state.graph.edge(e).clone();
            let dst = state.graph.edge_dst(e);
            state.graph.remove_edge(e);
            if let Some(conn) = df.src_conn.clone() {
                // Ensure entry1 receives this container from outside.
                let in_conn = conn.replace("OUT_", "IN_");
                let has_outer = state
                    .graph
                    .in_edges(entry1)
                    .any(|e2| state.graph.edge(e2).dst_conn.as_deref() == Some(in_conn.as_str()));
                if !has_outer {
                    let data = df.memlet.data_name().to_string();
                    let read = crate::helpers::find_read_access(state, &data);
                    state.add_edge(read, None, entry1, Some(&in_conn), df.memlet.clone());
                }
                state.add_edge(entry1, Some(&conn), dst, df.dst_conn.as_deref(), df.memlet);
            } else {
                state.add_edge(entry1, None, dst, df.dst_conn.as_deref(), df.memlet);
            }
        }
        // Outputs of map2 route through exit1... actually exit2 becomes the
        // single exit: move exit1's other outputs onto exit2, then drop
        // exit1. Simpler: producers into exit2 stay; producers into exit1
        // (non-tmp) need rerouting to exit2.
        let exit1_in: Vec<EdgeId> = state.graph.in_edges(exit1).collect();
        for e in exit1_in {
            let conn = state.graph.edge(e).dst_conn.clone();
            redirect_edge_dst(state, e, exit2, conn);
        }
        let exit1_out: Vec<EdgeId> = state.graph.out_edges(exit1).collect();
        for e in exit1_out {
            let conn = state.graph.edge(e).src_conn.clone();
            redirect_edge_src(state, e, exit2, conn);
        }
        // Repair exit pairing: exit2 now closes entry1's scope.
        state.graph.remove_node(exit1);
        state.graph.remove_node(tmp);
        state.graph.remove_node(entry2);
        if let Node::MapExit { entry } = state.graph.node_mut(exit2) {
            *entry = entry1;
        }
        sdfg.data.remove(&tmp_data);
        Ok(())
    }

    fn cost_hint(&self, _sdfg: &Sdfg, _m: &TMatch, _env: &Env) -> CostHint {
        // Removes a full pass over the intermediate array and replaces it
        // with a register-sized scalar — strictly less data movement.
        CostHint::Beneficial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::apply_first;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;

    fn run_both(sdfg: &Sdfg, n: i64, a: Vec<f64>) -> Vec<f64> {
        let mut it = sdfg_interp::Interpreter::new(sdfg);
        it.set_symbol("N", n);
        it.set_array("A", a.clone());
        it.set_array("B", vec![0.0; a.len()]);
        it.run().unwrap();
        it.array("B").to_vec()
    }

    fn double_map_sdfg() -> Sdfg {
        let mut b = SdfgBuilder::new("d");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "m",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "B", "i")],
        );
        b.build().unwrap()
    }

    #[test]
    fn tiling_preserves_semantics() {
        let mut sdfg = double_map_sdfg();
        let before = run_both(&sdfg, 37, (0..37).map(|x| x as f64).collect());
        let params = Params::new().with("tile_sizes", 8i64);
        assert!(apply_first(&mut sdfg, &MapTiling, &params).unwrap());
        sdfg.validate().expect("valid after tiling");
        // Map now has 2 dims.
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(scope_of(st, me).params.len(), 2);
        let after = run_both(&sdfg, 37, (0..37).map(|x| x as f64).collect());
        assert_eq!(before, after);
    }

    #[test]
    fn tiling_twice_keeps_parameter_binding_order() {
        // Re-tiling an already-tiled map must not leave a tile parameter
        // whose range references a parameter bound later in the list.
        let src = "def p(A: dace.float64[N], C: dace.float64[N]):\n    for i in dace.map[0:N]:\n        C[i] = A[i]\n";
        let mut s = sdfg_frontend::parse_program(src).unwrap();
        for _ in 0..2 {
            assert!(crate::framework::apply_first(&mut s, &MapTiling, &Params::new()).unwrap());
        }
        sdfg_core::validate(&s).unwrap();
        let mut it = sdfg_interp::Interpreter::new(&s);
        it.set_symbol("N", 100);
        it.set_array("A", (0..100).map(|x| x as f64).collect());
        it.set_array("C", vec![0.0; 100]);
        it.run().expect("doubly tiled map executes");
        assert_eq!(it.array("C")[99], 99.0);
    }

    #[test]
    fn interchange_requires_permutation() {
        let mut b = SdfgBuilder::new("i");
        b.symbol("N");
        b.array("A", &["N", "N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N"), ("j", "0:N")],
            &[("a", "A", "i, j")],
            "o = a + 1",
            &[("o", "A", "i, j")],
        );
        let mut sdfg = b.build().unwrap();
        let params = Params::new().with("order", vec![1usize, 0]);
        assert!(apply_first(&mut sdfg, &MapInterchange, &params).unwrap());
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(scope_of(st, me).params, vec!["j", "i"]);
        // Bad permutation rejected.
        let bad = Params::new().with("order", vec![0usize, 0]);
        assert!(apply_first(&mut sdfg, &MapInterchange, &bad).is_err());
    }

    #[test]
    fn interchange_rejects_dependent_reorder() {
        let mut b = SdfgBuilder::new("tri");
        b.symbol("N");
        b.array("A", &["N", "N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N"), ("j", "0:i + 1")],
            &[("a", "A", "i, j")],
            "o = a + 1",
            &[("o", "A", "i, j")],
        );
        let mut sdfg = b.build().unwrap();
        let params = Params::new().with("order", vec![1usize, 0]);
        assert!(apply_first(&mut sdfg, &MapInterchange, &params).is_err());
    }

    #[test]
    fn expansion_then_collapse_roundtrip() {
        let mut b = SdfgBuilder::new("e");
        b.symbol("N");
        b.array("A", &["N", "N"], DType::F64);
        b.array("B", &["N", "N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N"), ("j", "0:N")],
            &[("a", "A", "i, j")],
            "o = a * 3",
            &[("o", "B", "i, j")],
        );
        let mut sdfg = b.build().unwrap();
        let n = 9i64;
        let input: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_symbol("N", n);
            it.set_array("A", input.clone());
            it.set_array("B", vec![0.0; (n * n) as usize]);
            it.run().unwrap();
            it.array("B").to_vec()
        };
        let before = run(&sdfg);
        assert!(apply_first(&mut sdfg, &MapExpansion, &Params::new()).unwrap());
        sdfg.validate().expect("valid after expansion");
        // Two nested maps now.
        let st = sdfg.state(sdfg.start.unwrap());
        assert_eq!(crate::helpers::map_entries(st).len(), 2);
        assert_eq!(run(&sdfg), before);
        // Collapse back.
        assert!(apply_first(&mut sdfg, &MapCollapse, &Params::new()).unwrap());
        sdfg.validate().expect("valid after collapse");
        let st = sdfg.state(sdfg.start.unwrap());
        assert_eq!(crate::helpers::map_entries(st).len(), 1);
        assert_eq!(run(&sdfg), before);
    }

    #[test]
    fn map_reduce_fusion_mm_pattern() {
        // Fig. 9b: map-reduce matrix multiplication → Fig. 11a fused WCR.
        let mut b = SdfgBuilder::new("mm");
        b.symbol("M");
        b.symbol("N");
        b.symbol("K");
        b.array("A", &["M", "K"], DType::F64);
        b.array("B", &["K", "N"], DType::F64);
        b.array("C", &["M", "N"], DType::F64);
        b.transient("tmp", &["M", "N", "K"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "mult",
            &[("i", "0:M"), ("j", "0:N"), ("k", "0:K")],
            &[("a", "A", "i, k"), ("bb", "B", "k, j")],
            "o = a * bb",
            &[("o", "tmp", "i, j, k")],
        );
        b.reduce(
            st,
            "tmp",
            "0:M, 0:N, 0:K",
            "C",
            "0:M, 0:N",
            Wcr::Sum,
            Some(vec![2]),
            Some(0.0),
        );
        let mut sdfg = b.build().unwrap();
        let (mm, kk, nn) = (5i64, 7i64, 4i64);
        let a: Vec<f64> = (0..mm * kk).map(|x| (x % 5) as f64).collect();
        let bmat: Vec<f64> = (0..kk * nn).map(|x| (x % 3) as f64 - 1.0).collect();
        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_symbol("M", mm)
                .set_symbol("K", kk)
                .set_symbol("N", nn);
            it.set_array("A", a.clone());
            it.set_array("B", bmat.clone());
            it.set_array("C", vec![0.0; (mm * nn) as usize]);
            it.run().unwrap();
            it.array("C").to_vec()
        };
        let before = run(&sdfg);
        assert!(apply_first(&mut sdfg, &MapReduceFusion, &Params::new()).unwrap());
        sdfg.validate().expect("valid after fusion");
        // Transient gone; WCR memlet present; init state added.
        assert!(sdfg.desc("tmp").is_none());
        assert_eq!(sdfg.graph.node_count(), 2); // init + main
        let after = run(&sdfg);
        assert_eq!(before, after);
    }

    #[test]
    fn map_fusion_elementwise_chain() {
        // B = A*2 ; C = B+1  →  single map with scalar intermediate.
        let mut b = SdfgBuilder::new("chain");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.transient("T", &["N"], DType::F64);
        b.array("C", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "first",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "T", "i")],
        );
        b.mapped_tasklet(
            st,
            "second",
            &[("j", "0:N")],
            &[("t", "T", "j")],
            "o = t + 1",
            &[("o", "C", "j")],
        );
        let mut sdfg = b.build().unwrap();
        let n = 11i64;
        let a: Vec<f64> = (0..n).map(|x| x as f64).collect();
        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_symbol("N", n);
            it.set_array("A", a.clone());
            it.set_array("C", vec![0.0; n as usize]);
            it.run().unwrap();
            it.array("C").to_vec()
        };
        let before = run(&sdfg);
        assert!(apply_first(&mut sdfg, &MapFusion, &Params::new()).unwrap());
        sdfg.validate().expect("valid after map fusion");
        assert!(sdfg.desc("T").is_none(), "intermediate array removed");
        let st = sdfg.state(sdfg.start.unwrap());
        assert_eq!(crate::helpers::map_entries(st).len(), 1, "single map");
        let after = run(&sdfg);
        assert_eq!(before, after);
    }
}
