//! Hardware-mapping transformations (Appendix B): offload an entire CPU
//! SDFG to an accelerator, with explicit copy states — exactly the
//! `GPUTransform`/`FPGATransform` the paper applies to all of Polybench
//! (§5) — plus `MPITransform`.

use crate::framework::{Params, TMatch, Transformation};
use sdfg_core::desc::DataDesc;
use sdfg_core::sdfg::InterstateEdge;
use sdfg_core::SdfgError;
use sdfg_core::{Memlet, Node, Schedule, Sdfg, Storage, Subset};
use std::collections::BTreeMap;

/// Shared implementation: wrap the SDFG with copy-in/copy-out states and
/// retarget schedules/storage.
fn offload(
    sdfg: &mut Sdfg,
    prefix: &str,
    device_storage: Storage,
    schedule_map: fn(Schedule) -> Schedule,
) -> Result<(), SdfgError> {
    // Device clones of all non-transient arrays.
    let mut clones: BTreeMap<String, String> = BTreeMap::new();
    let originals: Vec<(String, DataDesc)> = sdfg
        .data
        .iter()
        .filter(|(_, d)| matches!(d, DataDesc::Array(_)) && !d.transient())
        .map(|(n, d)| (n.clone(), d.clone()))
        .collect();
    for (name, desc) in &originals {
        let dev_name = sdfg.fresh_data_name(&format!("{prefix}_{name}"));
        let mut dev = desc.clone();
        dev.set_transient(true);
        dev.set_storage(device_storage);
        sdfg.data.insert(dev_name.clone(), dev);
        clones.insert(name.clone(), dev_name);
    }
    // Existing transients move to device storage too.
    for (_, d) in sdfg.data.iter_mut() {
        if d.transient() && d.storage() == Storage::Default {
            d.set_storage(device_storage);
        }
    }
    // Rewrite compute states: access nodes and memlets use the clones;
    // map schedules are retargeted.
    let state_ids: Vec<_> = sdfg.graph.node_ids().collect();
    for sid in &state_ids {
        let st = sdfg.graph.node_mut(*sid);
        for n in st.graph.node_ids().collect::<Vec<_>>() {
            match st.graph.node_mut(n) {
                Node::Access { data } => {
                    if let Some(c) = clones.get(data) {
                        *data = c.clone();
                    }
                }
                Node::MapEntry(m) => {
                    m.schedule = schedule_map(m.schedule);
                }
                Node::ConsumeEntry(c) => {
                    c.schedule = schedule_map(c.schedule);
                }
                _ => {}
            }
        }
        for e in st.graph.edge_ids().collect::<Vec<_>>() {
            let df = st.graph.edge_mut(e);
            if let Some(d) = &df.memlet.data {
                if let Some(c) = clones.get(d) {
                    df.memlet.data = Some(c.clone());
                }
            }
            // Scope connectors keep container-derived names.
            df.src_conn = df.src_conn.take().map(|c| retag_conn(c, &clones));
            df.dst_conn = df.dst_conn.take().map(|c| retag_conn(c, &clones));
        }
    }
    // Copy-in state before the start.
    let old_start = sdfg
        .start
        .ok_or_else(|| SdfgError::transform("SDFG has no start state"))?;
    let copy_in = sdfg.add_state(format!("{prefix}_copyin"));
    sdfg.graph
        .add_edge(copy_in, old_start, InterstateEdge::always());
    sdfg.start = Some(copy_in);
    {
        let shapes: Vec<(String, String, Vec<sdfg_symbolic::Expr>)> = originals
            .iter()
            .map(|(n, d)| (n.clone(), clones[n].clone(), d.shape().to_vec()))
            .collect();
        let st = sdfg.state_mut(copy_in);
        for (host, dev, shape) in shapes {
            let h = st.add_access(&host);
            let d = st.add_access(&dev);
            let sub = Subset::full(&shape);
            st.add_plain_edge(h, d, Memlet::new(&host, sub.clone()).with_other_subset(sub));
        }
    }
    // Copy-out state after every terminal state.
    let copy_out = sdfg.add_state(format!("{prefix}_copyout"));
    let terminals: Vec<_> = state_ids
        .iter()
        .copied()
        .filter(|&s| sdfg.graph.out_degree(s) == 0 && s != copy_out)
        .collect();
    for t in terminals {
        sdfg.graph.add_edge(t, copy_out, InterstateEdge::always());
    }
    {
        let shapes: Vec<(String, String, Vec<sdfg_symbolic::Expr>)> = originals
            .iter()
            .map(|(n, d)| (n.clone(), clones[n].clone(), d.shape().to_vec()))
            .collect();
        let st = sdfg.state_mut(copy_out);
        for (host, dev, shape) in shapes {
            let d = st.add_access(&dev);
            let h = st.add_access(&host);
            let sub = Subset::full(&shape);
            st.add_plain_edge(d, h, Memlet::new(&dev, sub.clone()).with_other_subset(sub));
        }
    }
    Ok(())
}

fn retag_conn(c: String, clones: &BTreeMap<String, String>) -> String {
    for (from, to) in clones {
        if let Some(rest) = c.strip_prefix("IN_") {
            if rest == from {
                return format!("IN_{to}");
            }
        }
        if let Some(rest) = c.strip_prefix("OUT_") {
            if rest == from {
                return format!("OUT_{to}");
            }
        }
    }
    c
}

fn whole_sdfg_match(sdfg: &Sdfg, marker: Storage) -> Vec<TMatch> {
    // Applicable once: when no container already lives on that device.
    let already = sdfg.data.values().any(|d| d.storage() == marker);
    if already || sdfg.graph.node_count() == 0 {
        return Vec::new();
    }
    vec![TMatch::in_state(
        sdfg.start.unwrap_or(sdfg_graph::NodeId(0)),
    )]
}

/// `GPUTransform` — converts a CPU SDFG to run on a GPU, copying memory to
/// the device and executing kernels (paper §5: "we apply ... GPUTransform").
pub struct GpuTransform;

impl Transformation for GpuTransform {
    fn name(&self) -> &'static str {
        "GPUTransform"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        whole_sdfg_match(sdfg, Storage::GpuGlobal)
    }

    fn apply(&self, sdfg: &mut Sdfg, _m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        offload(sdfg, "gpu", Storage::GpuGlobal, |s| match s {
            Schedule::CpuMulticore => Schedule::GpuDevice,
            other => other,
        })
    }
}

/// `FPGATransform` — converts a CPU SDFG to be fully invoked on an FPGA.
pub struct FpgaTransform;

impl Transformation for FpgaTransform {
    fn name(&self) -> &'static str {
        "FPGATransform"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        whole_sdfg_match(sdfg, Storage::FpgaGlobal)
    }

    fn apply(&self, sdfg: &mut Sdfg, _m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        offload(sdfg, "fpga", Storage::FpgaGlobal, |s| match s {
            Schedule::CpuMulticore => Schedule::FpgaDevice,
            other => other,
        })
    }
}

/// `MPITransform` — converts top-level CPU maps to distribute iterations
/// across ranks.
pub struct MpiTransform;

impl Transformation for MpiTransform {
    fn name(&self) -> &'static str {
        "MPITransform"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            let Ok(tree) = sdfg_core::scope::scope_tree(st) else {
                continue;
            };
            for n in crate::helpers::map_entries(st) {
                if tree.scope_of(n).is_none()
                    && crate::helpers::scope_of(st, n).schedule == Schedule::CpuMulticore
                {
                    out.push(TMatch::in_state(sid).with("map", n));
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let entry = m.try_node("map")?;
        let st = sdfg.state_mut(m.state);
        crate::helpers::scope_of_mut(st, entry).schedule = Schedule::Mpi;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::apply_first;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;

    fn sample() -> Sdfg {
        let mut b = SdfgBuilder::new("g");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 3 + 1",
            &[("o", "B", "i")],
        );
        b.build().unwrap()
    }

    #[test]
    fn gpu_transform_adds_copies_and_retargets() {
        let mut sdfg = sample();
        assert!(apply_first(&mut sdfg, &GpuTransform, &Params::new()).unwrap());
        sdfg.validate().expect("valid after GPUTransform");
        // 3 states now: copyin, compute, copyout.
        assert_eq!(sdfg.graph.node_count(), 3);
        assert!(sdfg.desc("gpu_A").is_some());
        assert!(sdfg.desc("gpu_B").is_some());
        assert_eq!(sdfg.desc("gpu_A").unwrap().storage(), Storage::GpuGlobal);
        // The map runs on the device.
        let compute = sdfg
            .state_ids()
            .into_iter()
            .find(|&s| !crate::helpers::map_entries(sdfg.state(s)).is_empty())
            .unwrap();
        let st = sdfg.state(compute);
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(
            crate::helpers::scope_of(st, me).schedule,
            Schedule::GpuDevice
        );
        // Second application finds nothing (idempotent).
        assert!(GpuTransform.find(&sdfg).is_empty());
        // Semantics preserved end-to-end.
        let mut it = sdfg_interp::Interpreter::new(&sdfg);
        it.set_symbol("N", 4);
        it.set_array("A", vec![1.0, 2.0, 3.0, 4.0]);
        it.set_array("B", vec![0.0; 4]);
        it.run().unwrap();
        assert_eq!(it.array("B"), &[4.0, 7.0, 10.0, 13.0]);
    }

    #[test]
    fn fpga_transform_full_offload() {
        let mut sdfg = sample();
        assert!(apply_first(&mut sdfg, &FpgaTransform, &Params::new()).unwrap());
        sdfg.validate().expect("valid after FPGATransform");
        assert_eq!(sdfg.desc("fpga_A").unwrap().storage(), Storage::FpgaGlobal);
        let mut it = sdfg_interp::Interpreter::new(&sdfg);
        it.set_symbol("N", 3);
        it.set_array("A", vec![1.0, 2.0, 3.0]);
        it.set_array("B", vec![0.0; 3]);
        it.run().unwrap();
        assert_eq!(it.array("B"), &[4.0, 7.0, 10.0]);
    }

    #[test]
    fn mpi_transform_retags_schedule() {
        let mut sdfg = sample();
        assert!(apply_first(&mut sdfg, &MpiTransform, &Params::new()).unwrap());
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(crate::helpers::scope_of(st, me).schedule, Schedule::Mpi);
    }

    #[test]
    fn gpu_transform_with_state_machine_loop() {
        // The Laplace program: loop body must stay on device, copies at the
        // boundary only.
        let src = r#"
def laplace(A: dace.float64[2, N], T: dace.int64):
    for t in range(T):
        for i in dace.map[1:N - 1]:
            with dace.tasklet:
                l << A[t % 2, i - 1]
                c << A[t % 2, i]
                r << A[t % 2, i + 1]
                out >> A[(t + 1) % 2, i]
                out = l - 2 * c + r
"#;
        let mut sdfg = sdfg_frontend::parse_program(src).unwrap();
        let baseline = {
            let mut it = sdfg_interp::Interpreter::new(&sdfg);
            it.set_symbol("N", 16).set_symbol("T", 4);
            let mut a = vec![0.0; 32];
            a[5] = 1.0;
            it.set_array("A", a);
            it.run().unwrap();
            it.array("A").to_vec()
        };
        assert!(apply_first(&mut sdfg, &GpuTransform, &Params::new()).unwrap());
        sdfg.validate().expect("valid");
        let mut it = sdfg_interp::Interpreter::new(&sdfg);
        it.set_symbol("N", 16).set_symbol("T", 4);
        let mut a = vec![0.0; 32];
        a[5] = 1.0;
        it.set_array("A", a);
        it.run().unwrap();
        assert_eq!(it.array("A"), baseline.as_slice());
    }
}
