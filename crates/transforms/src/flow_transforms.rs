//! Control-flow transformations (Appendix B, "Control-flow
//! transformations").

use crate::framework::{CostHint, Params, TMatch, Transformation};
use sdfg_core::sdfg::Dataflow;
use sdfg_core::{Node, Schedule, Sdfg, SdfgError, StateId};
use sdfg_graph::{EdgeId, NodeId};
use sdfg_symbolic::Env;
use std::collections::HashMap;

/// Iteration-count threshold below which a top-level multicore map is
/// cheaper to run sequentially than to split across worker threads (the
/// per-run cost of spawning a thread scope outweighs the per-point work for
/// small maps; see `MapToForLoop::cost_hint`).
pub const SEQUENTIALIZE_BELOW_POINTS: i64 = 4096;

/// `MapToForLoop` — converts a map to sequential loop semantics. The map's
/// schedule becomes [`Schedule::Sequential`], which every backend lowers to
/// a plain loop nest (the moral equivalent of DaCe's state-machine
/// conversion, without leaving the dataflow representation).
pub struct MapToForLoop;

impl Transformation for MapToForLoop {
    fn name(&self) -> &'static str {
        "MapToForLoop"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            for n in crate::helpers::map_entries(st) {
                if crate::helpers::scope_of(st, n).schedule != Schedule::Sequential {
                    out.push(TMatch::in_state(sid).with("map", n));
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let entry = m.try_node("map")?;
        let st = sdfg.state_mut(m.state);
        crate::helpers::scope_of_mut(st, entry).schedule = Schedule::Sequential;
        Ok(())
    }

    fn cost_hint(&self, sdfg: &Sdfg, m: &TMatch, env: &Env) -> CostHint {
        let Ok(entry) = m.try_node("map") else {
            return CostHint::Unknown;
        };
        let st = sdfg.state(m.state);
        let sc = crate::helpers::scope_of(st, entry);
        // Only top-level CPU-multicore maps spawn worker threads; anything
        // else already runs serially, so sequentializing buys nothing and
        // costs portability metadata.
        if sc.schedule != Schedule::CpuMulticore {
            return CostHint::Unprofitable;
        }
        let Ok(tree) = sdfg_core::scope::scope_tree(st) else {
            return CostHint::Unknown;
        };
        if tree.scope_of(entry).is_some() {
            return CostHint::Unprofitable;
        }
        // With concrete symbol bindings, a small iteration space means the
        // thread-scope spawn dominates the per-point work.
        let mut points: i64 = 1;
        for r in &sc.ranges {
            match r.eval_len(env) {
                Ok(l) => points = points.saturating_mul(l.max(0)),
                Err(_) => return CostHint::Unknown,
            }
        }
        if points < SEQUENTIALIZE_BELOW_POINTS {
            CostHint::Beneficial
        } else {
            CostHint::Unprofitable
        }
    }
}

/// `StateFusion` — fuses two states connected by an unconditional,
/// assignment-free transition into one, sequencing through shared access
/// nodes. Strict.
pub struct StateFusion;

impl Transformation for StateFusion {
    fn name(&self) -> &'static str {
        "StateFusion"
    }

    fn strict(&self) -> bool {
        true
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for e in sdfg.graph.edge_ids() {
            let t = sdfg.graph.edge(e);
            if !t.condition.is_always() || !t.assignments.is_empty() {
                continue;
            }
            let (s1, s2) = sdfg.graph.edge_endpoints(e);
            if s1 == s2 || sdfg.graph.out_degree(s1) != 1 || sdfg.graph.in_degree(s2) != 1 {
                continue;
            }
            // Hazard checks.
            let written1 = written_containers(sdfg, s1);
            let accessed1 = accessed_containers(sdfg, s1);
            let written2 = written_containers(sdfg, s2);
            // s2 writing something s1 touches is only safe when s1 merely
            // produced it (write→write or read-in-s1/write-in-s2 reorder
            // hazards are conservatively rejected).
            let conflict = written2
                .iter()
                .any(|d| accessed1.contains(d) && !written1.contains(d))
                || written2.iter().any(|d| written1.contains(d));
            if conflict {
                continue;
            }
            let mut tm = TMatch::in_state(s1);
            tm.states.insert("first".into(), s1);
            tm.states.insert("second".into(), s2);
            out.push(tm);
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let s1 = *m
            .states
            .get("first")
            .ok_or_else(|| SdfgError::RoleMissing {
                role: "first".to_string(),
            })?;
        let s2 = *m
            .states
            .get("second")
            .ok_or_else(|| SdfgError::RoleMissing {
                role: "second".to_string(),
            })?;
        // Clone s2's graph content into s1.
        let second = sdfg.graph.node(s2).clone();
        let first = sdfg.graph.node_mut(s1);
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        for n in second.graph.node_ids() {
            let node = second.graph.node(n).clone();
            // Merge read access nodes of containers written in s1 onto the
            // s1 write node for sequencing.
            if let Node::Access { data } = &node {
                if second.graph.in_degree(n) == 0 {
                    let existing = first.graph.node_ids().find(|&w| {
                        first.graph.node(w).access_data() == Some(data.as_str())
                            && first.graph.in_degree(w) > 0
                    });
                    if let Some(w) = existing {
                        remap.insert(n, w);
                        continue;
                    }
                }
            }
            let new = first.graph.add_node(node);
            remap.insert(n, new);
        }
        // Fix scope-exit pairings in the cloned nodes.
        for (&old, &new) in remap.clone().iter() {
            if let Node::MapExit { entry } | Node::ConsumeExit { entry } = first.graph.node_mut(new)
            {
                if let Some(&ne) = remap.get(entry) {
                    *entry = ne;
                }
            }
            let _ = old;
        }
        for e in second.graph.edge_ids() {
            let (src, dst) = second.graph.edge_endpoints(e);
            let df: Dataflow = second.graph.edge(e).clone();
            first.graph.add_edge(remap[&src], remap[&dst], df);
        }
        // Rewire transitions: s2's outgoing move to s1; drop s1→s2.
        let out_edges: Vec<EdgeId> = sdfg.graph.out_edges(s2).collect();
        for e in out_edges {
            let dst = sdfg.graph.edge_dst(e);
            let payload = sdfg.graph.edge(e).clone();
            sdfg.graph.remove_edge(e);
            sdfg.graph.add_edge(s1, dst, payload);
        }
        sdfg.graph.remove_node(s2);
        Ok(())
    }
}

fn written_containers(sdfg: &Sdfg, sid: StateId) -> std::collections::BTreeSet<String> {
    let st = sdfg.state(sid);
    let mut out = std::collections::BTreeSet::new();
    for n in st.graph.node_ids() {
        if let Some(d) = st.graph.node(n).access_data() {
            if st.graph.in_degree(n) > 0 {
                out.insert(d.to_string());
            }
        }
    }
    out
}

fn accessed_containers(sdfg: &Sdfg, sid: StateId) -> std::collections::BTreeSet<String> {
    let st = sdfg.state(sid);
    let mut out = std::collections::BTreeSet::new();
    for n in st.graph.node_ids() {
        if let Some(d) = st.graph.node(n).access_data() {
            out.insert(d.to_string());
        }
    }
    out
}

/// `InlineSDFG` — inlines a single-state nested SDFG into the parent state.
/// Restricted to nested nodes at the top scope level whose connector
/// memlets cover whole containers with zero offsets (the common case
/// produced by frontends; the paper's strict-transformation pass has the
/// same flavor).
pub struct InlineSdfg;

impl Transformation for InlineSdfg {
    fn name(&self) -> &'static str {
        "InlineSDFG"
    }

    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch> {
        let mut out = Vec::new();
        for sid in sdfg.graph.node_ids() {
            let st = sdfg.graph.node(sid);
            let Ok(tree) = sdfg_core::scope::scope_tree(st) else {
                continue;
            };
            for n in st.graph.node_ids() {
                let Node::NestedSdfg { sdfg: inner, .. } = st.graph.node(n) else {
                    continue;
                };
                if inner.graph.node_count() != 1 || tree.scope_of(n).is_some() {
                    continue;
                }
                // All memlets must start at zero and cover whole containers.
                let whole = st.graph.in_edges(n).chain(st.graph.out_edges(n)).all(|e| {
                    let mlet = &st.graph.edge(e).memlet;
                    !mlet.is_empty()
                        && mlet
                            .subset
                            .dims
                            .iter()
                            .all(|r| r.start.is_zero() && r.step.is_one())
                });
                if whole {
                    out.push(TMatch::in_state(sid).with("nested", n));
                }
            }
        }
        out
    }

    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, _params: &Params) -> Result<(), SdfgError> {
        let nid = m.try_node("nested")?;
        let (inner, _symmap, conn_map) = {
            let st = sdfg.state(m.state);
            let Node::NestedSdfg {
                sdfg: inner,
                symbol_mapping,
                ..
            } = st.graph.node(nid)
            else {
                return Err(SdfgError::transform("role `nested` is not a NestedSdfg"));
            };
            // connector (inner container) → outer container name.
            let mut conn_map: HashMap<String, String> = HashMap::new();
            for e in st.graph.in_edges(nid) {
                let df = st.graph.edge(e);
                if let Some(c) = &df.dst_conn {
                    conn_map.insert(c.clone(), df.memlet.data_name().to_string());
                }
            }
            for e in st.graph.out_edges(nid) {
                let df = st.graph.edge(e);
                if let Some(c) = &df.src_conn {
                    conn_map.insert(c.clone(), df.memlet.data_name().to_string());
                }
            }
            (inner.clone(), symbol_mapping.clone(), conn_map)
        };
        // Bring in transients under fresh names.
        let mut rename: HashMap<String, String> = conn_map.clone();
        for (name, desc) in &inner.data {
            if rename.contains_key(name) {
                continue;
            }
            let fresh = sdfg.fresh_data_name(&format!("{}_{name}", inner.name));
            sdfg.data.insert(fresh.clone(), desc.clone());
            rename.insert(name.clone(), fresh);
        }
        let inner_state_id = inner
            .graph
            .node_ids()
            .next()
            .ok_or_else(|| SdfgError::transform("nested SDFG has no states"))?;
        let inner_state = inner.graph.node(inner_state_id).clone();
        let state = sdfg.state_mut(m.state);
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        for n in inner_state.graph.node_ids() {
            let mut node = inner_state.graph.node(n).clone();
            if let Node::Access { data } = &mut node {
                if let Some(r) = rename.get(data) {
                    *data = r.clone();
                }
            }
            remap.insert(n, state.graph.add_node(node));
        }
        for (&_old, &new) in remap.clone().iter() {
            if let Node::MapExit { entry } | Node::ConsumeExit { entry } = state.graph.node_mut(new)
            {
                if let Some(&ne) = remap.get(entry) {
                    *entry = ne;
                }
            }
        }
        for e in inner_state.graph.edge_ids() {
            let (src, dst) = inner_state.graph.edge_endpoints(e);
            let mut df: Dataflow = inner_state.graph.edge(e).clone();
            if let Some(d) = &df.memlet.data {
                if let Some(r) = rename.get(d) {
                    df.memlet.data = Some(r.clone());
                }
            }
            // Rename scope connectors referencing renamed containers.
            df.src_conn = df.src_conn.map(|c| rename_conn(c, &rename));
            df.dst_conn = df.dst_conn.map(|c| rename_conn(c, &rename));
            state.graph.add_edge(remap[&src], remap[&dst], df);
        }
        // Sequencing: outer producers feeding the nested node now feed the
        // cloned read access nodes; likewise consumers read from cloned
        // write nodes. Since the memlets covered whole arrays with the same
        // names, dropping the nested node and its edges suffices when the
        // outer endpoints are plain access nodes of the same container —
        // redirect ordering edges otherwise.
        let in_edges: Vec<EdgeId> = state.graph.in_edges(nid).collect();
        for e in in_edges {
            state.graph.remove_edge(e);
        }
        let out_edges: Vec<EdgeId> = state.graph.out_edges(nid).collect();
        for e in out_edges {
            state.graph.remove_edge(e);
        }
        state.graph.remove_node(nid);
        Ok(())
    }
}

fn rename_conn(c: String, rename: &HashMap<String, String>) -> String {
    for (from, to) in rename {
        if from == to {
            continue;
        }
        if let Some(rest) = c.strip_prefix("IN_") {
            if rest == from {
                return format!("IN_{to}");
            }
        }
        if let Some(rest) = c.strip_prefix("OUT_") {
            if rest == from {
                return format!("OUT_{to}");
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{apply_first, Params};
    use sdfg_core::{DType, Memlet};
    use sdfg_frontend::SdfgBuilder;

    #[test]
    fn map_to_for_loop_sequentializes() {
        let mut b = SdfgBuilder::new("s");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "t",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "A", "i")],
        );
        let mut sdfg = b.build().unwrap();
        assert!(apply_first(&mut sdfg, &MapToForLoop, &Params::new()).unwrap());
        let st = sdfg.state(sdfg.start.unwrap());
        let me = crate::helpers::map_entries(st)[0];
        assert_eq!(
            crate::helpers::scope_of(st, me).schedule,
            Schedule::Sequential
        );
        // Idempotent matching: no more non-sequential maps.
        assert!(MapToForLoop.find(&sdfg).is_empty());
    }

    #[test]
    fn state_fusion_sequences_through_access_nodes() {
        let mut b = SdfgBuilder::new("sf");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        b.transient("T", &["N"], DType::F64);
        b.array("B", &["N"], DType::F64);
        let s1 = b.state("one");
        b.mapped_tasklet(
            s1,
            "t1",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "T", "i")],
        );
        let s2 = b.state("two");
        b.mapped_tasklet(
            s2,
            "t2",
            &[("i", "0:N")],
            &[("t", "T", "i")],
            "o = t + 1",
            &[("o", "B", "i")],
        );
        b.transition(s1, s2);
        let mut sdfg = b.build().unwrap();
        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_symbol("N", 5);
            it.set_array("A", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
            it.set_array("B", vec![0.0; 5]);
            it.run().unwrap();
            it.array("B").to_vec()
        };
        let before = run(&sdfg);
        assert!(apply_first(&mut sdfg, &StateFusion, &Params::new()).unwrap());
        assert_eq!(sdfg.graph.node_count(), 1);
        sdfg.validate().expect("valid after fusion");
        assert_eq!(run(&sdfg), before);
        // Reads of T in the fused state flow from the write node: the graph
        // stays acyclic and ordered.
        let st = sdfg.state(sdfg.start.unwrap());
        assert!(!sdfg_graph::algo::has_cycle(&st.graph));
    }

    #[test]
    fn state_fusion_rejects_write_write_hazard() {
        let mut b = SdfgBuilder::new("ww");
        b.symbol("N");
        b.array("A", &["N"], DType::F64);
        let s1 = b.state("one");
        b.mapped_tasklet(
            s1,
            "t1",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a * 2",
            &[("o", "A", "i")],
        );
        let s2 = b.state("two");
        b.mapped_tasklet(
            s2,
            "t2",
            &[("i", "0:N")],
            &[("a", "A", "i")],
            "o = a + 1",
            &[("o", "A", "i")],
        );
        b.transition(s1, s2);
        let sdfg = b.build().unwrap();
        assert!(StateFusion.find(&sdfg).is_empty());
    }

    #[test]
    fn inline_single_state_nested() {
        // Outer state invokes a nested doubling SDFG on the whole array.
        let mut ib = SdfgBuilder::new("inner");
        ib.array("X", &["4"], DType::F64);
        let ist = ib.state("s");
        ib.mapped_tasklet(
            ist,
            "d",
            &[("i", "0:4")],
            &[("x", "X", "i")],
            "o = x * 2",
            &[("o", "X", "i")],
        );
        let inner = ib.build().unwrap();
        let mut sdfg = Sdfg::new("outer");
        sdfg.add_array("A", &["4"], DType::F64);
        let sid = sdfg.add_state("main");
        let st = sdfg.state_mut(sid);
        let a_r = st.add_access("A");
        let a_w = st.add_access("A");
        let n = st.add_node(Node::NestedSdfg {
            sdfg: Box::new(inner),
            symbol_mapping: Default::default(),
            inputs: vec!["X".into()],
            outputs: vec!["X".into()],
        });
        st.add_edge(a_r, None, n, Some("X"), Memlet::parse("A", "0:4"));
        st.add_edge(n, Some("X"), a_w, None, Memlet::parse("A", "0:4"));
        sdfg.validate().expect("valid before inline");
        let run = |sdfg: &Sdfg| {
            let mut it = sdfg_interp::Interpreter::new(sdfg);
            it.set_array("A", vec![1.0, 2.0, 3.0, 4.0]);
            it.run().unwrap();
            it.array("A").to_vec()
        };
        let before = run(&sdfg);
        assert!(apply_first(&mut sdfg, &InlineSdfg, &Params::new()).unwrap());
        sdfg.validate().expect("valid after inline");
        // No nested nodes remain.
        let st = sdfg.state(sdfg.start.unwrap());
        assert!(!st
            .graph
            .node_ids()
            .any(|n| matches!(st.graph.node(n), Node::NestedSdfg { .. })));
        assert_eq!(run(&sdfg), before);
    }
}
