//! The transformation framework: matches, typed parameters, the trait, and
//! the registry.

use sdfg_core::{Sdfg, SdfgError, StateId};
use sdfg_graph::NodeId;
use sdfg_symbolic::Env;
use std::collections::BTreeMap;
use std::fmt;

/// A located pattern occurrence: the state plus role-named nodes.
#[derive(Clone, Debug)]
pub struct TMatch {
    /// State containing the occurrence (for single-state patterns).
    pub state: StateId,
    /// Role name → matched node.
    pub nodes: BTreeMap<String, NodeId>,
    /// For multi-state patterns: additional states by role.
    pub states: BTreeMap<String, StateId>,
}

impl TMatch {
    /// Creates a match in a state.
    pub fn in_state(state: StateId) -> TMatch {
        TMatch {
            state,
            nodes: BTreeMap::new(),
            states: BTreeMap::new(),
        }
    }

    /// Adds a role binding (builder style).
    pub fn with(mut self, role: &str, node: NodeId) -> TMatch {
        self.nodes.insert(role.to_string(), node);
        self
    }

    /// Looks up a role, failing with [`SdfgError::RoleMissing`] when the
    /// match does not bind it. Rewrites use this with `?` so a malformed
    /// match surfaces as an error instead of a panic.
    pub fn try_node(&self, role: &str) -> Result<NodeId, SdfgError> {
        self.nodes
            .get(role)
            .copied()
            .ok_or_else(|| SdfgError::RoleMissing {
                role: role.to_string(),
            })
    }

    /// Looks up a role, panicking when absent. For tests and call sites
    /// that just built the match themselves.
    pub fn expect_node(&self, role: &str) -> NodeId {
        self.nodes[role]
    }
}

/// A typed transformation parameter value.
///
/// Parameters reach transformations either programmatically
/// ([`Params::set`]) or as text from chain files / the harness command
/// line; [`ParamValue::from_text`] infers the narrowest type (bool → int →
/// dimension list → string) so both routes produce the same values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamValue {
    /// An integer (tile size, vector width, …).
    Int(i64),
    /// A list of dimension indices or sizes (`dims=0,1`, `tile_sizes=32,8`).
    Dims(Vec<usize>),
    /// A flag.
    Bool(bool),
    /// Free text (array names, map parameters, permutation orders).
    Str(String),
}

impl ParamValue {
    /// Parses a textual parameter, inferring the narrowest type.
    pub fn from_text(text: &str) -> ParamValue {
        match text {
            "true" => return ParamValue::Bool(true),
            "false" => return ParamValue::Bool(false),
            _ => {}
        }
        if let Ok(i) = text.parse::<i64>() {
            return ParamValue::Int(i);
        }
        if text.contains(',') {
            let parts: Option<Vec<usize>> = text
                .split(',')
                .map(|p| p.trim().parse::<usize>().ok())
                .collect();
            if let Some(dims) = parts {
                return ParamValue::Dims(dims);
            }
        }
        ParamValue::Str(text.to_string())
    }

    /// Renders back to the chain-file text form. Round-trips with
    /// [`ParamValue::from_text`].
    pub fn to_text(&self) -> String {
        match self {
            ParamValue::Int(i) => i.to_string(),
            ParamValue::Dims(ds) => ds
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(","),
            ParamValue::Bool(b) => b.to_string(),
            ParamValue::Str(s) => s.clone(),
        }
    }

    /// Renders the value with its type, for error messages.
    fn describe(&self) -> String {
        match self {
            ParamValue::Int(i) => format!("int({i})"),
            ParamValue::Dims(ds) => format!("dims({ds:?})"),
            ParamValue::Bool(b) => format!("bool({b})"),
            ParamValue::Str(s) => format!("str(\"{s}\")"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(i: i64) -> ParamValue {
        ParamValue::Int(i)
    }
}

impl From<bool> for ParamValue {
    fn from(b: bool) -> ParamValue {
        ParamValue::Bool(b)
    }
}

impl From<&str> for ParamValue {
    fn from(s: &str) -> ParamValue {
        ParamValue::Str(s.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(s: String) -> ParamValue {
        ParamValue::Str(s)
    }
}

impl From<Vec<usize>> for ParamValue {
    fn from(ds: Vec<usize>) -> ParamValue {
        ParamValue::Dims(ds)
    }
}

/// Typed transformation parameters.
///
/// Accessors return `Err` with the parameter *name* on a type mismatch —
/// never a silent default — so `Vectorization width=wide` is a loud error
/// instead of a quiet `width=4`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Params {
    entries: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Creates an empty parameter set.
    pub fn new() -> Params {
        Params::default()
    }

    /// Sets a parameter.
    pub fn set(&mut self, name: &str, value: impl Into<ParamValue>) {
        self.entries.insert(name.to_string(), value.into());
    }

    /// Sets a parameter (builder style).
    pub fn with(mut self, name: &str, value: impl Into<ParamValue>) -> Params {
        self.set(name, value);
        self
    }

    /// Sets a parameter from chain-file text, inferring its type.
    pub fn set_text(&mut self, name: &str, text: &str) {
        self.entries
            .insert(name.to_string(), ParamValue::from_text(text));
    }

    /// Raw lookup.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.entries.get(name)
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// An integer parameter, or `None` when unset.
    pub fn int(&self, name: &str) -> Result<Option<i64>, SdfgError> {
        match self.entries.get(name) {
            None => Ok(None),
            Some(ParamValue::Int(i)) => Ok(Some(*i)),
            Some(other) => Err(SdfgError::ParamType {
                param: name.to_string(),
                expected: "int",
                got: other.describe(),
            }),
        }
    }

    /// An integer parameter with a default for when it is unset.
    pub fn int_or(&self, name: &str, default: i64) -> Result<i64, SdfgError> {
        Ok(self.int(name)?.unwrap_or(default))
    }

    /// A dimension-list parameter, or `None` when unset. A bare integer is
    /// accepted as a single-element list (`tile_sizes=8`).
    pub fn dims(&self, name: &str) -> Result<Option<Vec<usize>>, SdfgError> {
        match self.entries.get(name) {
            None => Ok(None),
            Some(ParamValue::Dims(ds)) => Ok(Some(ds.clone())),
            Some(ParamValue::Int(i)) if *i >= 0 => Ok(Some(vec![*i as usize])),
            Some(other) => Err(SdfgError::ParamType {
                param: name.to_string(),
                expected: "dimension list",
                got: other.describe(),
            }),
        }
    }

    /// A flag parameter with a default for when it is unset.
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, SdfgError> {
        match self.entries.get(name) {
            None => Ok(default),
            Some(ParamValue::Bool(b)) => Ok(*b),
            Some(other) => Err(SdfgError::ParamType {
                param: name.to_string(),
                expected: "bool",
                got: other.describe(),
            }),
        }
    }

    /// A string parameter, or `None` when unset.
    pub fn str(&self, name: &str) -> Result<Option<&str>, SdfgError> {
        match self.entries.get(name) {
            None => Ok(None),
            Some(ParamValue::Str(s)) => Ok(Some(s.as_str())),
            Some(other) => Err(SdfgError::ParamType {
                param: name.to_string(),
                expected: "string",
                got: other.describe(),
            }),
        }
    }

    /// A required string parameter.
    pub fn require_str(&self, name: &str) -> Result<&str, SdfgError> {
        self.str(name)?.ok_or_else(|| SdfgError::ParamParse {
            param: name.to_string(),
            text: "<missing>".to_string(),
        })
    }
}

/// A per-match profitability estimate, used by the automatic pipeline to
/// decide which heuristic transformations to fire (the manual `Chain` path
/// ignores hints — the performance engineer is the heuristic there).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostHint {
    /// Expected to reduce runtime on this runtime's execution model.
    Beneficial,
    /// Not expected to change runtime materially (e.g. metadata-only).
    Neutral,
    /// Expected to add overhead; the pipeline skips these.
    Unprofitable,
    /// No estimate available; the pipeline is conservative and skips.
    Unknown,
}

/// A data-centric graph transformation (paper §4.1).
pub trait Transformation {
    /// Registry name (used in chains).
    fn name(&self) -> &'static str;

    /// Finds all occurrences of the pattern in the SDFG.
    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch>;

    /// Applies the rewrite at a match, with parameters.
    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), SdfgError>;

    /// True for *strict* transformations (can only improve the graph; safe
    /// to apply greedily, like DaCe's strict-transformation pass).
    fn strict(&self) -> bool {
        false
    }

    /// Estimates whether applying at `m` would pay off under the symbol
    /// bindings in `env`. The default is [`CostHint::Unknown`], which the
    /// automatic pipeline treats as "don't fire".
    fn cost_hint(&self, _sdfg: &Sdfg, _m: &TMatch, _env: &Env) -> CostHint {
        CostHint::Unknown
    }
}

impl fmt::Debug for dyn Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Transformation({})", self.name())
    }
}

/// All transformations in the standard library (Appendix B + D).
pub fn registry() -> Vec<Box<dyn Transformation>> {
    vec![
        Box::new(crate::map_transforms::MapCollapse),
        Box::new(crate::map_transforms::MapExpansion),
        Box::new(crate::map_transforms::MapFusion),
        Box::new(crate::map_transforms::MapInterchange),
        Box::new(crate::map_transforms::MapReduceFusion),
        Box::new(crate::map_transforms::MapTiling),
        Box::new(crate::data_transforms::DoubleBuffering),
        Box::new(crate::data_transforms::LocalStorage),
        Box::new(crate::data_transforms::LocalStream),
        Box::new(crate::data_transforms::Vectorization),
        Box::new(crate::data_transforms::RedundantArray),
        Box::new(crate::flow_transforms::MapToForLoop),
        Box::new(crate::flow_transforms::StateFusion),
        Box::new(crate::flow_transforms::InlineSdfg),
        Box::new(crate::device_transforms::FpgaTransform),
        Box::new(crate::device_transforms::GpuTransform),
        Box::new(crate::device_transforms::MpiTransform),
    ]
}

/// Looks up a transformation by name.
pub fn by_name(name: &str) -> Option<Box<dyn Transformation>> {
    registry().into_iter().find(|t| t.name() == name)
}

/// Applies the first match of `t` (with `params`); returns whether a match
/// existed. After application, memlets are re-propagated.
pub fn apply_first(
    sdfg: &mut Sdfg,
    t: &dyn Transformation,
    params: &Params,
) -> Result<bool, SdfgError> {
    let matches = t.find(sdfg);
    let Some(m) = matches.first() else {
        return Ok(false);
    };
    t.apply(sdfg, m, params)?;
    sdfg_core::propagate::propagate_sdfg(sdfg);
    Ok(true)
}

/// Greedily applies all strict transformations until fixpoint (bounded) —
/// DaCe applies these automatically after frontend parsing.
///
/// This is the lightweight entry point; [`crate::pipeline`] adds
/// per-rewrite validation, cycle detection, and reporting on top.
pub fn apply_strict(sdfg: &mut Sdfg) -> Result<usize, SdfgError> {
    let strict: Vec<Box<dyn Transformation>> =
        registry().into_iter().filter(|t| t.strict()).collect();
    let mut total = 0usize;
    for _round in 0..64 {
        let mut applied = false;
        for t in &strict {
            if apply_first(sdfg, t.as_ref(), &Params::new())? {
                applied = true;
                total += 1;
            }
        }
        if !applied {
            break;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_16_plus_redundant() {
        let names: Vec<&str> = registry().iter().map(|t| t.name()).collect();
        for expected in [
            "MapCollapse",
            "MapExpansion",
            "MapFusion",
            "MapInterchange",
            "MapReduceFusion",
            "MapTiling",
            "DoubleBuffering",
            "LocalStorage",
            "LocalStream",
            "Vectorization",
            "RedundantArray",
            "MapToForLoop",
            "StateFusion",
            "InlineSDFG",
            "FPGATransform",
            "GPUTransform",
            "MPITransform",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn by_name_resolves() {
        assert!(by_name("MapTiling").is_some());
        assert!(by_name("NoSuchTransform").is_none());
    }

    #[test]
    fn param_text_roundtrip_infers_types() {
        assert_eq!(ParamValue::from_text("8"), ParamValue::Int(8));
        assert_eq!(ParamValue::from_text("true"), ParamValue::Bool(true));
        assert_eq!(ParamValue::from_text("32,8"), ParamValue::Dims(vec![32, 8]));
        assert_eq!(
            ParamValue::from_text("i0"),
            ParamValue::Str("i0".to_string())
        );
        for text in ["8", "true", "32,8", "i0", "-3"] {
            assert_eq!(ParamValue::from_text(text).to_text(), text);
        }
    }

    #[test]
    fn typed_accessors_error_instead_of_defaulting() {
        let p = Params::new().with("width", "wide");
        let err = p.int_or("width", 4).unwrap_err();
        assert_eq!(err.code(), "SDFG-P001");
        assert!(err.to_string().contains("`width`"), "{err}");
        // Unset parameters still take the default.
        assert_eq!(Params::new().int_or("width", 4).unwrap(), 4);
    }

    #[test]
    fn dims_accepts_scalar_int() {
        let p = Params::new().with("tile_sizes", 16i64);
        assert_eq!(p.dims("tile_sizes").unwrap(), Some(vec![16]));
        let p = Params::new().with("tile_sizes", vec![32usize, 8]);
        assert_eq!(p.dims("tile_sizes").unwrap(), Some(vec![32, 8]));
    }

    #[test]
    fn try_node_reports_missing_role() {
        let m = TMatch::in_state(NodeId(0));
        let err = m.try_node("entry").unwrap_err();
        assert_eq!(err.code(), "SDFG-T004");
    }
}
