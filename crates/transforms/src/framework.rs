//! The transformation framework: matches, parameters, the trait, and the
//! registry.

use sdfg_core::{Sdfg, StateId};
use sdfg_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// A located pattern occurrence: the state plus role-named nodes.
#[derive(Clone, Debug)]
pub struct TMatch {
    /// State containing the occurrence (for single-state patterns).
    pub state: StateId,
    /// Role name → matched node.
    pub nodes: BTreeMap<String, NodeId>,
    /// For multi-state patterns: additional states by role.
    pub states: BTreeMap<String, StateId>,
}

impl TMatch {
    /// Creates a match in a state.
    pub fn in_state(state: StateId) -> TMatch {
        TMatch {
            state,
            nodes: BTreeMap::new(),
            states: BTreeMap::new(),
        }
    }

    /// Adds a role binding (builder style).
    pub fn with(mut self, role: &str, node: NodeId) -> TMatch {
        self.nodes.insert(role.to_string(), node);
        self
    }

    /// Looks up a role.
    pub fn node(&self, role: &str) -> NodeId {
        self.nodes[role]
    }
}

/// String-keyed transformation parameters (tile sizes, dimension choices).
pub type Params = BTreeMap<String, String>;

/// Error applying a transformation.
#[derive(Clone, Debug)]
pub struct TransformError {
    /// Explanation.
    pub message: String,
}

impl TransformError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> TransformError {
        TransformError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TransformError {}

/// A data-centric graph transformation (paper §4.1).
pub trait Transformation {
    /// Registry name (used in chains).
    fn name(&self) -> &'static str;

    /// Finds all occurrences of the pattern in the SDFG.
    fn find(&self, sdfg: &Sdfg) -> Vec<TMatch>;

    /// Applies the rewrite at a match, with parameters.
    fn apply(&self, sdfg: &mut Sdfg, m: &TMatch, params: &Params) -> Result<(), TransformError>;

    /// True for *strict* transformations (can only improve the graph; safe
    /// to apply greedily, like DaCe's strict-transformation pass).
    fn strict(&self) -> bool {
        false
    }
}

/// All transformations in the standard library (Appendix B + D).
pub fn registry() -> Vec<Box<dyn Transformation>> {
    vec![
        Box::new(crate::map_transforms::MapCollapse),
        Box::new(crate::map_transforms::MapExpansion),
        Box::new(crate::map_transforms::MapFusion),
        Box::new(crate::map_transforms::MapInterchange),
        Box::new(crate::map_transforms::MapReduceFusion),
        Box::new(crate::map_transforms::MapTiling),
        Box::new(crate::data_transforms::DoubleBuffering),
        Box::new(crate::data_transforms::LocalStorage),
        Box::new(crate::data_transforms::LocalStream),
        Box::new(crate::data_transforms::Vectorization),
        Box::new(crate::data_transforms::RedundantArray),
        Box::new(crate::flow_transforms::MapToForLoop),
        Box::new(crate::flow_transforms::StateFusion),
        Box::new(crate::flow_transforms::InlineSdfg),
        Box::new(crate::device_transforms::FpgaTransform),
        Box::new(crate::device_transforms::GpuTransform),
        Box::new(crate::device_transforms::MpiTransform),
    ]
}

/// Looks up a transformation by name.
pub fn by_name(name: &str) -> Option<Box<dyn Transformation>> {
    registry().into_iter().find(|t| t.name() == name)
}

/// Applies the first match of `t` (with `params`); returns whether a match
/// existed. After application, memlets are re-propagated.
pub fn apply_first(
    sdfg: &mut Sdfg,
    t: &dyn Transformation,
    params: &Params,
) -> Result<bool, TransformError> {
    let matches = t.find(sdfg);
    let Some(m) = matches.first() else {
        return Ok(false);
    };
    t.apply(sdfg, m, params)?;
    sdfg_core::propagate::propagate_sdfg(sdfg);
    Ok(true)
}

/// Greedily applies all strict transformations until fixpoint (bounded) —
/// DaCe applies these automatically after frontend parsing.
pub fn apply_strict(sdfg: &mut Sdfg) -> Result<usize, TransformError> {
    let strict: Vec<Box<dyn Transformation>> =
        registry().into_iter().filter(|t| t.strict()).collect();
    let mut total = 0usize;
    for _round in 0..64 {
        let mut applied = false;
        for t in &strict {
            if apply_first(sdfg, t.as_ref(), &Params::new())? {
                applied = true;
                total += 1;
            }
        }
        if !applied {
            break;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_16_plus_redundant() {
        let names: Vec<&str> = registry().iter().map(|t| t.name()).collect();
        for expected in [
            "MapCollapse",
            "MapExpansion",
            "MapFusion",
            "MapInterchange",
            "MapReduceFusion",
            "MapTiling",
            "DoubleBuffering",
            "LocalStorage",
            "LocalStream",
            "Vectorization",
            "RedundantArray",
            "MapToForLoop",
            "StateFusion",
            "InlineSDFG",
            "FPGATransform",
            "GPUTransform",
            "MPITransform",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn by_name_resolves() {
        assert!(by_name("MapTiling").is_some());
        assert!(by_name("NoSuchTransform").is_none());
    }
}
