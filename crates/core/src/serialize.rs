//! Hand-rolled JSON import/export of SDFGs (the analogue of DaCe's
//! `.sdfg` files).
//!
//! A minimal writer/reader pair is used instead of a JSON dependency (the
//! offline crate set has no `serde_json`). [`to_json`] and [`from_json`]
//! round-trip every IR construct, including `Instrument` annotations on
//! states and map scopes, nested SDFGs, and memlets (re-parsed from their
//! display form).

use crate::desc::{ArrayDesc, DataDesc, ScalarDesc, StreamDesc};
use crate::dtype::{DType, Storage};
use crate::memlet::{Memlet, Wcr};
use crate::node::{ConsumeScope, Instrument, MapScope, Node, Schedule, TaskletLang};
use crate::sdfg::{InterstateEdge, Sdfg, State};
use sdfg_graph::NodeId;
use sdfg_symbolic::{parse_expr, Expr, Subset};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serializes an SDFG to a JSON string.
pub fn to_json(sdfg: &Sdfg) -> String {
    let mut w = JsonWriter::new();
    write_sdfg(&mut w, sdfg);
    w.out
}

struct JsonWriter {
    out: String,
    indent: usize,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }
}

/// Escapes a string for JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn q(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn write_sdfg(w: &mut JsonWriter, sdfg: &Sdfg) {
    w.line("{");
    w.indent += 1;
    w.line("\"type\": \"SDFG\",");
    w.line(&format!("\"name\": {},", q(&sdfg.name)));
    let syms: Vec<String> = sdfg.symbols.iter().map(|s| q(s)).collect();
    w.line(&format!("\"symbols\": [{}],", syms.join(", ")));
    w.line("\"containers\": {");
    w.indent += 1;
    let n = sdfg.data.len();
    for (i, (name, desc)) in sdfg.data.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        w.line(&format!("{}: {}{}", q(name), desc_json(desc), comma));
    }
    w.indent -= 1;
    w.line("},");
    w.line("\"states\": [");
    w.indent += 1;
    let sids: Vec<_> = sdfg.graph.node_ids().collect();
    for (i, &sid) in sids.iter().enumerate() {
        write_state(w, sdfg, sid);
        if i + 1 < sids.len() {
            w.out.pop(); // replace trailing newline with ",\n"
            w.out.push_str(",\n");
        }
    }
    w.indent -= 1;
    w.line("],");
    w.line("\"transitions\": [");
    w.indent += 1;
    let eids: Vec<_> = sdfg.graph.edge_ids().collect();
    for (i, &eid) in eids.iter().enumerate() {
        let (src, dst) = sdfg.graph.edge_endpoints(eid);
        let t = sdfg.graph.edge(eid);
        let assigns: Vec<String> = t
            .assignments
            .iter()
            .map(|(s, e)| format!("{}: {}", q(s), q(&e.to_string())))
            .collect();
        let comma = if i + 1 < eids.len() { "," } else { "" };
        w.line(&format!(
            "{{\"src\": {}, \"dst\": {}, \"condition\": {}, \"assignments\": {{{}}}}}{}",
            src.index(),
            dst.index(),
            q(&t.condition.to_string()),
            assigns.join(", "),
            comma
        ));
    }
    w.indent -= 1;
    w.line("],");
    w.line(&format!(
        "\"start_state\": {}",
        sdfg.start.map(|s| s.index() as i64).unwrap_or(-1)
    ));
    w.indent -= 1;
    w.line("}");
}

fn desc_json(desc: &DataDesc) -> String {
    match desc {
        DataDesc::Array(a) => {
            let shape: Vec<String> = a.shape.iter().map(|e| q(&e.to_string())).collect();
            let strides: Vec<String> = a.strides.iter().map(|e| q(&e.to_string())).collect();
            format!(
                "{{\"kind\": \"array\", \"dtype\": {}, \"shape\": [{}], \"strides\": [{}], \"storage\": {}, \"transient\": {}}}",
                q(&a.dtype.to_string()),
                shape.join(", "),
                strides.join(", "),
                q(&a.storage.to_string()),
                a.transient
            )
        }
        DataDesc::Stream(s) => {
            let shape: Vec<String> = s.shape.iter().map(|e| q(&e.to_string())).collect();
            format!(
                "{{\"kind\": \"stream\", \"dtype\": {}, \"shape\": [{}], \"buffer_size\": {}, \"storage\": {}, \"transient\": {}}}",
                q(&s.dtype.to_string()),
                shape.join(", "),
                s.buffer_size
                    .as_ref()
                    .map(|e| q(&e.to_string()))
                    .unwrap_or("null".into()),
                q(&s.storage.to_string()),
                s.transient
            )
        }
        DataDesc::Scalar(s) => format!(
            "{{\"kind\": \"scalar\", \"dtype\": {}, \"storage\": {}, \"transient\": {}}}",
            q(&s.dtype.to_string()),
            q(&s.storage.to_string()),
            s.transient
        ),
    }
}

fn write_state(w: &mut JsonWriter, sdfg: &Sdfg, sid: crate::StateId) {
    let state = sdfg.graph.node(sid);
    w.line("{");
    w.indent += 1;
    w.line(&format!("\"id\": {},", sid.index()));
    w.line(&format!("\"label\": {},", q(&state.label)));
    w.line(&format!(
        "\"instrument\": {},",
        q(&state.instrument.to_string())
    ));
    w.line("\"nodes\": [");
    w.indent += 1;
    let nids: Vec<_> = state.graph.node_ids().collect();
    for (i, &nid) in nids.iter().enumerate() {
        let comma = if i + 1 < nids.len() { "," } else { "" };
        w.line(&format!(
            "{{\"id\": {}, {}}}{}",
            nid.index(),
            node_json(state.graph.node(nid)),
            comma
        ));
    }
    w.indent -= 1;
    w.line("],");
    w.line("\"edges\": [");
    w.indent += 1;
    let eids: Vec<_> = state.graph.edge_ids().collect();
    for (i, &eid) in eids.iter().enumerate() {
        let (src, dst) = state.graph.edge_endpoints(eid);
        let df = state.graph.edge(eid);
        let comma = if i + 1 < eids.len() { "," } else { "" };
        w.line(&format!(
            "{{\"src\": {}, \"src_conn\": {}, \"dst\": {}, \"dst_conn\": {}, \"memlet\": {}}}{}",
            src.index(),
            df.src_conn.as_deref().map(q).unwrap_or("null".into()),
            dst.index(),
            df.dst_conn.as_deref().map(q).unwrap_or("null".into()),
            q(&df.memlet.to_string()),
            comma
        ));
    }
    w.indent -= 1;
    w.line("]");
    w.indent -= 1;
    w.line("}");
}

fn node_json(node: &Node) -> String {
    match node {
        Node::Access { data } => format!("\"kind\": \"access\", \"data\": {}", q(data)),
        Node::Tasklet {
            name,
            inputs,
            outputs,
            code,
            lang,
        } => {
            let ins: Vec<String> = inputs.iter().map(|s| q(s)).collect();
            let outs: Vec<String> = outputs.iter().map(|s| q(s)).collect();
            format!(
                "\"kind\": \"tasklet\", \"name\": {}, \"inputs\": [{}], \"outputs\": [{}], \"code\": {}, \"lang\": {}",
                q(name),
                ins.join(", "),
                outs.join(", "),
                q(code),
                q(&format!("{lang:?}"))
            )
        }
        Node::MapEntry(m) => {
            let dims: Vec<String> = m
                .iter_dims()
                .map(|(p, r)| format!("{}: {}", q(p), q(&r.to_string())))
                .collect();
            format!(
                "\"kind\": \"map_entry\", \"label\": {}, \"dims\": {{{}}}, \"schedule\": {}, \"unroll\": {}, \"vector_len\": {}, \"instrument\": {}",
                q(&m.label),
                dims.join(", "),
                q(&m.schedule.to_string()),
                m.unroll,
                m.vector_len
                    .map(|v| v.to_string())
                    .unwrap_or("null".into()),
                q(&m.instrument.to_string())
            )
        }
        Node::MapExit { entry } => {
            format!("\"kind\": \"map_exit\", \"entry\": {}", entry.index())
        }
        Node::ConsumeEntry(c) => format!(
            "\"kind\": \"consume_entry\", \"label\": {}, \"pe\": {}, \"num_pes\": {}, \"element\": {}, \"condition\": {}, \"schedule\": {}",
            q(&c.label),
            q(&c.pe_param),
            q(&c.num_pes.to_string()),
            q(&c.element),
            c.condition.as_deref().map(q).unwrap_or("null".into()),
            q(&c.schedule.to_string())
        ),
        Node::ConsumeExit { entry } => {
            format!("\"kind\": \"consume_exit\", \"entry\": {}", entry.index())
        }
        Node::Reduce { wcr, axes, identity } => format!(
            "\"kind\": \"reduce\", \"wcr\": {}, \"axes\": {}, \"identity\": {}",
            q(&wcr.to_string()),
            match axes {
                Some(a) => format!("{a:?}"),
                None => "null".into(),
            },
            match identity {
                Some(v) => format!("{v}"),
                None => "null".into(),
            }
        ),
        Node::NestedSdfg {
            sdfg,
            symbol_mapping,
            inputs,
            outputs,
        } => {
            let ins: Vec<String> = inputs.iter().map(|s| q(s)).collect();
            let outs: Vec<String> = outputs.iter().map(|s| q(s)).collect();
            let map: Vec<String> = symbol_mapping
                .iter()
                .map(|(s, e)| format!("{}: {}", q(s), q(&e.to_string())))
                .collect();
            // The inner SDFG is inlined in compact (single-line) form;
            // real newlines inside strings are escaped by `json_escape`,
            // so collapsing formatting whitespace is lossless.
            let inner: Vec<String> = to_json(sdfg)
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect();
            format!(
                "\"kind\": \"nested_sdfg\", \"name\": {}, \"inputs\": [{}], \"outputs\": [{}], \"symbol_mapping\": {{{}}}, \"sdfg\": {}",
                q(&sdfg.name),
                ins.join(", "),
                outs.join(", "),
                map.join(", "),
                inner.join(" ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

/// Streaming 64-bit FNV-1a hasher. Unlike `std::hash`, the algorithm is
/// pinned — digests are stable across processes, platforms and Rust
/// versions, so they can key on-disk artifacts and cross-run caches.
pub struct Fnv64(u64);

impl Fnv64 {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Stable 64-bit content hash of an SDFG.
///
/// The hash is FNV-1a over the canonical serialized form ([`to_json`]), so
/// its domain is exactly what serialization captures: the program name,
/// declared symbols, container descriptors (shape/stride/storage/transient
/// expressions), every state's nodes and memlets (including tasklet source,
/// map schedules and instrumentation annotations), interstate transitions,
/// and the start state — nested SDFGs included, since they serialize
/// inline. It deliberately excludes runtime bindings: symbol *values*,
/// array contents and thread counts are not part of the program identity
/// and key execution plans separately.
///
/// Determinism: `to_json` iterates `BTreeSet`/`BTreeMap` collections and
/// graph ids in index order, so structurally equal SDFGs hash equally in
/// any process. Any serialized structural edit (adding a node, changing a
/// memlet subset) changes the digest.
pub fn content_hash(sdfg: &Sdfg) -> u64 {
    let mut h = Fnv64::new();
    h.write(to_json(sdfg).as_bytes());
    h.finish()
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep key order (the writer emits map dims
/// in parameter order, which must survive).
///
/// Public so tooling built on this workspace (e.g. the bench harness's
/// baseline files) can parse small JSON documents without growing a
/// dependency; [`parse_json`] is the entry point.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (`None` for other variants).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required string field of an object.
    pub fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            other => Err(format!("expected string field `{key}`, got {other:?}")),
        }
    }

    /// Required numeric field of an object.
    pub fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            other => Err(format!("expected number field `{key}`, got {other:?}")),
        }
    }

    /// Required boolean field of an object.
    pub fn bool_field(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            other => Err(format!("expected bool field `{key}`, got {other:?}")),
        }
    }

    /// Required array field of an object.
    pub fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [Json], String> {
        match self.get(key) {
            Some(Json::Arr(a)) => Ok(a),
            other => Err(format!("expected array field `{key}`, got {other:?}")),
        }
    }

    /// Required object field of an object.
    pub fn obj_field<'a>(&'a self, key: &str) -> Result<&'a [(String, Json)], String> {
        match self.get(key) {
            Some(Json::Obj(o)) => Ok(o),
            other => Err(format!("expected object field `{key}`, got {other:?}")),
        }
    }
}

/// Parses a standalone JSON document into a [`Json`] value.
///
/// Every parse failure reports the byte offset and 1-based line/column of
/// the offending input, so callers can surface actionable diagnostics for
/// documents received over the wire.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err_at(p.pos, "trailing garbage"));
    }
    Ok(v)
}

/// Default size limit for serialized programs received over the wire:
/// 16 MiB, far above any graph this workspace produces but small enough
/// to shed hostile payloads before parsing.
pub const DEFAULT_MAX_PROGRAM_BYTES: usize = 16 << 20;

/// Parses a JSON document from untrusted input, rejecting payloads above
/// `max_bytes` before the parser ever runs.
pub fn parse_json_limited(src: &str, max_bytes: usize) -> Result<Json, String> {
    if src.len() > max_bytes {
        return Err(format!(
            "payload of {} bytes exceeds the {}-byte limit",
            src.len(),
            max_bytes
        ));
    }
    parse_json(src)
}

/// Deserializes an SDFG from untrusted wire input with a size limit,
/// reporting typed [`crate::SdfgError`]s: oversize payloads fail with
/// `SDFG-S001` before parsing, malformed documents with a message that
/// carries the byte offset and line/column of the defect.
pub fn from_json_limited(src: &str, max_bytes: usize) -> Result<Sdfg, crate::SdfgError> {
    if src.len() > max_bytes {
        return Err(crate::SdfgError::PayloadTooLarge {
            limit: max_bytes,
            got: src.len(),
        });
    }
    from_json(src).map_err(|message| crate::SdfgError::Serialize { message })
}

struct JsonParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> Self {
        JsonParser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Renders `msg` with the byte offset and 1-based line/column of
    /// `pos` — every parse failure goes through here so malformed input
    /// is always reported with its position.
    fn err_at(&self, pos: usize, msg: &str) -> String {
        let pos = pos.min(self.src.len());
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.src[..pos] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("{msg} at byte {pos} (line {line}, column {col})")
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err_at(
                self.pos,
                &format!(
                    "expected `{}`, found {:?}",
                    b as char,
                    other.map(|c| c as char)
                ),
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(self.err_at(self.pos, &format!("unexpected {other:?}"))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err_at(self.pos, "invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && matches!(
                self.src[self.pos],
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err_at(start, "invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.src.get(self.pos) else {
                return Err(self.err_at(self.pos, "unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.src.get(self.pos) else {
                        return Err(self.err_at(self.pos, "unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err_at(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err_at(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err_at(self.pos, "bad \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(self.err_at(
                                self.pos - 1,
                                &format!("bad escape `\\{}`", other as char),
                            ))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.src.len() && (self.src[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.src[start..end])
                            .map_err(|_| self.err_at(start, "invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                other => {
                    return Err(
                        self.err_at(self.pos, &format!("expected `,` or `]`, found {other:?}"))
                    )
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                other => {
                    return Err(
                        self.err_at(self.pos, &format!("expected `,` or `}}`, found {other:?}"))
                    )
                }
            }
        }
    }
}

fn parse_dtype(s: &str) -> Result<DType, String> {
    Ok(match s {
        "float32" => DType::F32,
        "float64" => DType::F64,
        "int32" => DType::I32,
        "int64" => DType::I64,
        "uint32" => DType::U32,
        "bool" => DType::Bool,
        other => return Err(format!("unknown dtype `{other}`")),
    })
}

fn parse_storage(s: &str) -> Result<Storage, String> {
    Ok(match s {
        "Default" => Storage::Default,
        "CpuHeap" => Storage::CpuHeap,
        "CpuThreadLocal" => Storage::CpuThreadLocal,
        "GpuGlobal" => Storage::GpuGlobal,
        "GpuShared" => Storage::GpuShared,
        "Register" => Storage::Register,
        "FpgaGlobal" => Storage::FpgaGlobal,
        "FpgaLocal" => Storage::FpgaLocal,
        other => return Err(format!("unknown storage `{other}`")),
    })
}

fn parse_expr_str(s: &str) -> Result<Expr, String> {
    parse_expr(s).map_err(|e| format!("invalid expression `{s}`: {e:?}"))
}

fn parse_wcr(s: &str) -> Result<Wcr, String> {
    Ok(match s {
        "Sum" => Wcr::Sum,
        "Product" => Wcr::Product,
        "Min" => Wcr::Min,
        "Max" => Wcr::Max,
        other => match other.strip_prefix("lambda old, new: ") {
            Some(code) => Wcr::Custom(code.to_string()),
            None => return Err(format!("unknown WCR `{other}`")),
        },
    })
}

/// Parses a memlet from its display form (`A(dyn)[0:N] -> [0:N] (CR: Sum)`).
pub fn parse_memlet(src: &str) -> Result<Memlet, String> {
    let mut s = src.trim();
    if s == "∅" || s.is_empty() {
        return Ok(Memlet::empty());
    }
    let mut wcr = None;
    if let Some(pos) = s.rfind(" (CR: ") {
        let tail = &s[pos + 6..];
        let inner = tail
            .strip_suffix(')')
            .ok_or_else(|| format!("unterminated CR clause in `{src}`"))?;
        wcr = Some(parse_wcr(inner)?);
        s = s[..pos].trim_end();
    }
    let mut other_subset = None;
    if let Some(pos) = s.rfind(" -> [") {
        let tail = &s[pos + 5..];
        let inner = tail
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated other-subset in `{src}`"))?;
        other_subset =
            Some(Subset::parse(inner).map_err(|e| format!("bad other-subset `{inner}`: {e:?}"))?);
        s = s[..pos].trim_end();
    }
    // Head: name [ "(" dyn-or-volume ")" ] "[" subset "]"
    let open = s
        .find(['(', '['])
        .ok_or_else(|| format!("memlet `{src}` has no subset"))?;
    let name = &s[..open];
    if name.is_empty() {
        return Err(format!("memlet `{src}` has no container name"));
    }
    let mut dynamic = false;
    let mut volume_override = None;
    let mut rest = &s[open..];
    if let Some(stripped) = rest.strip_prefix('(') {
        // Balanced-paren scan: the volume expression may contain parens.
        let mut depth = 1usize;
        let mut end = None;
        for (i, c) in stripped.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| format!("unbalanced parens in `{src}`"))?;
        let inner = &stripped[..end];
        if inner == "dyn" {
            dynamic = true;
        } else {
            volume_override = Some(parse_expr_str(inner)?);
        }
        rest = &stripped[end + 1..];
    }
    let body = rest
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("memlet `{src}` subset is not bracketed"))?;
    let subset = if body.is_empty() {
        Subset::default()
    } else {
        Subset::parse(body).map_err(|e| format!("bad subset `{body}`: {e:?}"))?
    };
    let mut m = Memlet::new(name, subset);
    if dynamic {
        m = m.dynamic();
    }
    if let Some(v) = volume_override {
        m = m.with_volume(v);
    }
    if let Some(w) = wcr {
        m = m.with_wcr(w);
    }
    if let Some(os) = other_subset {
        m = m.with_other_subset(os);
    }
    Ok(m)
}

fn desc_from_json(v: &Json) -> Result<DataDesc, String> {
    let kind = v.str_field("kind")?;
    let dtype = parse_dtype(v.str_field("dtype")?)?;
    let storage = parse_storage(v.str_field("storage")?)?;
    let transient = v.bool_field("transient")?;
    let exprs = |key: &str| -> Result<Vec<Expr>, String> {
        v.arr_field(key)?
            .iter()
            .map(|e| match e {
                Json::Str(s) => parse_expr_str(s),
                other => Err(format!("expected expr string, got {other:?}")),
            })
            .collect()
    };
    Ok(match kind {
        "array" => DataDesc::Array(ArrayDesc {
            dtype,
            shape: exprs("shape")?,
            strides: exprs("strides")?,
            storage,
            transient,
        }),
        "stream" => DataDesc::Stream(StreamDesc {
            dtype,
            shape: exprs("shape")?,
            buffer_size: match v.get("buffer_size") {
                Some(Json::Str(s)) => Some(parse_expr_str(s)?),
                _ => None,
            },
            storage,
            transient,
        }),
        "scalar" => DataDesc::Scalar(ScalarDesc {
            dtype,
            storage,
            transient,
        }),
        other => return Err(format!("unknown container kind `{other}`")),
    })
}

fn instrument_from(v: &Json, key: &str) -> Result<Instrument, String> {
    match v.get(key) {
        Some(Json::Str(s)) => s.parse(),
        None => Ok(Instrument::None), // pre-instrumentation files
        other => Err(format!("expected instrument string, got {other:?}")),
    }
}

fn node_from_json(v: &Json) -> Result<Node, String> {
    let kind = v.str_field("kind")?;
    let strings = |key: &str| -> Result<Vec<String>, String> {
        v.arr_field(key)?
            .iter()
            .map(|e| match e {
                Json::Str(s) => Ok(s.clone()),
                other => Err(format!("expected string, got {other:?}")),
            })
            .collect()
    };
    Ok(match kind {
        "access" => Node::access(v.str_field("data")?),
        "tasklet" => Node::Tasklet {
            name: v.str_field("name")?.to_string(),
            inputs: strings("inputs")?,
            outputs: strings("outputs")?,
            code: v.str_field("code")?.to_string(),
            lang: match v.str_field("lang")? {
                "Python" => TaskletLang::Python,
                "Cpp" => TaskletLang::Cpp,
                other => return Err(format!("unknown tasklet lang `{other}`")),
            },
        },
        "map_entry" => {
            let mut params = Vec::new();
            let mut ranges = Vec::new();
            for (p, r) in v.obj_field("dims")? {
                let Json::Str(r) = r else {
                    return Err(format!("expected range string for dim `{p}`"));
                };
                let sub = Subset::parse(r).map_err(|e| format!("bad map range `{r}`: {e:?}"))?;
                if sub.dims.len() != 1 {
                    return Err(format!("map range `{r}` is not one-dimensional"));
                }
                params.push(p.clone());
                ranges.push(sub.dims.into_iter().next().unwrap());
            }
            let mut scope = MapScope::new(v.str_field("label")?, params, ranges);
            scope.schedule = v.str_field("schedule")?.parse()?;
            scope.unroll = v.bool_field("unroll")?;
            scope.vector_len = match v.get("vector_len") {
                Some(Json::Num(n)) => Some(*n as u32),
                _ => None,
            };
            scope.instrument = instrument_from(v, "instrument")?;
            Node::MapEntry(scope)
        }
        // Scope-exit `entry` ids are remapped by the caller in a second
        // pass (the paired entry may have any id).
        "map_exit" => Node::MapExit {
            entry: NodeId(v.num_field("entry")? as u32),
        },
        "consume_entry" => Node::ConsumeEntry(ConsumeScope {
            label: v.str_field("label")?.to_string(),
            pe_param: v.str_field("pe")?.to_string(),
            num_pes: parse_expr_str(v.str_field("num_pes")?)?,
            element: v.str_field("element")?.to_string(),
            condition: match v.get("condition") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            },
            schedule: match v.get("schedule") {
                Some(Json::Str(s)) => s.parse()?,
                _ => Schedule::default(),
            },
        }),
        "consume_exit" => Node::ConsumeExit {
            entry: NodeId(v.num_field("entry")? as u32),
        },
        "reduce" => Node::Reduce {
            wcr: parse_wcr(v.str_field("wcr")?)?,
            axes: match v.get("axes") {
                Some(Json::Arr(a)) => Some(
                    a.iter()
                        .map(|e| match e {
                            Json::Num(n) => Ok(*n as usize),
                            other => Err(format!("expected axis number, got {other:?}")),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                ),
                _ => None,
            },
            identity: match v.get("identity") {
                Some(Json::Num(n)) => Some(*n),
                _ => None,
            },
        },
        "nested_sdfg" => {
            let inner = v
                .get("sdfg")
                .ok_or_else(|| "nested_sdfg without inner `sdfg`".to_string())?;
            let mut symbol_mapping = BTreeMap::new();
            for (s, e) in v.obj_field("symbol_mapping")? {
                let Json::Str(e) = e else {
                    return Err(format!("expected expr string for symbol `{s}`"));
                };
                symbol_mapping.insert(s.clone(), parse_expr_str(e)?);
            }
            Node::NestedSdfg {
                sdfg: Box::new(sdfg_from_value(inner)?),
                symbol_mapping,
                inputs: strings("inputs")?,
                outputs: strings("outputs")?,
            }
        }
        other => return Err(format!("unknown node kind `{other}`")),
    })
}

fn sdfg_from_value(v: &Json) -> Result<Sdfg, String> {
    let mut sdfg = Sdfg::new(v.str_field("name")?);
    sdfg.start = None; // set explicitly below, not by add_state
    for s in v.arr_field("symbols")? {
        match s {
            Json::Str(s) => sdfg.add_symbol(s.clone()),
            other => return Err(format!("expected symbol string, got {other:?}")),
        }
    }
    for (name, desc) in v.obj_field("containers")? {
        sdfg.data.insert(name.clone(), desc_from_json(desc)?);
    }
    // States: ids in the file may be non-contiguous (transformations can
    // delete states/nodes), so build explicit old-id → new-id maps.
    let mut state_map: std::collections::HashMap<usize, crate::StateId> =
        std::collections::HashMap::new();
    for sv in v.arr_field("states")? {
        let old_id = sv.num_field("id")? as usize;
        let mut state = State::new(sv.str_field("label")?);
        state.instrument = instrument_from(sv, "instrument")?;
        let mut node_map: std::collections::HashMap<usize, NodeId> =
            std::collections::HashMap::new();
        let mut exits: Vec<NodeId> = Vec::new();
        for nv in sv.arr_field("nodes")? {
            let old_nid = nv.num_field("id")? as usize;
            let node = node_from_json(nv)?;
            let is_exit = node.is_scope_exit();
            let nid = state.add_node(node);
            node_map.insert(old_nid, nid);
            if is_exit {
                exits.push(nid);
            }
        }
        // Second pass: remap scope-exit entry references.
        for nid in exits {
            let old_entry = state
                .graph
                .node(nid)
                .exit_entry()
                .expect("collected node is a scope exit")
                .index();
            let new_entry = *node_map
                .get(&old_entry)
                .ok_or_else(|| format!("scope exit references unknown node {old_entry}"))?;
            match state.graph.node_mut(nid) {
                Node::MapExit { entry } | Node::ConsumeExit { entry } => *entry = new_entry,
                _ => unreachable!(),
            }
        }
        for ev in sv.arr_field("edges")? {
            let src = *node_map
                .get(&(ev.num_field("src")? as usize))
                .ok_or_else(|| "edge references unknown src node".to_string())?;
            let dst = *node_map
                .get(&(ev.num_field("dst")? as usize))
                .ok_or_else(|| "edge references unknown dst node".to_string())?;
            let conn = |key: &str| match ev.get(key) {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            };
            let memlet = parse_memlet(ev.str_field("memlet")?)?;
            state.graph.add_edge(
                src,
                dst,
                crate::sdfg::Dataflow {
                    src_conn: conn("src_conn"),
                    dst_conn: conn("dst_conn"),
                    memlet,
                },
            );
        }
        let sid = sdfg.graph.add_node(state);
        state_map.insert(old_id, sid);
    }
    for tv in v.arr_field("transitions")? {
        let src = *state_map
            .get(&(tv.num_field("src")? as usize))
            .ok_or_else(|| "transition references unknown src state".to_string())?;
        let dst = *state_map
            .get(&(tv.num_field("dst")? as usize))
            .ok_or_else(|| "transition references unknown dst state".to_string())?;
        let cond_src = tv.str_field("condition")?;
        let condition = crate::cond::parse_cond(cond_src)
            .map_err(|e| format!("bad condition `{cond_src}`: {e:?}"))?;
        let mut assignments = Vec::new();
        for (s, e) in tv.obj_field("assignments")? {
            let Json::Str(e) = e else {
                return Err(format!("expected expr string for assignment to `{s}`"));
            };
            assignments.push((s.clone(), parse_expr_str(e)?));
        }
        sdfg.add_transition(
            src,
            dst,
            InterstateEdge {
                condition,
                assignments,
            },
        );
    }
    let start = v.num_field("start_state")?;
    sdfg.start = if start < 0.0 {
        None
    } else {
        Some(
            *state_map
                .get(&(start as usize))
                .ok_or_else(|| "start_state references unknown state".to_string())?,
        )
    };
    Ok(sdfg)
}

/// Deserializes an SDFG from the JSON produced by [`to_json`].
pub fn from_json(src: &str) -> Result<Sdfg, String> {
    let v = parse_json(src)?;
    sdfg_from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::Memlet;
    use crate::node::MapScope;
    use crate::DType;
    use sdfg_symbolic::SymRange;

    #[test]
    fn json_has_all_sections() {
        let mut s = Sdfg::new("json_demo");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_stream("S", DType::F64);
        s.add_scalar("x", DType::I64, true);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["v"], &["o"], "o = v + 1");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("v"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("o"), mx, Some("IN_A"), Memlet::parse("A", "i"));
        let aa = st.add_access("A");
        st.add_edge(mx, Some("OUT_A"), aa, None, Memlet::parse("A", "0:N"));
        let json = to_json(&s);
        for needle in [
            "\"type\": \"SDFG\"",
            "\"name\": \"json_demo\"",
            "\"kind\": \"array\"",
            "\"kind\": \"stream\"",
            "\"kind\": \"scalar\"",
            "\"kind\": \"map_entry\"",
            "\"kind\": \"tasklet\"",
            "\"start_state\": 0",
            "\"code\": \"o = v + 1\"",
        ] {
            assert!(json.contains(needle), "missing `{needle}` in:\n{json}");
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn memlet_display_round_trips() {
        for text in [
            "A[i]",
            "A[0:N, k]",
            "S(dyn)[0]",
            "A[i] (CR: Sum)",
            "A[i] (CR: lambda old, new: old + new*new)",
            "B[0:N] -> [1:N + 1]",
            "C(N + 1)[0:N, 0:M]",
            "∅",
        ] {
            let m = parse_memlet(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(m.to_string(), text, "display of parse differs");
        }
    }

    fn instrumented_sdfg() -> Sdfg {
        let mut s = Sdfg::new("rt_demo");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_array("B", &["N"], DType::F64);
        let sid = s.add_state("compute");
        let st = s.state_mut(sid);
        st.instrument = Instrument::Timer;
        let a = st.add_access("A");
        let b = st.add_access("B");
        let mut scope = MapScope::new("m", vec!["i".into()], vec![SymRange::new(0, "N")]);
        scope.instrument = Instrument::Counter;
        scope.vector_len = Some(4);
        let (me, mx) = st.add_map(scope);
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x * 2");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("y"), mx, Some("IN_B"), Memlet::parse("B", "i"));
        st.add_edge(mx, Some("OUT_B"), b, None, Memlet::parse("B", "0:N"));
        let done = s.add_state("done");
        s.add_transition(
            sid,
            done,
            InterstateEdge::when("i < N").assign("i", "i + 1"),
        );
        s
    }

    /// Satellite: an SDFG with `Instrument` annotations survives
    /// serialize → deserialize → validate unchanged.
    #[test]
    fn instrument_round_trip() {
        let s = instrumented_sdfg();
        s.validate().expect("source validates");
        let json = to_json(&s);
        assert!(json.contains("\"instrument\": \"Timer\""));
        assert!(json.contains("\"instrument\": \"Counter\""));
        let back = from_json(&json).expect("deserializes");
        back.validate().expect("round-tripped SDFG validates");
        // Field-level checks: annotations and structure survived.
        let sid = back.start.unwrap();
        assert_eq!(back.state(sid).instrument, Instrument::Timer);
        let st = back.state(sid);
        let me = st
            .graph
            .node_ids()
            .find(|&n| st.node(n).is_scope_entry())
            .unwrap();
        let Node::MapEntry(scope) = st.node(me) else {
            panic!("not a map entry")
        };
        assert_eq!(scope.instrument, Instrument::Counter);
        assert_eq!(scope.vector_len, Some(4));
        assert_eq!(scope.params, vec!["i"]);
        // Byte-level check: a second round trip is a fixed point.
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn full_ir_round_trip() {
        use crate::node::ConsumeScope;
        let mut s = Sdfg::new("full");
        s.add_symbol("N");
        s.add_array("A", &["N", "N+1"], DType::F32);
        s.add_stream("S", DType::F64);
        s.add_scalar("acc", DType::I64, true);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let (ce, cx) = st.add_consume(ConsumeScope {
            label: "c".into(),
            pe_param: "p".into(),
            num_pes: crate::Expr::from("4"),
            element: "e".into(),
            condition: Some("len == 0".into()),
            schedule: crate::Schedule::Sequential,
        });
        let r = st.add_node(Node::Reduce {
            wcr: Wcr::Max,
            axes: Some(vec![0]),
            identity: Some(-1.5),
        });
        let sacc = st.add_access("S");
        st.add_edge(
            sacc,
            None,
            ce,
            Some("IN_stream"),
            Memlet::parse("S", "0").dynamic(),
        );
        st.add_edge(ce, Some("OUT_stream"), r, None, Memlet::parse("S", "0"));
        st.add_edge(r, None, cx, Some("IN_A"), Memlet::parse("A", "0, 0"));
        st.add_edge(cx, Some("OUT_A"), a, None, Memlet::parse("A", "0:N, 0"));
        let json = to_json(&s);
        let back = from_json(&json).expect("deserializes");
        assert_eq!(to_json(&back), json, "round trip is a fixed point");
    }

    #[test]
    fn nested_sdfg_round_trips() {
        let mut inner = Sdfg::new("inner");
        inner.add_symbol("K");
        inner.add_array("X", &["K"], DType::F64);
        let isid = inner.add_state("body");
        inner.state_mut(isid).instrument = Instrument::Counter;

        let mut outer = Sdfg::new("outer");
        outer.add_symbol("N");
        outer.add_array("X", &["N"], DType::F64);
        let osid = outer.add_state("main");
        let st = outer.state_mut(osid);
        let x = st.add_access("X");
        let mut mapping = std::collections::BTreeMap::new();
        mapping.insert("K".to_string(), crate::Expr::sym("N"));
        let n = st.add_node(Node::NestedSdfg {
            sdfg: Box::new(inner),
            symbol_mapping: mapping,
            inputs: vec!["X".into()],
            outputs: vec!["X".into()],
        });
        st.add_edge(x, None, n, Some("X"), Memlet::parse("X", "0:N"));
        let json = to_json(&outer);
        let back = from_json(&json).expect("deserializes");
        assert_eq!(to_json(&back), json, "round trip is a fixed point");
        let st = back.state(back.start.unwrap());
        let nid = st
            .graph
            .node_ids()
            .find(|&i| matches!(st.node(i), Node::NestedSdfg { .. }))
            .unwrap();
        let Node::NestedSdfg {
            sdfg,
            symbol_mapping,
            ..
        } = st.node(nid)
        else {
            unreachable!()
        };
        assert_eq!(sdfg.name, "inner");
        assert_eq!(
            sdfg.state(sdfg.start.unwrap()).instrument,
            Instrument::Counter
        );
        assert_eq!(symbol_mapping["K"], crate::Expr::sym("N"));
    }

    #[test]
    fn content_hash_is_stable() {
        // Structurally identical SDFGs built independently hash equally,
        // and a serialization round trip is hash-neutral.
        let a = instrumented_sdfg();
        let b = instrumented_sdfg();
        assert_eq!(content_hash(&a), content_hash(&b));
        let back = from_json(&to_json(&a)).expect("round trips");
        assert_eq!(content_hash(&a), content_hash(&back));
    }

    #[test]
    fn content_hash_sees_structural_edits() {
        let base = instrumented_sdfg();
        let h0 = content_hash(&base);

        // Adding a node changes the digest.
        let mut with_node = instrumented_sdfg();
        let sid = with_node.start.unwrap();
        with_node.state_mut(sid).add_access("A");
        assert_ne!(content_hash(&with_node), h0, "added node must rehash");

        // Changing one memlet subset changes the digest.
        let mut with_memlet = instrumented_sdfg();
        let sid = with_memlet.start.unwrap();
        let st = with_memlet.state_mut(sid);
        let e = st
            .graph
            .edge_ids()
            .find(|&e| st.graph.edge(e).memlet.to_string() == "A[i]")
            .expect("per-point memlet present");
        st.graph.edge_mut(e).memlet = Memlet::parse("A", "i + 1");
        assert_ne!(content_hash(&with_memlet), h0, "edited memlet must rehash");

        // Symbol *names* are part of the identity...
        let mut with_symbol = instrumented_sdfg();
        with_symbol.add_symbol("M");
        assert_ne!(
            content_hash(&with_symbol),
            h0,
            "declared symbol must rehash"
        );
    }

    #[test]
    fn fnv64_reference_vectors() {
        // Published FNV-1a test vectors pin the algorithm.
        let digest = |s: &str| {
            let mut h = Fnv64::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf29ce484222325);
        assert_eq!(digest("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn parse_json_value_api() {
        let v = parse_json(r#"{"a": 1.5, "b": [true, null], "c": "x"}"#).unwrap();
        assert_eq!(v.num_field("a").unwrap(), 1.5);
        assert_eq!(v.arr_field("b").unwrap().len(), 2);
        assert_eq!(v.str_field("c").unwrap(), "x");
        assert!(parse_json("{} junk").is_err());
    }
}
