//! Hand-rolled JSON export of SDFGs (the analogue of DaCe's `.sdfg` files).
//!
//! Only serialization is provided — the IR's source of truth is the builder
//! API and frontends; the JSON form exists for inspection, diffing and
//! external tooling. A minimal writer is used instead of a JSON dependency
//! (the offline crate set has no `serde_json`).

use crate::desc::DataDesc;
use crate::node::Node;
use crate::sdfg::Sdfg;
use std::fmt::Write as _;

/// Serializes an SDFG to a JSON string.
pub fn to_json(sdfg: &Sdfg) -> String {
    let mut w = JsonWriter::new();
    write_sdfg(&mut w, sdfg);
    w.out
}

struct JsonWriter {
    out: String,
    indent: usize,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }
}

/// Escapes a string for JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn q(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn write_sdfg(w: &mut JsonWriter, sdfg: &Sdfg) {
    w.line("{");
    w.indent += 1;
    w.line(&format!("\"type\": \"SDFG\","));
    w.line(&format!("\"name\": {},", q(&sdfg.name)));
    let syms: Vec<String> = sdfg.symbols.iter().map(|s| q(s)).collect();
    w.line(&format!("\"symbols\": [{}],", syms.join(", ")));
    w.line("\"containers\": {");
    w.indent += 1;
    let n = sdfg.data.len();
    for (i, (name, desc)) in sdfg.data.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        w.line(&format!("{}: {}{}", q(name), desc_json(desc), comma));
    }
    w.indent -= 1;
    w.line("},");
    w.line("\"states\": [");
    w.indent += 1;
    let sids: Vec<_> = sdfg.graph.node_ids().collect();
    for (i, &sid) in sids.iter().enumerate() {
        write_state(w, sdfg, sid);
        if i + 1 < sids.len() {
            w.out.pop(); // replace trailing newline with ",\n"
            w.out.push_str(",\n");
        }
    }
    w.indent -= 1;
    w.line("],");
    w.line("\"transitions\": [");
    w.indent += 1;
    let eids: Vec<_> = sdfg.graph.edge_ids().collect();
    for (i, &eid) in eids.iter().enumerate() {
        let (src, dst) = sdfg.graph.edge_endpoints(eid);
        let t = sdfg.graph.edge(eid);
        let assigns: Vec<String> = t
            .assignments
            .iter()
            .map(|(s, e)| format!("{}: {}", q(s), q(&e.to_string())))
            .collect();
        let comma = if i + 1 < eids.len() { "," } else { "" };
        w.line(&format!(
            "{{\"src\": {}, \"dst\": {}, \"condition\": {}, \"assignments\": {{{}}}}}{}",
            src.index(),
            dst.index(),
            q(&t.condition.to_string()),
            assigns.join(", "),
            comma
        ));
    }
    w.indent -= 1;
    w.line("],");
    w.line(&format!(
        "\"start_state\": {}",
        sdfg.start.map(|s| s.index() as i64).unwrap_or(-1)
    ));
    w.indent -= 1;
    w.line("}");
}

fn desc_json(desc: &DataDesc) -> String {
    match desc {
        DataDesc::Array(a) => {
            let shape: Vec<String> = a.shape.iter().map(|e| q(&e.to_string())).collect();
            let strides: Vec<String> = a.strides.iter().map(|e| q(&e.to_string())).collect();
            format!(
                "{{\"kind\": \"array\", \"dtype\": {}, \"shape\": [{}], \"strides\": [{}], \"storage\": {}, \"transient\": {}}}",
                q(&a.dtype.to_string()),
                shape.join(", "),
                strides.join(", "),
                q(&a.storage.to_string()),
                a.transient
            )
        }
        DataDesc::Stream(s) => {
            let shape: Vec<String> = s.shape.iter().map(|e| q(&e.to_string())).collect();
            format!(
                "{{\"kind\": \"stream\", \"dtype\": {}, \"shape\": [{}], \"storage\": {}, \"transient\": {}}}",
                q(&s.dtype.to_string()),
                shape.join(", "),
                q(&s.storage.to_string()),
                s.transient
            )
        }
        DataDesc::Scalar(s) => format!(
            "{{\"kind\": \"scalar\", \"dtype\": {}, \"storage\": {}, \"transient\": {}}}",
            q(&s.dtype.to_string()),
            q(&s.storage.to_string()),
            s.transient
        ),
    }
}

fn write_state(w: &mut JsonWriter, sdfg: &Sdfg, sid: crate::StateId) {
    let state = sdfg.graph.node(sid);
    w.line("{");
    w.indent += 1;
    w.line(&format!("\"id\": {},", sid.index()));
    w.line(&format!("\"label\": {},", q(&state.label)));
    w.line("\"nodes\": [");
    w.indent += 1;
    let nids: Vec<_> = state.graph.node_ids().collect();
    for (i, &nid) in nids.iter().enumerate() {
        let comma = if i + 1 < nids.len() { "," } else { "" };
        w.line(&format!(
            "{{\"id\": {}, {}}}{}",
            nid.index(),
            node_json(state.graph.node(nid)),
            comma
        ));
    }
    w.indent -= 1;
    w.line("],");
    w.line("\"edges\": [");
    w.indent += 1;
    let eids: Vec<_> = state.graph.edge_ids().collect();
    for (i, &eid) in eids.iter().enumerate() {
        let (src, dst) = state.graph.edge_endpoints(eid);
        let df = state.graph.edge(eid);
        let comma = if i + 1 < eids.len() { "," } else { "" };
        w.line(&format!(
            "{{\"src\": {}, \"src_conn\": {}, \"dst\": {}, \"dst_conn\": {}, \"memlet\": {}}}{}",
            src.index(),
            df.src_conn.as_deref().map(q).unwrap_or("null".into()),
            dst.index(),
            df.dst_conn.as_deref().map(q).unwrap_or("null".into()),
            q(&df.memlet.to_string()),
            comma
        ));
    }
    w.indent -= 1;
    w.line("]");
    w.indent -= 1;
    w.line("}");
}

fn node_json(node: &Node) -> String {
    match node {
        Node::Access { data } => format!("\"kind\": \"access\", \"data\": {}", q(data)),
        Node::Tasklet {
            name,
            inputs,
            outputs,
            code,
            lang,
        } => {
            let ins: Vec<String> = inputs.iter().map(|s| q(s)).collect();
            let outs: Vec<String> = outputs.iter().map(|s| q(s)).collect();
            format!(
                "\"kind\": \"tasklet\", \"name\": {}, \"inputs\": [{}], \"outputs\": [{}], \"code\": {}, \"lang\": {}",
                q(name),
                ins.join(", "),
                outs.join(", "),
                q(code),
                q(&format!("{lang:?}"))
            )
        }
        Node::MapEntry(m) => {
            let dims: Vec<String> = m
                .iter_dims()
                .map(|(p, r)| format!("{}: {}", q(p), q(&r.to_string())))
                .collect();
            format!(
                "\"kind\": \"map_entry\", \"label\": {}, \"dims\": {{{}}}, \"schedule\": {}, \"unroll\": {}",
                q(&m.label),
                dims.join(", "),
                q(&m.schedule.to_string()),
                m.unroll
            )
        }
        Node::MapExit { entry } => {
            format!("\"kind\": \"map_exit\", \"entry\": {}", entry.index())
        }
        Node::ConsumeEntry(c) => format!(
            "\"kind\": \"consume_entry\", \"label\": {}, \"pe\": {}, \"num_pes\": {}, \"condition\": {}",
            q(&c.label),
            q(&c.pe_param),
            q(&c.num_pes.to_string()),
            c.condition.as_deref().map(q).unwrap_or("null".into())
        ),
        Node::ConsumeExit { entry } => {
            format!("\"kind\": \"consume_exit\", \"entry\": {}", entry.index())
        }
        Node::Reduce { wcr, axes, identity } => format!(
            "\"kind\": \"reduce\", \"wcr\": {}, \"axes\": {}, \"identity\": {}",
            q(&wcr.to_string()),
            match axes {
                Some(a) => format!("{a:?}"),
                None => "null".into(),
            },
            match identity {
                Some(v) => format!("{v}"),
                None => "null".into(),
            }
        ),
        Node::NestedSdfg { sdfg, inputs, outputs, .. } => {
            let ins: Vec<String> = inputs.iter().map(|s| q(s)).collect();
            let outs: Vec<String> = outputs.iter().map(|s| q(s)).collect();
            format!(
                "\"kind\": \"nested_sdfg\", \"name\": {}, \"inputs\": [{}], \"outputs\": [{}]",
                q(&sdfg.name),
                ins.join(", "),
                outs.join(", ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::Memlet;
    use crate::node::MapScope;
    use crate::DType;
    use sdfg_symbolic::SymRange;

    #[test]
    fn json_has_all_sections() {
        let mut s = Sdfg::new("json_demo");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_stream("S", DType::F64);
        s.add_scalar("x", DType::I64, true);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["v"], &["o"], "o = v + 1");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("v"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("o"), mx, Some("IN_A"), Memlet::parse("A", "i"));
        let aa = st.add_access("A");
        st.add_edge(mx, Some("OUT_A"), aa, None, Memlet::parse("A", "0:N"));
        let json = to_json(&s);
        for needle in [
            "\"type\": \"SDFG\"",
            "\"name\": \"json_demo\"",
            "\"kind\": \"array\"",
            "\"kind\": \"stream\"",
            "\"kind\": \"scalar\"",
            "\"kind\": \"map_entry\"",
            "\"kind\": \"tasklet\"",
            "\"start_state\": 0",
            "\"code\": \"o = v + 1\"",
        ] {
            assert!(json.contains(needle), "missing `{needle}` in:\n{json}");
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
