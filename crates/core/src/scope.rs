//! Scope analysis: which nodes belong to which map/consume scope.
//!
//! The paper defines an enclosed subgraph as "nodes dominated by a scope
//! entry node and post-dominated by an exit node" (§3.3). Because exits are
//! explicitly paired with entries in this IR, scope membership can be
//! computed by a forward pass in topological order, which also verifies
//! proper nesting (every path entering a scope goes through the entry).

use crate::node::Node;
use crate::sdfg::State;
use sdfg_graph::NodeId;
use std::collections::HashMap;

/// Scope parent relation: for each node, the scope entry that immediately
/// contains it (`None` = top level of the state).
#[derive(Clone, Debug, Default)]
pub struct ScopeTree {
    /// node → immediately-enclosing scope entry.
    pub parent: HashMap<NodeId, Option<NodeId>>,
}

/// Error produced when the scope structure is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScopeError {
    /// Offending node.
    pub node: NodeId,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ScopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scope error at {:?}: {}", self.node, self.message)
    }
}

impl std::error::Error for ScopeError {}

impl ScopeTree {
    /// The immediately-enclosing scope entry of `n`.
    pub fn scope_of(&self, n: NodeId) -> Option<NodeId> {
        self.parent.get(&n).copied().flatten()
    }

    /// Chain of enclosing scope entries, innermost first.
    pub fn ancestors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.scope_of(n);
        while let Some(e) = cur {
            out.push(e);
            cur = self.scope_of(e);
        }
        out
    }

    /// Nesting depth (0 = top level).
    pub fn depth(&self, n: NodeId) -> usize {
        self.ancestors(n).len()
    }

    /// All nodes whose immediate scope is `entry` (`None` = top level).
    pub fn children(&self, entry: Option<NodeId>) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .parent
            .iter()
            .filter(|(_, p)| **p == entry)
            .map(|(n, _)| *n)
            .collect();
        out.sort_unstable();
        out
    }
}

/// Computes the scope tree of a state.
pub fn scope_tree(state: &State) -> Result<ScopeTree, ScopeError> {
    let order = sdfg_graph::algo::topological_sort(&state.graph).map_err(|c| ScopeError {
        node: c.witness,
        message: "state dataflow graph is cyclic".into(),
    })?;
    let mut parent: HashMap<NodeId, Option<NodeId>> = HashMap::new();
    for n in order {
        let node = state.graph.node(n);
        // Scope of n as implied by each predecessor.
        let mut implied: Option<Option<NodeId>> = None;
        for p in state.graph.predecessors(n) {
            let p_node = state.graph.node(p);
            let scope_from_p: Option<NodeId> = if p_node.is_scope_entry() {
                if node.exit_entry() == Some(p) {
                    // Empty scope: exit directly connected to its entry.
                    parent[&p]
                } else {
                    Some(p)
                }
            } else if p_node.is_scope_exit() {
                // Successor of an exit lives in the exit's parent scope.
                parent[&p_node.exit_entry().expect("exit is paired")]
            } else {
                parent[&p]
            };
            // An exit closes its own scope: its parent is the entry's parent.
            // Its predecessors must be inside the scope (or be the entry
            // itself, for an empty scope).
            let effective = if let Some(entry) = node.exit_entry() {
                if scope_from_p == Some(entry) || p == entry {
                    parent[&entry]
                } else {
                    return Err(ScopeError {
                        node: n,
                        message: format!(
                            "scope exit reached from {:?}, which is not inside its scope",
                            p
                        ),
                    });
                }
            } else {
                scope_from_p
            };
            match implied {
                None => implied = Some(effective),
                Some(prev) if prev == effective => {}
                Some(prev) => {
                    return Err(ScopeError {
                        node: n,
                        message: format!(
                            "predecessors imply conflicting scopes ({prev:?} vs {effective:?})"
                        ),
                    })
                }
            }
        }
        let scope = match implied {
            Some(s) => s,
            None => {
                if node.is_scope_exit() {
                    return Err(ScopeError {
                        node: n,
                        message: "scope exit has no predecessors".into(),
                    });
                }
                None // source nodes are top-level
            }
        };
        parent.insert(n, scope);
    }
    Ok(ScopeTree { parent })
}

/// Nodes strictly inside the scope of `entry` (excluding entry and exit),
/// i.e. reachable from the entry without passing its exit, and from which
/// the exit is reachable.
pub fn scope_members(state: &State, entry: NodeId) -> Vec<NodeId> {
    let tree = match scope_tree(state) {
        Ok(t) => t,
        Err(_) => return Vec::new(),
    };
    let mut out: Vec<NodeId> = tree
        .parent
        .iter()
        .filter(|(n, _)| {
            let mut anc = tree.ancestors(**n);
            anc.retain(|&a| a == entry);
            !anc.is_empty()
        })
        .map(|(n, _)| *n)
        .filter(|&n| state.graph.node(n).exit_entry() != Some(entry))
        .collect();
    out.sort_unstable();
    out
}

/// The innermost schedule surrounding node `n` (`None` if top-level).
pub fn enclosing_schedule(state: &State, tree: &ScopeTree, n: NodeId) -> Option<crate::Schedule> {
    for entry in tree.ancestors(n) {
        match state.graph.node(entry) {
            Node::MapEntry(m) => return Some(m.schedule),
            Node::ConsumeEntry(c) => return Some(c.schedule),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::Memlet;
    use crate::node::MapScope;
    use crate::sdfg::State;
    use sdfg_symbolic::SymRange;

    fn simple_map_state() -> (State, NodeId, NodeId, NodeId, NodeId, NodeId) {
        let mut st = State::new("s");
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x");
        let b = st.add_access("B");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("y"), mx, Some("IN_B"), Memlet::parse("B", "i"));
        st.add_edge(mx, Some("OUT_B"), b, None, Memlet::parse("B", "0:N"));
        (st, a, me, t, mx, b)
    }

    #[test]
    fn simple_scope_membership() {
        let (st, a, me, t, mx, b) = simple_map_state();
        let tree = scope_tree(&st).unwrap();
        assert_eq!(tree.scope_of(a), None);
        assert_eq!(tree.scope_of(me), None);
        assert_eq!(tree.scope_of(t), Some(me));
        assert_eq!(tree.scope_of(mx), None); // exit belongs to outer scope
        assert_eq!(tree.scope_of(b), None);
        assert_eq!(scope_members(&st, me), vec![t]);
    }

    #[test]
    fn nested_scopes() {
        let mut st = State::new("s");
        let a = st.add_access("A");
        let (oe, ox) = st.add_map(MapScope::new(
            "outer",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let (ie, ix) = st.add_map(MapScope::new(
            "inner",
            vec!["j".into()],
            vec![SymRange::new(0, "M")],
        ));
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x");
        let b = st.add_access("B");
        st.add_edge(a, None, oe, Some("IN_A"), Memlet::parse("A", "0:N, 0:M"));
        st.add_edge(
            oe,
            Some("OUT_A"),
            ie,
            Some("IN_A"),
            Memlet::parse("A", "i, 0:M"),
        );
        st.add_edge(ie, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i, j"));
        st.add_edge(t, Some("y"), ix, Some("IN_B"), Memlet::parse("B", "i, j"));
        st.add_edge(
            ix,
            Some("OUT_B"),
            ox,
            Some("IN_B"),
            Memlet::parse("B", "i, 0:M"),
        );
        st.add_edge(ox, Some("OUT_B"), b, None, Memlet::parse("B", "0:N, 0:M"));
        let tree = scope_tree(&st).unwrap();
        assert_eq!(tree.scope_of(ie), Some(oe));
        assert_eq!(tree.scope_of(t), Some(ie));
        assert_eq!(tree.depth(t), 2);
        assert_eq!(tree.ancestors(t), vec![ie, oe]);
        // outer scope contains inner entry/exit and tasklet.
        let members = scope_members(&st, oe);
        assert!(members.contains(&ie) && members.contains(&ix) && members.contains(&t));
        assert!(!members.contains(&ox));
    }

    #[test]
    fn conflicting_scopes_rejected() {
        // Tasklet fed both from inside a scope and from outside it.
        let mut st = State::new("bad");
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["x", "z"], &["y"], "y = x + z");
        let b = st.add_access("B");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        // Illegal: bypasses the scope entry.
        st.add_edge(a, None, t, Some("z"), Memlet::parse("A", "0"));
        st.add_edge(t, Some("y"), mx, Some("IN_B"), Memlet::parse("B", "i"));
        st.add_edge(mx, Some("OUT_B"), b, None, Memlet::parse("B", "0:N"));
        assert!(scope_tree(&st).is_err());
    }

    #[test]
    fn empty_scope_entry_to_exit() {
        let mut st = State::new("s");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        st.add_edge(me, None, mx, None, Memlet::empty());
        let tree = scope_tree(&st).unwrap();
        assert_eq!(tree.scope_of(mx), None);
    }

    #[test]
    fn enclosing_schedule_lookup() {
        let (st, _, me, t, _, _) = simple_map_state();
        let tree = scope_tree(&st).unwrap();
        assert_eq!(
            enclosing_schedule(&st, &tree, t),
            Some(crate::Schedule::CpuMulticore)
        );
        assert_eq!(enclosing_schedule(&st, &tree, me), None);
    }
}
