//! The SDFG container: states, interstate edges, and the top-level graph.

use crate::cond::BoolExpr;
use crate::desc::{ArrayDesc, DataDesc, ScalarDesc, StreamDesc};
use crate::dtype::{DType, Storage};
use crate::memlet::Memlet;
use crate::node::Node;
use sdfg_graph::{EdgeId, MultiGraph, NodeId};
use sdfg_symbolic::Expr;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a state in the top-level state machine.
pub type StateId = NodeId;

/// A dataflow edge payload: source/destination connectors plus the memlet.
///
/// Connectors are attachment points on nodes (Appendix A.1): tasklets name
/// their local variables, scope nodes use the `IN_*`/`OUT_*` convention to
/// relate outer and inner memlets, and access nodes use `None`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dataflow {
    /// Connector on the source node (`None` for access nodes).
    pub src_conn: Option<String>,
    /// Connector on the destination node (`None` for access nodes).
    pub dst_conn: Option<String>,
    /// The data movement descriptor.
    pub memlet: Memlet,
}

/// An SDFG state: a named acyclic dataflow multigraph (paper §3).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct State {
    /// State label (unique within the SDFG by construction).
    pub label: String,
    /// The dataflow multigraph.
    pub graph: MultiGraph<Node, Dataflow>,
    /// Instrumentation requested for this state (semantics-neutral; see
    /// [`crate::node::Instrument`]).
    pub instrument: crate::node::Instrument,
}

impl State {
    /// Creates an empty state.
    pub fn new(label: impl Into<String>) -> State {
        State {
            label: label.into(),
            graph: MultiGraph::new(),
            instrument: crate::node::Instrument::default(),
        }
    }

    /// Adds a node.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        self.graph.add_node(node)
    }

    /// Adds an access node for a container.
    pub fn add_access(&mut self, data: impl Into<String>) -> NodeId {
        self.add_node(Node::access(data))
    }

    /// Adds a tasklet node.
    pub fn add_tasklet(
        &mut self,
        name: impl Into<String>,
        inputs: &[&str],
        outputs: &[&str],
        code: impl Into<String>,
    ) -> NodeId {
        self.add_node(Node::tasklet(name, inputs, outputs, code))
    }

    /// Adds a map scope; returns `(entry, exit)`.
    pub fn add_map(&mut self, scope: crate::node::MapScope) -> (NodeId, NodeId) {
        let entry = self.add_node(Node::MapEntry(scope));
        let exit = self.add_node(Node::MapExit { entry });
        (entry, exit)
    }

    /// Adds a consume scope; returns `(entry, exit)`.
    pub fn add_consume(&mut self, scope: crate::node::ConsumeScope) -> (NodeId, NodeId) {
        let entry = self.add_node(Node::ConsumeEntry(scope));
        let exit = self.add_node(Node::ConsumeExit { entry });
        (entry, exit)
    }

    /// Adds a dataflow edge with connectors.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        src_conn: Option<&str>,
        dst: NodeId,
        dst_conn: Option<&str>,
        memlet: Memlet,
    ) -> EdgeId {
        self.graph.add_edge(
            src,
            dst,
            Dataflow {
                src_conn: src_conn.map(str::to_string),
                dst_conn: dst_conn.map(str::to_string),
                memlet,
            },
        )
    }

    /// Adds a connector-less edge (access node to access node, or ordering).
    pub fn add_plain_edge(&mut self, src: NodeId, dst: NodeId, memlet: Memlet) -> EdgeId {
        self.add_edge(src, None, dst, None, memlet)
    }

    /// The node payload.
    pub fn node(&self, id: NodeId) -> &Node {
        self.graph.node(id)
    }

    /// The edge payload.
    pub fn edge(&self, id: EdgeId) -> &Dataflow {
        self.graph.edge(id)
    }

    /// Finds the scope exit paired with `entry`.
    pub fn exit_of(&self, entry: NodeId) -> Option<NodeId> {
        self.graph
            .node_ids()
            .find(|&n| self.graph.node(n).exit_entry() == Some(entry))
    }

    /// All access nodes referring to `data`.
    pub fn accesses_of(&self, data: &str) -> Vec<NodeId> {
        self.graph
            .node_ids()
            .filter(|&n| self.graph.node(n).access_data() == Some(data))
            .collect()
    }

    /// Nodes in deterministic topological order. Panics on cyclic states
    /// (validation rejects them first).
    pub fn topological_order(&self) -> Vec<NodeId> {
        sdfg_graph::algo::topological_sort(&self.graph).expect("state dataflow graph is acyclic")
    }
}

/// A transition in the top-level state machine (paper §3.4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct InterstateEdge {
    /// Transition guard.
    pub condition: BoolExpr,
    /// Symbol assignments performed on transition, in order.
    pub assignments: Vec<(String, Expr)>,
}

impl InterstateEdge {
    /// Unconditional transition with no assignments.
    pub fn always() -> InterstateEdge {
        InterstateEdge::default()
    }

    /// Transition guarded by a parsed condition string.
    pub fn when(cond: &str) -> InterstateEdge {
        InterstateEdge {
            condition: crate::cond::parse_cond(cond)
                .unwrap_or_else(|e| panic!("invalid condition `{cond}`: {e}")),
            assignments: Vec::new(),
        }
    }

    /// Adds an assignment `sym = expr`.
    pub fn assign(mut self, sym: &str, expr: impl Into<Expr>) -> InterstateEdge {
        self.assignments.push((sym.to_string(), expr.into()));
        self
    }
}

/// A Stateful Dataflow Multigraph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sdfg {
    /// Program name.
    pub name: String,
    /// Declared free symbols (sizes, parameters); all assumed integer.
    pub symbols: BTreeSet<String>,
    /// Container declarations, keyed by name.
    pub data: BTreeMap<String, DataDesc>,
    /// The state machine.
    pub graph: MultiGraph<State, InterstateEdge>,
    /// Start state (the first added state unless overridden).
    pub start: Option<StateId>,
}

impl PartialEq for Sdfg {
    fn eq(&self, other: &Self) -> bool {
        // Structural identity by name is sufficient for IR equality checks
        // in tests; deep graph comparison is intentionally not implied.
        self.name == other.name
            && self.symbols == other.symbols
            && self.data == other.data
            && self.start == other.start
            && self.graph.node_count() == other.graph.node_count()
            && self.graph.edge_count() == other.graph.edge_count()
    }
}

impl Sdfg {
    /// Creates an empty SDFG.
    pub fn new(name: impl Into<String>) -> Sdfg {
        Sdfg {
            name: name.into(),
            symbols: BTreeSet::new(),
            data: BTreeMap::new(),
            graph: MultiGraph::new(),
            start: None,
        }
    }

    /// Declares a free symbol.
    pub fn add_symbol(&mut self, name: impl Into<String>) {
        self.symbols.insert(name.into());
    }

    /// Declares an N-D array container. Shapes parse as symbolic
    /// expressions (`&["N", "N+1"]`).
    pub fn add_array(&mut self, name: impl Into<String>, shape: &[&str], dtype: DType) {
        let shape: Vec<Expr> = shape.iter().map(|s| Expr::from(*s)).collect();
        self.data
            .insert(name.into(), DataDesc::Array(ArrayDesc::new(dtype, shape)));
    }

    /// Declares a transient N-D array container.
    pub fn add_transient(&mut self, name: impl Into<String>, shape: &[&str], dtype: DType) {
        let shape: Vec<Expr> = shape.iter().map(|s| Expr::from(*s)).collect();
        let mut a = ArrayDesc::new(dtype, shape);
        a.transient = true;
        self.data.insert(name.into(), DataDesc::Array(a));
    }

    /// Declares a (transient) stream container.
    pub fn add_stream(&mut self, name: impl Into<String>, dtype: DType) {
        self.data
            .insert(name.into(), DataDesc::Stream(StreamDesc::new(dtype)));
    }

    /// Declares a scalar container.
    pub fn add_scalar(&mut self, name: impl Into<String>, dtype: DType, transient: bool) {
        self.data.insert(
            name.into(),
            DataDesc::Scalar(ScalarDesc {
                dtype,
                storage: Storage::Default,
                transient,
            }),
        );
    }

    /// Adds a state; the first added state becomes the start state.
    pub fn add_state(&mut self, label: impl Into<String>) -> StateId {
        let id = self.graph.add_node(State::new(label));
        if self.start.is_none() {
            self.start = Some(id);
        }
        id
    }

    /// Adds an interstate transition.
    pub fn add_transition(&mut self, src: StateId, dst: StateId, edge: InterstateEdge) -> EdgeId {
        self.graph.add_edge(src, dst, edge)
    }

    /// State payload.
    pub fn state(&self, id: StateId) -> &State {
        self.graph.node(id)
    }

    /// Mutable state payload.
    pub fn state_mut(&mut self, id: StateId) -> &mut State {
        self.graph.node_mut(id)
    }

    /// All state ids.
    pub fn state_ids(&self) -> Vec<StateId> {
        self.graph.node_ids().collect()
    }

    /// Container descriptor by name.
    pub fn desc(&self, name: &str) -> Option<&DataDesc> {
        self.data.get(name)
    }

    /// Mutable container descriptor by name.
    pub fn desc_mut(&mut self, name: &str) -> Option<&mut DataDesc> {
        self.data.get_mut(name)
    }

    /// The program's runtime arguments: non-transient containers (sorted)
    /// and declared symbols, matching DaCe's calling convention.
    pub fn arglist(&self) -> (Vec<String>, Vec<String>) {
        let arrays = self
            .data
            .iter()
            .filter(|(_, d)| !d.transient())
            .map(|(n, _)| n.clone())
            .collect();
        let symbols = self.symbols.iter().cloned().collect();
        (arrays, symbols)
    }

    /// Generates a fresh container name with the given prefix.
    pub fn fresh_data_name(&self, prefix: &str) -> String {
        if !self.data.contains_key(prefix) {
            return prefix.to_string();
        }
        for i in 0.. {
            let cand = format!("{prefix}_{i}");
            if !self.data.contains_key(&cand) {
                return cand;
            }
        }
        unreachable!()
    }

    /// Validates the SDFG (see [`mod@crate::validate`]).
    pub fn validate(&self) -> Result<(), Vec<crate::validate::ValidationError>> {
        crate::validate::validate(self)
    }

    /// Free symbols used anywhere that are not bound by map/consume scopes.
    pub fn used_symbols(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for sid in self.graph.node_ids() {
            let st = self.graph.node(sid);
            for nid in st.graph.node_ids() {
                match st.graph.node(nid) {
                    Node::MapEntry(m) => {
                        for r in &m.ranges {
                            r.collect_symbols(&mut out);
                        }
                    }
                    Node::ConsumeEntry(c) => {
                        c.num_pes.collect_symbols(&mut out);
                    }
                    Node::NestedSdfg { symbol_mapping, .. } => {
                        for e in symbol_mapping.values() {
                            e.collect_symbols(&mut out);
                        }
                    }
                    _ => {}
                }
            }
            for eid in st.graph.edge_ids() {
                let df = st.graph.edge(eid);
                for r in &df.memlet.subset.dims {
                    r.collect_symbols(&mut out);
                }
                df.memlet.volume.collect_symbols(&mut out);
            }
        }
        for eid in self.graph.edge_ids() {
            let t = self.graph.edge(eid);
            t.condition.collect_into(&mut out);
            for (_, e) in &t.assignments {
                e.collect_symbols(&mut out);
            }
        }
        for d in self.data.values() {
            for s in d.shape() {
                s.collect_symbols(&mut out);
            }
        }
        // Remove scope-bound parameters.
        for sid in self.graph.node_ids() {
            let st = self.graph.node(sid);
            for nid in st.graph.node_ids() {
                match st.graph.node(nid) {
                    Node::MapEntry(m) => {
                        for p in &m.params {
                            out.remove(p);
                        }
                    }
                    Node::ConsumeEntry(c) => {
                        out.remove(&c.pe_param);
                        out.remove(&c.element);
                    }
                    _ => {}
                }
            }
        }
        // Remove symbols assigned by transitions (loop counters).
        for eid in self.graph.edge_ids() {
            for (s, _) in &self.graph.edge(eid).assignments {
                out.remove(s);
            }
        }
        out
    }
}

impl BoolExpr {
    /// Helper mirroring `Expr::collect_symbols` naming for `used_symbols`.
    pub fn collect_into(&self, out: &mut BTreeSet<String>) {
        for s in self.free_symbols() {
            out.insert(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::MapScope;
    use sdfg_symbolic::SymRange;

    /// Builds the paper's Fig. 6a: C[i] = A[i] + B[i] in a map.
    pub fn vector_add() -> Sdfg {
        let mut s = Sdfg::new("vadd");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_array("B", &["N"], DType::F64);
        s.add_array("C", &["N"], DType::F64);
        let st_id = s.add_state("main");
        let st = s.state_mut(st_id);
        let a = st.add_access("A");
        let b = st.add_access("B");
        let c = st.add_access("C");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("add", &["a", "b"], &["c"], "c = a + b");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(b, None, me, Some("IN_B"), Memlet::parse("B", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("a"), Memlet::parse("A", "i"));
        st.add_edge(me, Some("OUT_B"), t, Some("b"), Memlet::parse("B", "i"));
        st.add_edge(t, Some("c"), mx, Some("IN_C"), Memlet::parse("C", "i"));
        st.add_edge(mx, Some("OUT_C"), c, None, Memlet::parse("C", "0:N"));
        s
    }

    #[test]
    fn build_vector_add() {
        let s = vector_add();
        assert_eq!(s.state_ids().len(), 1);
        let st = s.state(s.start.unwrap());
        assert_eq!(st.graph.node_count(), 6);
        assert_eq!(st.graph.edge_count(), 6);
        let order = st.topological_order();
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn exit_pairing() {
        let s = vector_add();
        let st = s.state(s.start.unwrap());
        let entry = st
            .graph
            .node_ids()
            .find(|&n| st.node(n).is_scope_entry())
            .unwrap();
        let exit = st.exit_of(entry).unwrap();
        assert_eq!(st.node(exit).exit_entry(), Some(entry));
    }

    #[test]
    fn arglist_excludes_transients() {
        let mut s = vector_add();
        s.add_transient("tmp", &["N"], DType::F64);
        let (arrays, symbols) = s.arglist();
        assert_eq!(arrays, vec!["A", "B", "C"]);
        assert_eq!(symbols, vec!["N"]);
    }

    #[test]
    fn used_symbols_excludes_map_params() {
        let s = vector_add();
        let used = s.used_symbols();
        assert!(used.contains("N"));
        assert!(!used.contains("i"));
    }

    #[test]
    fn fresh_names() {
        let mut s = Sdfg::new("x");
        s.add_array("tmp", &["4"], DType::F64);
        assert_eq!(s.fresh_data_name("tmp"), "tmp_0");
        assert_eq!(s.fresh_data_name("other"), "other");
    }

    #[test]
    fn transitions_and_start_state() {
        let mut s = Sdfg::new("fsm");
        let a = s.add_state("a");
        let b = s.add_state("b");
        assert_eq!(s.start, Some(a));
        s.add_transition(a, b, InterstateEdge::when("t < T").assign("t", "t + 1"));
        assert_eq!(s.graph.edge_count(), 1);
        let e = s.graph.edge_ids().next().unwrap();
        assert_eq!(s.graph.edge(e).assignments[0].0, "t");
    }
}
