//! Memlet propagation (paper §4.3 step ❶): "memlet ranges are propagated
//! from tasklets and containers outwards (through scopes) to obtain the
//! overall data dependencies of each scope, using the image of the scope
//! function (e.g., Map range) on the union of the internal memlet subsets."
//!
//! Propagation recomputes, for every edge that crosses a scope boundary via
//! an `IN_x`/`OUT_x` connector pair, the outer memlet from the union of the
//! inner memlets: the subset is the parameter-swept image, and the volume is
//! the sum of inner volumes multiplied by the scope's iteration count.

use crate::node::Node;
use crate::scope::scope_tree;
use crate::sdfg::{Sdfg, State, StateId};
use sdfg_graph::NodeId;
use sdfg_symbolic::expr::Assumptions;
use sdfg_symbolic::{Expr, Subset};

/// DaCe-style assumptions for an SDFG: declared size symbols are positive,
/// everything else (map parameters, loop counters) is nonnegative.
pub fn sdfg_assumptions(sdfg: &Sdfg) -> Assumptions {
    Assumptions {
        positive: sdfg.symbols.iter().cloned().collect(),
        all_nonnegative: true,
        all_positive: false,
    }
}

/// Propagates memlets in every state of the SDFG (and nested SDFGs).
pub fn propagate_sdfg(sdfg: &mut Sdfg) {
    let assume = sdfg_assumptions(sdfg);
    let sids: Vec<StateId> = sdfg.graph.node_ids().collect();
    for sid in sids {
        // Nested SDFGs first.
        let nested_ids: Vec<NodeId> = sdfg
            .graph
            .node(sid)
            .graph
            .node_ids()
            .filter(|&n| matches!(sdfg.graph.node(sid).graph.node(n), Node::NestedSdfg { .. }))
            .collect();
        for nid in nested_ids {
            if let Node::NestedSdfg { sdfg: nested, .. } =
                sdfg.graph.node_mut(sid).graph.node_mut(nid)
            {
                propagate_sdfg(nested);
            }
        }
        propagate_state(sdfg.graph.node_mut(sid), &assume);
    }
}

/// Propagates memlets through all scopes of one state, innermost first.
pub fn propagate_state(state: &mut State, assume: &Assumptions) {
    let Ok(tree) = scope_tree(state) else {
        return; // malformed scopes are reported by validation
    };
    // Scope entries ordered by depth, innermost (deepest) first.
    let mut entries: Vec<NodeId> = state
        .graph
        .node_ids()
        .filter(|&n| state.graph.node(n).is_scope_entry())
        .collect();
    entries.sort_by_key(|&e| std::cmp::Reverse(tree.depth(e)));
    for entry in entries {
        let Some(exit) = state.exit_of(entry) else {
            continue;
        };
        propagate_scope(state, entry, exit, assume);
    }
}

/// The parameter/range pairs a scope sweeps.
fn scope_params(state: &State, entry: NodeId) -> Vec<(String, sdfg_symbolic::SymRange)> {
    match state.graph.node(entry) {
        Node::MapEntry(m) => m
            .params
            .iter()
            .cloned()
            .zip(m.ranges.iter().cloned())
            .collect(),
        Node::ConsumeEntry(c) => vec![(
            c.pe_param.clone(),
            sdfg_symbolic::SymRange::new(Expr::zero(), c.num_pes.clone()),
        )],
        _ => Vec::new(),
    }
}

fn propagate_scope(state: &mut State, entry: NodeId, exit: NodeId, assume: &Assumptions) {
    let params = scope_params(state, entry);
    let is_consume = matches!(state.graph.node(entry), Node::ConsumeEntry(_));
    // Entry: inner edges leave via OUT_x; outer edges arrive via IN_x.
    propagate_node(state, entry, &params, Direction::In, is_consume, assume);
    // Exit: inner edges arrive via IN_x; outer edges leave via OUT_x.
    propagate_node(state, exit, &params, Direction::Out, is_consume, assume);
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Propagating through a scope entry (outer edge is incoming).
    In,
    /// Propagating through a scope exit (outer edge is outgoing).
    Out,
}

fn propagate_node(
    state: &mut State,
    node: NodeId,
    params: &[(String, sdfg_symbolic::SymRange)],
    dir: Direction,
    dynamic_scope: bool,
    assume: &Assumptions,
) {
    // Gather connector base names with an inner side.
    let inner_edges: Vec<sdfg_graph::EdgeId> = match dir {
        Direction::In => state.graph.out_edges(node).collect(),
        Direction::Out => state.graph.in_edges(node).collect(),
    };
    let mut by_conn: std::collections::BTreeMap<String, Vec<sdfg_graph::EdgeId>> =
        Default::default();
    for e in inner_edges {
        let df = state.graph.edge(e);
        let conn = match dir {
            Direction::In => df.src_conn.as_deref(),
            Direction::Out => df.dst_conn.as_deref(),
        };
        let Some(conn) = conn else { continue };
        let base = match dir {
            Direction::In => conn.strip_prefix("OUT_"),
            Direction::Out => conn.strip_prefix("IN_"),
        };
        let Some(base) = base else { continue };
        if df.memlet.is_empty() {
            continue;
        }
        by_conn.entry(base.to_string()).or_default().push(e);
    }

    let iterations = Expr::mul(params.iter().map(|(_, r)| r.num_elements()));

    for (base, inner) in by_conn {
        // Union of inner subsets (same data container by construction).
        let mut union: Option<Subset> = None;
        let mut volume = Expr::zero();
        let mut wcr = None;
        let mut dynamic = dynamic_scope;
        let mut data: Option<String> = None;
        for &e in &inner {
            let m = &state.graph.edge(e).memlet;
            data = m.data.clone();
            union = Some(match union {
                None => m.subset.clone(),
                Some(u) => u.union(&m.subset),
            });
            volume = volume + m.volume.clone();
            if m.wcr.is_some() {
                wcr = m.wcr.clone();
            }
            dynamic |= m.dynamic;
        }
        let Some(mut subset) = union else { continue };
        let Some(data) = data else { continue };
        // Image under all scope parameters, refined with the caller's
        // assumptions (size symbols positive, indices nonnegative).
        // Innermost parameters first: sweeping `k ∈ k_tile : k_tile + T`
        // introduces `k_tile` into the bounds, which the (earlier) outer
        // parameter's sweep must then eliminate.
        for (p, r) in params.iter().rev() {
            subset = subset.image_under(p, r);
        }
        let subset = subset.refine(assume);
        let volume = (volume * iterations.clone()).refine(assume);
        // Rewrite the matching outer edge(s).
        let outer_conn = match dir {
            Direction::In => format!("IN_{base}"),
            Direction::Out => format!("OUT_{base}"),
        };
        let outer_edges: Vec<sdfg_graph::EdgeId> = match dir {
            Direction::In => state
                .graph
                .in_edges(node)
                .filter(|&e| state.graph.edge(e).dst_conn.as_deref() == Some(&outer_conn))
                .collect(),
            Direction::Out => state
                .graph
                .out_edges(node)
                .filter(|&e| state.graph.edge(e).src_conn.as_deref() == Some(&outer_conn))
                .collect(),
        };
        for e in outer_edges {
            let df = state.graph.edge_mut(e);
            df.memlet.data = Some(data.clone());
            df.memlet.subset = subset.clone();
            df.memlet.volume = volume.clone();
            df.memlet.dynamic = dynamic;
            if dir == Direction::Out && wcr.is_some() {
                df.memlet.wcr = wcr.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::{Memlet, Wcr};
    use crate::node::MapScope;
    use crate::DType;
    use sdfg_symbolic::{env, SymRange};

    fn test_assume() -> Assumptions {
        Assumptions {
            positive: ["N".to_string(), "M".to_string()].into_iter().collect(),
            all_nonnegative: true,
            all_positive: false,
        }
    }

    /// Map over i in 1:N-1 reading A[i-1:i+2]; outer edge starts as a stub
    /// and must be recomputed to A[0:N].
    #[test]
    fn stencil_propagation() {
        let mut s = Sdfg::new("stencil");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_array("B", &["N"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let b = st.add_access("B");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(1, Expr::sym("N") - Expr::one())],
        ));
        let t = st.add_tasklet("t", &["w"], &["o"], "o = w");
        // Outer memlet intentionally wrong (stub covering one element).
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0"));
        st.add_edge(
            me,
            Some("OUT_A"),
            t,
            Some("w"),
            Memlet::parse("A", "i - 1:i + 2"),
        );
        st.add_edge(t, Some("o"), mx, Some("IN_B"), Memlet::parse("B", "i"));
        st.add_edge(mx, Some("OUT_B"), b, None, Memlet::parse("B", "0"));
        propagate_state(s.state_mut(sid), &test_assume());
        let st = s.state(sid);
        let outer_in = st
            .graph
            .in_edges(me)
            .map(|e| st.graph.edge(e).memlet.clone())
            .next()
            .unwrap();
        // Image of [i-1, i+2) over i in [1, N-1) is [0, N).
        let e = outer_in.subset.eval(&env(&[("N", 64)])).unwrap();
        assert_eq!((e[0].0, e[0].1), (0, 64));
        // Volume: 3 accesses per iteration × (N - 2) iterations.
        assert_eq!(outer_in.volume.eval(&env(&[("N", 64)])).unwrap(), 3 * 62);
        let outer_out = st
            .graph
            .out_edges(mx)
            .map(|e| st.graph.edge(e).memlet.clone())
            .next()
            .unwrap();
        let eo = outer_out.subset.eval(&env(&[("N", 64)])).unwrap();
        assert_eq!((eo[0].0, eo[0].1), (1, 63));
    }

    #[test]
    fn wcr_propagates_outward() {
        let mut s = Sdfg::new("wcr");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_array("acc", &["1"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let out = st.add_access("acc");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(
            t,
            Some("y"),
            mx,
            Some("IN_acc"),
            Memlet::parse("acc", "0").with_wcr(Wcr::Sum),
        );
        st.add_edge(mx, Some("OUT_acc"), out, None, Memlet::parse("acc", "0"));
        propagate_state(s.state_mut(sid), &test_assume());
        let st = s.state(sid);
        let outer = st
            .graph
            .out_edges(mx)
            .map(|e| &st.graph.edge(e).memlet)
            .next()
            .unwrap();
        assert_eq!(outer.wcr, Some(Wcr::Sum));
        assert_eq!(outer.volume.eval(&env(&[("N", 10)])).unwrap(), 10);
    }

    #[test]
    fn nested_scopes_propagate_inside_out() {
        // outer map i in 0:N, inner map j in 0:M, tasklet reads A[i, j].
        let mut s = Sdfg::new("nested");
        s.add_symbol("N");
        s.add_symbol("M");
        s.add_array("A", &["N", "M"], DType::F64);
        s.add_array("B", &["N", "M"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let b = st.add_access("B");
        let (oe, ox) = st.add_map(MapScope::new(
            "outer",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let (ie, ix) = st.add_map(MapScope::new(
            "inner",
            vec!["j".into()],
            vec![SymRange::new(0, "M")],
        ));
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x");
        // All intermediate memlets are stubs; only the tasklet-level ones
        // are authoritative.
        st.add_edge(a, None, oe, Some("IN_A"), Memlet::parse("A", "0, 0"));
        st.add_edge(
            oe,
            Some("OUT_A"),
            ie,
            Some("IN_A"),
            Memlet::parse("A", "0, 0"),
        );
        st.add_edge(ie, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i, j"));
        st.add_edge(t, Some("y"), ix, Some("IN_B"), Memlet::parse("B", "i, j"));
        st.add_edge(
            ix,
            Some("OUT_B"),
            ox,
            Some("IN_B"),
            Memlet::parse("B", "0, 0"),
        );
        st.add_edge(ox, Some("OUT_B"), b, None, Memlet::parse("B", "0, 0"));
        propagate_state(s.state_mut(sid), &test_assume());
        let st = s.state(sid);
        let outer_in = st
            .graph
            .in_edges(oe)
            .map(|e| &st.graph.edge(e).memlet)
            .next()
            .unwrap();
        let ev = outer_in.subset.eval(&env(&[("N", 4), ("M", 6)])).unwrap();
        assert_eq!((ev[0].0, ev[0].1), (0, 4));
        assert_eq!((ev[1].0, ev[1].1), (0, 6));
        assert_eq!(
            outer_in.volume.eval(&env(&[("N", 4), ("M", 6)])).unwrap(),
            24
        );
    }
}
