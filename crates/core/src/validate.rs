//! SDFG validation (paper §4.3 step ❶): "a validation pass is run on the
//! graph to ensure that scopes are correctly structured, memlets are
//! connected properly, and map schedules and data storage locations are
//! feasible".

use crate::desc::DataDesc;
use crate::node::Node;
use crate::scope::{enclosing_schedule, scope_tree};
use crate::sdfg::{Sdfg, StateId};
use sdfg_graph::NodeId;
use std::collections::HashSet;
use std::fmt;

/// A single validation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// The SDFG has states but no start state.
    NoStartState,
    /// A state's dataflow graph has a cycle.
    CyclicState {
        /// The cyclic state.
        state: StateId,
    },
    /// An access node references an undeclared container.
    UnknownData {
        /// The state containing the node.
        state: StateId,
        /// The offending node.
        node: NodeId,
        /// The referenced name.
        name: String,
    },
    /// A memlet references an undeclared container.
    MemletUnknownData {
        /// The state containing the edge.
        state: StateId,
        /// The referenced name.
        name: String,
    },
    /// A memlet subset rank does not match the container rank.
    MemletRankMismatch {
        /// The state containing the edge.
        state: StateId,
        /// Container name.
        name: String,
        /// Container rank.
        expected: usize,
        /// Subset rank.
        found: usize,
    },
    /// Scope structure is malformed.
    BadScope {
        /// The state containing the scope.
        state: StateId,
        /// Explanation.
        message: String,
    },
    /// A scope entry has no (or more than one) paired exit.
    UnpairedScope {
        /// The state containing the scope.
        state: StateId,
        /// The entry node.
        entry: NodeId,
        /// Number of exits found.
        exits: usize,
    },
    /// A tasklet connector is misused (unknown name, missing edge, or
    /// duplicate input edge).
    BadConnector {
        /// The state containing the node.
        state: StateId,
        /// The tasklet node.
        node: NodeId,
        /// Explanation.
        message: String,
    },
    /// Data in a given storage is not accessible from the schedule of the
    /// scope it is used in (e.g. paged CPU memory inside a GPU kernel).
    StorageScheduleMismatch {
        /// The state containing the access.
        state: StateId,
        /// Container name.
        name: String,
        /// The storage of the container.
        storage: crate::Storage,
        /// The schedule of the surrounding scope.
        schedule: crate::Schedule,
    },
    /// Scope schedules nest illegally (e.g. a GPU thread-block map with no
    /// enclosing GPU kernel, or device kinds interleaved).
    BadScheduleNesting {
        /// The state containing the scope.
        state: StateId,
        /// The offending scope entry node.
        node: NodeId,
        /// The schedule of the offending scope.
        schedule: crate::Schedule,
        /// Explanation.
        message: String,
    },
    /// A nested SDFG connector does not name a container of the nested SDFG.
    BadNestedConnector {
        /// The state containing the node.
        state: StateId,
        /// Connector name.
        connector: String,
        /// Nested SDFG name.
        nested: String,
    },
    /// An error inside a nested SDFG.
    Nested {
        /// Nested SDFG name.
        name: String,
        /// The inner error.
        inner: Box<ValidationError>,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoStartState => write!(f, "SDFG has states but no start state"),
            ValidationError::CyclicState { state } => {
                write!(f, "state {state:?} has cyclic dataflow")
            }
            ValidationError::UnknownData { state, node, name } => write!(
                f,
                "access node {node:?} in state {state:?} references undeclared data `{name}`"
            ),
            ValidationError::MemletUnknownData { state, name } => {
                write!(f, "memlet in state {state:?} references undeclared data `{name}`")
            }
            ValidationError::MemletRankMismatch {
                state,
                name,
                expected,
                found,
            } => write!(
                f,
                "memlet on `{name}` in state {state:?} has rank {found}, container has rank {expected}"
            ),
            ValidationError::BadScope { state, message } => {
                write!(f, "malformed scope in state {state:?}: {message}")
            }
            ValidationError::UnpairedScope { state, entry, exits } => write!(
                f,
                "scope entry {entry:?} in state {state:?} has {exits} exits (expected 1)"
            ),
            ValidationError::BadConnector { state, node, message } => {
                write!(f, "connector error on {node:?} in state {state:?}: {message}")
            }
            ValidationError::StorageScheduleMismatch {
                state,
                name,
                storage,
                schedule,
            } => write!(
                f,
                "container `{name}` ({storage}) not accessible from {schedule} scope in state {state:?}"
            ),
            ValidationError::BadScheduleNesting {
                state,
                node,
                schedule,
                message,
            } => write!(
                f,
                "scope {node:?} ({schedule}) in state {state:?} nests illegally: {message}"
            ),
            ValidationError::BadNestedConnector {
                state,
                connector,
                nested,
            } => write!(
                f,
                "nested SDFG `{nested}` in state {state:?} has connector `{connector}` naming no container"
            ),
            ValidationError::Nested { name, inner } => {
                write!(f, "in nested SDFG `{name}`: {inner}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates an SDFG, collecting all errors.
pub fn validate(sdfg: &Sdfg) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    if sdfg.graph.node_count() > 0 {
        match sdfg.start {
            Some(s) if sdfg.graph.contains_node(s) => {}
            _ => errors.push(ValidationError::NoStartState),
        }
    }
    for sid in sdfg.graph.node_ids() {
        validate_state(sdfg, sid, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_state(sdfg: &Sdfg, sid: StateId, errors: &mut Vec<ValidationError>) {
    let state = sdfg.graph.node(sid);
    if sdfg_graph::algo::has_cycle(&state.graph) {
        errors.push(ValidationError::CyclicState { state: sid });
        return; // scope analysis needs acyclicity
    }

    // Access nodes reference declared data.
    for nid in state.graph.node_ids() {
        if let Some(name) = state.graph.node(nid).access_data() {
            if !sdfg.data.contains_key(name) {
                errors.push(ValidationError::UnknownData {
                    state: sid,
                    node: nid,
                    name: name.to_string(),
                });
            }
        }
    }

    // Memlets reference declared data with matching ranks.
    for eid in state.graph.edge_ids() {
        let df = state.graph.edge(eid);
        let Some(name) = &df.memlet.data else {
            continue;
        };
        let Some(desc) = sdfg.data.get(name) else {
            errors.push(ValidationError::MemletUnknownData {
                state: sid,
                name: name.clone(),
            });
            continue;
        };
        let expected = desc.rank();
        let found = df.memlet.subset.rank();
        let rank_ok = match desc {
            // Scalars may be addressed with rank 0 or a single `0` index.
            DataDesc::Scalar(_) => found <= 1,
            // Streams: subset addresses the queue array; a plain queue
            // (rank 0) may use rank 0 or 1.
            DataDesc::Stream(_) => found == expected || (expected == 0 && found <= 1),
            DataDesc::Array(_) => found == expected,
        };
        if !rank_ok {
            errors.push(ValidationError::MemletRankMismatch {
                state: sid,
                name: name.clone(),
                expected,
                found,
            });
        }
    }

    // Scope pairing: each entry has exactly one exit.
    for nid in state.graph.node_ids() {
        if state.graph.node(nid).is_scope_entry() {
            let exits = state
                .graph
                .node_ids()
                .filter(|&x| state.graph.node(x).exit_entry() == Some(nid))
                .count();
            if exits != 1 {
                errors.push(ValidationError::UnpairedScope {
                    state: sid,
                    entry: nid,
                    exits,
                });
            }
        }
    }

    // Scope structure.
    let tree = match scope_tree(state) {
        Ok(t) => t,
        Err(e) => {
            errors.push(ValidationError::BadScope {
                state: sid,
                message: e.to_string(),
            });
            return;
        }
    };

    // Tasklet connectors.
    for nid in state.graph.node_ids() {
        if let Node::Tasklet {
            inputs, outputs, ..
        } = state.graph.node(nid)
        {
            let ins: HashSet<&str> = inputs.iter().map(String::as_str).collect();
            let outs: HashSet<&str> = outputs.iter().map(String::as_str).collect();
            let mut seen_in: HashSet<String> = HashSet::new();
            for eid in state.graph.in_edges(nid) {
                let df = state.graph.edge(eid);
                match &df.dst_conn {
                    Some(c) if ins.contains(c.as_str()) => {
                        if !seen_in.insert(c.clone()) {
                            errors.push(ValidationError::BadConnector {
                                state: sid,
                                node: nid,
                                message: format!("input connector `{c}` has multiple edges"),
                            });
                        }
                    }
                    Some(c) => errors.push(ValidationError::BadConnector {
                        state: sid,
                        node: nid,
                        message: format!("unknown input connector `{c}`"),
                    }),
                    None if df.memlet.is_empty() => {} // ordering dependency
                    None => errors.push(ValidationError::BadConnector {
                        state: sid,
                        node: nid,
                        message: "data edge into tasklet without connector".into(),
                    }),
                }
            }
            for c in &ins {
                if !seen_in.contains(*c) {
                    errors.push(ValidationError::BadConnector {
                        state: sid,
                        node: nid,
                        message: format!("input connector `{c}` has no edge"),
                    });
                }
            }
            let mut seen_out: HashSet<String> = HashSet::new();
            for eid in state.graph.out_edges(nid) {
                let df = state.graph.edge(eid);
                match &df.src_conn {
                    Some(c) if outs.contains(c.as_str()) => {
                        seen_out.insert(c.clone());
                    }
                    Some(c) => errors.push(ValidationError::BadConnector {
                        state: sid,
                        node: nid,
                        message: format!("unknown output connector `{c}`"),
                    }),
                    None if df.memlet.is_empty() => {}
                    None => errors.push(ValidationError::BadConnector {
                        state: sid,
                        node: nid,
                        message: "data edge out of tasklet without connector".into(),
                    }),
                }
            }
            for c in &outs {
                if !seen_out.contains(*c) {
                    errors.push(ValidationError::BadConnector {
                        state: sid,
                        node: nid,
                        message: format!("output connector `{c}` has no edge"),
                    });
                }
            }
        }
    }

    // Storage/schedule feasibility: access nodes inside scopes must be
    // reachable from that schedule.
    for nid in state.graph.node_ids() {
        let Some(name) = state.graph.node(nid).access_data() else {
            continue;
        };
        let Some(desc) = sdfg.data.get(name) else {
            continue;
        };
        if let Some(sched) = enclosing_schedule(state, &tree, nid) {
            if !desc.storage().accessible_from(sched) {
                errors.push(ValidationError::StorageScheduleMismatch {
                    state: sid,
                    name: name.to_string(),
                    storage: desc.storage(),
                    schedule: sched,
                });
            }
        }
    }

    // Schedule nesting: thread-block maps need a GPU kernel ancestor, and
    // device schedules of different kinds must not interleave.
    for nid in state.graph.node_ids() {
        let sched = match state.graph.node(nid) {
            Node::MapEntry(m) => m.schedule,
            Node::ConsumeEntry(c) => c.schedule,
            _ => continue,
        };
        let ancestor_scheds: Vec<crate::Schedule> = tree
            .ancestors(nid)
            .into_iter()
            .filter_map(|a| match state.graph.node(a) {
                Node::MapEntry(m) => Some(m.schedule),
                Node::ConsumeEntry(c) => Some(c.schedule),
                _ => None,
            })
            .collect();
        let bad = match sched {
            crate::Schedule::GpuThreadBlock
                if !ancestor_scheds.contains(&crate::Schedule::GpuDevice) =>
            {
                Some("thread-block scope has no enclosing GPU device map")
            }
            crate::Schedule::FpgaDevice
                if ancestor_scheds.iter().any(|&s| {
                    matches!(
                        s,
                        crate::Schedule::GpuDevice | crate::Schedule::GpuThreadBlock
                    )
                }) =>
            {
                Some("FPGA scope nested inside a GPU kernel")
            }
            crate::Schedule::GpuDevice
                if ancestor_scheds.contains(&crate::Schedule::FpgaDevice) =>
            {
                Some("GPU kernel nested inside an FPGA scope")
            }
            _ => None,
        };
        if let Some(message) = bad {
            errors.push(ValidationError::BadScheduleNesting {
                state: sid,
                node: nid,
                schedule: sched,
                message: message.into(),
            });
        }
    }

    // Nested SDFGs: connectors must name nested containers; validate
    // recursively.
    for nid in state.graph.node_ids() {
        if let Node::NestedSdfg {
            sdfg: nested,
            inputs,
            outputs,
            ..
        } = state.graph.node(nid)
        {
            for c in inputs.iter().chain(outputs.iter()) {
                if !nested.data.contains_key(c) {
                    errors.push(ValidationError::BadNestedConnector {
                        state: sid,
                        connector: c.clone(),
                        nested: nested.name.clone(),
                    });
                }
            }
            if let Err(inner) = validate(nested) {
                for e in inner {
                    errors.push(ValidationError::Nested {
                        name: nested.name.clone(),
                        inner: Box::new(e),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::Memlet;
    use crate::node::MapScope;
    use crate::{DType, Storage};
    use sdfg_symbolic::SymRange;

    fn valid_sdfg() -> Sdfg {
        let mut s = Sdfg::new("ok");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_array("B", &["N"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let b = st.add_access("B");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x * 2");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("y"), mx, Some("IN_B"), Memlet::parse("B", "i"));
        st.add_edge(mx, Some("OUT_B"), b, None, Memlet::parse("B", "0:N"));
        s
    }

    #[test]
    fn valid_passes() {
        assert!(valid_sdfg().validate().is_ok());
    }

    #[test]
    fn undeclared_access_detected() {
        let mut s = valid_sdfg();
        let sid = s.start.unwrap();
        s.state_mut(sid).add_access("NOPE");
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownData { name, .. } if name == "NOPE")));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut s = valid_sdfg();
        let sid = s.start.unwrap();
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let b = st.add_access("B");
        st.add_plain_edge(a, b, Memlet::parse("A", "0:N, 0:N")); // A is 1-D
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::MemletRankMismatch {
                expected: 1,
                found: 2,
                ..
            }
        )));
    }

    #[test]
    fn missing_connector_edge_detected() {
        let mut s = Sdfg::new("bad");
        s.add_array("A", &["4"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        // Tasklet declares two inputs but only one is connected.
        let t = st.add_tasklet("t", &["x", "z"], &["y"], "y = x + z");
        let b = st.add_access("A");
        st.add_edge(a, None, t, Some("x"), Memlet::parse("A", "0"));
        st.add_edge(t, Some("y"), b, None, Memlet::parse("A", "1"));
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, ValidationError::BadConnector { message, .. } if message.contains("`z`"))
        ));
    }

    #[test]
    fn gpu_schedule_rejects_cpu_storage() {
        let mut s = valid_sdfg();
        // Make the map a GPU kernel but keep a transient on the CPU heap.
        s.add_transient("tmp", &["N"], DType::F64);
        s.desc_mut("tmp").unwrap().set_storage(Storage::CpuHeap);
        let sid = s.start.unwrap();
        let st = s.state_mut(sid);
        let me = st
            .graph
            .node_ids()
            .find(|&n| st.graph.node(n).is_scope_entry())
            .unwrap();
        if let Node::MapEntry(m) = st.graph.node_mut(me) {
            m.schedule = crate::Schedule::GpuDevice;
        }
        // Put a CPU-heap access inside the GPU scope.
        let t = st
            .graph
            .node_ids()
            .find(|&n| matches!(st.graph.node(n), Node::Tasklet { .. }))
            .unwrap();
        let tmp = st.add_access("tmp");
        st.add_edge(t, Some("y"), tmp, None, Memlet::parse("tmp", "i"));
        // tmp is now inside the map scope (fed from the tasklet): validation
        // must flag CpuHeap-in-GpuDevice... but `y` now has two out-edges,
        // which is allowed. Check the storage error appears.
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, ValidationError::StorageScheduleMismatch { name, .. } if name == "tmp")
        ));
    }

    /// A two-level map nest `outer(i) { inner(j) { t } }` over A → B with
    /// the given scope schedules.
    fn nested_schedule_sdfg(outer: crate::Schedule, inner: crate::Schedule) -> Sdfg {
        let mut s = Sdfg::new("nest");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_array("B", &["N"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let a = st.add_access("A");
        let b = st.add_access("B");
        let mut om = MapScope::new("outer", vec!["i".into()], vec![SymRange::new(0, "N")]);
        om.schedule = outer;
        let (ome, omx) = st.add_map(om);
        let mut im = MapScope::new("inner", vec!["j".into()], vec![SymRange::new(0, "N")]);
        im.schedule = inner;
        let (ime, imx) = st.add_map(im);
        let t = st.add_tasklet("t", &["x"], &["y"], "y = x * 2");
        st.add_edge(a, None, ome, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(
            ome,
            Some("OUT_A"),
            ime,
            Some("IN_A"),
            Memlet::parse("A", "i"),
        );
        st.add_edge(ime, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("y"), imx, Some("IN_B"), Memlet::parse("B", "i"));
        st.add_edge(
            imx,
            Some("OUT_B"),
            omx,
            Some("IN_B"),
            Memlet::parse("B", "i"),
        );
        st.add_edge(omx, Some("OUT_B"), b, None, Memlet::parse("B", "0:N"));
        s
    }

    #[test]
    fn thread_block_map_requires_gpu_device_ancestor() {
        // A lone thread-block map has no kernel to live in.
        let mut s = valid_sdfg();
        let sid = s.start.unwrap();
        let st = s.state_mut(sid);
        let me = st
            .graph
            .node_ids()
            .find(|&n| st.graph.node(n).is_scope_entry())
            .unwrap();
        if let Node::MapEntry(m) = st.graph.node_mut(me) {
            m.schedule = crate::Schedule::GpuThreadBlock;
        }
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::BadScheduleNesting {
                schedule: crate::Schedule::GpuThreadBlock,
                ..
            }
        )));

        // Properly nested under a GPU kernel, the same map is legal.
        let s = nested_schedule_sdfg(crate::Schedule::GpuDevice, crate::Schedule::GpuThreadBlock);
        let errs = s.validate().err().unwrap_or_default();
        assert!(!errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadScheduleNesting { .. })));
    }

    #[test]
    fn fpga_scope_rejected_inside_gpu_kernel() {
        let s = nested_schedule_sdfg(crate::Schedule::GpuDevice, crate::Schedule::FpgaDevice);
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::BadScheduleNesting {
                schedule: crate::Schedule::FpgaDevice,
                ..
            }
        )));
    }

    #[test]
    fn gpu_kernel_rejected_inside_fpga_scope() {
        let s = nested_schedule_sdfg(crate::Schedule::FpgaDevice, crate::Schedule::GpuDevice);
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::BadScheduleNesting {
                schedule: crate::Schedule::GpuDevice,
                ..
            }
        )));
    }

    #[test]
    fn cyclic_state_detected() {
        let mut s = Sdfg::new("cyc");
        s.add_array("A", &["4"], DType::F64);
        let sid = s.add_state("main");
        let st = s.state_mut(sid);
        let t1 = st.add_tasklet("t1", &["a"], &["b"], "b = a");
        let t2 = st.add_tasklet("t2", &["a"], &["b"], "b = a");
        st.add_edge(t1, Some("b"), t2, Some("a"), Memlet::parse("A", "0"));
        st.add_edge(t2, Some("b"), t1, Some("a"), Memlet::parse("A", "1"));
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::CyclicState { .. })));
    }

    #[test]
    fn nested_sdfg_errors_propagate() {
        let mut inner = Sdfg::new("inner");
        inner.add_array("X", &["4"], DType::F64);
        let isid = inner.add_state("s");
        inner.state_mut(isid).add_access("UNDECLARED");

        let mut outer = Sdfg::new("outer");
        outer.add_array("A", &["4"], DType::F64);
        let sid = outer.add_state("main");
        let st = outer.state_mut(sid);
        let a = st.add_access("A");
        let n = st.add_node(Node::NestedSdfg {
            sdfg: Box::new(inner),
            symbol_mapping: Default::default(),
            inputs: vec!["X".into()],
            outputs: vec!["MISSING".into()],
        });
        st.add_edge(a, None, n, Some("X"), Memlet::parse("A", "0:4"));
        let errs = outer.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadNestedConnector { connector, .. } if connector == "MISSING")));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::Nested { .. })));
    }
}
