//! The workspace-wide error type.
//!
//! Every layer used to define its own error shape (`TransformError` in
//! `sdfg-transforms`, `FrontendError` in `sdfg-frontend`, ad-hoc strings in
//! between). [`SdfgError`] folds them into one enum with stable error
//! codes, so tooling can match on a code instead of a message and the
//! layers compose through `?` without conversion boilerplate. The runtime
//! engines keep richer internal error enums (they wrap tasklet-VM and
//! symbolic sub-errors the IR crate cannot name), but convert into
//! [`SdfgError`] at their API boundaries via `From` impls defined in their
//! own crates.

use crate::validate::ValidationError;
use std::fmt;

/// A failure anywhere in the SDFG toolchain, with a stable error code.
#[derive(Clone, Debug, PartialEq)]
pub enum SdfgError {
    /// Structural validation failed (`SDFG-V001`). Carries every failure
    /// found by the pass, pre-rendered.
    Validation {
        /// One rendered message per validation failure.
        errors: Vec<String>,
    },
    /// A transformation rewrite failed mid-application (`SDFG-T001`).
    Transform {
        /// Explanation.
        message: String,
    },
    /// A transformation name did not resolve in the registry (`SDFG-T002`).
    UnknownTransform {
        /// The requested name.
        name: String,
    },
    /// A transformation found no occurrence of its pattern (`SDFG-T003`).
    NoMatch {
        /// Transformation name.
        name: String,
        /// Chain step index, when applied as part of a chain.
        step: Option<usize>,
    },
    /// A pattern match is missing a role the rewrite needs (`SDFG-T004`).
    RoleMissing {
        /// The missing role name.
        role: String,
    },
    /// A transformation parameter has the wrong type (`SDFG-P001`).
    ParamType {
        /// Parameter name.
        param: String,
        /// What the accessor wanted.
        expected: &'static str,
        /// What the parameter held.
        got: String,
    },
    /// A transformation parameter could not be parsed from text
    /// (`SDFG-P002`).
    ParamParse {
        /// Parameter name.
        param: String,
        /// The unparseable text.
        text: String,
    },
    /// The frontend rejected a program (`SDFG-F001`).
    Frontend {
        /// 1-based source line (0 when unknown).
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The optimizing executor failed (`SDFG-X001`).
    Exec {
        /// Rendered executor error.
        message: String,
    },
    /// A data container name did not resolve at runtime (`SDFG-X002`).
    UnknownData {
        /// The requested container name.
        name: String,
    },
    /// A bound array's element count does not match the container's
    /// declared shape under the bound symbols (`SDFG-X003`).
    ShapeMismatch {
        /// Container name.
        name: String,
        /// Element count the shape evaluates to.
        expected: usize,
        /// Element count actually provided.
        got: usize,
    },
    /// A run exceeded its wall-clock deadline and was cancelled between
    /// state executions (`SDFG-X004`).
    Timeout {
        /// The deadline budget in milliseconds.
        ms: u64,
    },
    /// A serialized program exceeded the deserializer's configured size
    /// limit (`SDFG-S001`).
    PayloadTooLarge {
        /// The configured limit in bytes.
        limit: usize,
        /// The payload size in bytes.
        got: usize,
    },
    /// A serialized program failed to deserialize (`SDFG-S002`). The
    /// message carries the byte offset and line/column of the defect.
    Serialize {
        /// Rendered parse/decode error with position info.
        message: String,
    },
    /// The reference interpreter failed (`SDFG-I001`).
    Interp {
        /// Rendered interpreter error.
        message: String,
    },
    /// The automatic optimization pipeline failed (`SDFG-O001`).
    Optimization {
        /// The pass that failed.
        pass: String,
        /// Explanation.
        message: String,
    },
}

impl SdfgError {
    /// Creates a generic transformation error (the old `TransformError`).
    pub fn transform(message: impl Into<String>) -> SdfgError {
        SdfgError::Transform {
            message: message.into(),
        }
    }

    /// Creates a frontend error.
    pub fn frontend(line: usize, message: impl Into<String>) -> SdfgError {
        SdfgError::Frontend {
            line,
            message: message.into(),
        }
    }

    /// Creates an optimization-pipeline error.
    pub fn optimization(pass: impl Into<String>, message: impl Into<String>) -> SdfgError {
        SdfgError::Optimization {
            pass: pass.into(),
            message: message.into(),
        }
    }

    /// The stable error code for this failure class.
    pub fn code(&self) -> &'static str {
        match self {
            SdfgError::Validation { .. } => "SDFG-V001",
            SdfgError::Transform { .. } => "SDFG-T001",
            SdfgError::UnknownTransform { .. } => "SDFG-T002",
            SdfgError::NoMatch { .. } => "SDFG-T003",
            SdfgError::RoleMissing { .. } => "SDFG-T004",
            SdfgError::ParamType { .. } => "SDFG-P001",
            SdfgError::ParamParse { .. } => "SDFG-P002",
            SdfgError::Frontend { .. } => "SDFG-F001",
            SdfgError::Exec { .. } => "SDFG-X001",
            SdfgError::UnknownData { .. } => "SDFG-X002",
            SdfgError::ShapeMismatch { .. } => "SDFG-X003",
            SdfgError::Timeout { .. } => "SDFG-X004",
            SdfgError::PayloadTooLarge { .. } => "SDFG-S001",
            SdfgError::Serialize { .. } => "SDFG-S002",
            SdfgError::Interp { .. } => "SDFG-I001",
            SdfgError::Optimization { .. } => "SDFG-O001",
        }
    }
}

impl fmt::Display for SdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            SdfgError::Validation { errors } => {
                write!(f, "validation failed: {}", errors.join("; "))
            }
            SdfgError::Transform { message } => write!(f, "{message}"),
            SdfgError::UnknownTransform { name } => {
                write!(f, "unknown transformation `{name}`")
            }
            SdfgError::NoMatch { name, step } => match step {
                Some(i) => write!(f, "step {i}: `{name}` found no match"),
                None => write!(f, "`{name}` found no match"),
            },
            SdfgError::RoleMissing { role } => {
                write!(f, "match has no node bound to role `{role}`")
            }
            SdfgError::ParamType {
                param,
                expected,
                got,
            } => write!(f, "parameter `{param}`: expected {expected}, got {got}"),
            SdfgError::ParamParse { param, text } => {
                write!(f, "parameter `{param}`: cannot parse `{text}`")
            }
            SdfgError::Frontend { line, message } => write!(f, "line {line}: {message}"),
            SdfgError::Exec { message } => write!(f, "executor: {message}"),
            SdfgError::UnknownData { name } => {
                write!(f, "unknown data container `{name}`")
            }
            SdfgError::ShapeMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "array `{name}`: shape evaluates to {expected} elements, got {got}"
            ),
            SdfgError::Timeout { ms } => write!(f, "run exceeded the {ms} ms deadline"),
            SdfgError::PayloadTooLarge { limit, got } => {
                write!(f, "payload of {got} bytes exceeds the {limit}-byte limit")
            }
            SdfgError::Serialize { message } => write!(f, "deserialization: {message}"),
            SdfgError::Interp { message } => write!(f, "interpreter: {message}"),
            SdfgError::Optimization { pass, message } => {
                write!(f, "optimization pass `{pass}`: {message}")
            }
        }
    }
}

impl std::error::Error for SdfgError {}

impl From<ValidationError> for SdfgError {
    fn from(e: ValidationError) -> SdfgError {
        SdfgError::Validation {
            errors: vec![e.to_string()],
        }
    }
}

impl From<Vec<ValidationError>> for SdfgError {
    fn from(es: Vec<ValidationError>) -> SdfgError {
        SdfgError::Validation {
            errors: es.iter().map(|e| e.to_string()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_displayed() {
        let e = SdfgError::transform("scope vanished");
        assert_eq!(e.code(), "SDFG-T001");
        assert!(e.to_string().starts_with("[SDFG-T001]"));
        let p = SdfgError::ParamType {
            param: "width".into(),
            expected: "int",
            got: "str(\"wide\")".into(),
        };
        assert_eq!(p.code(), "SDFG-P001");
        assert!(p.to_string().contains("`width`"));
        let u = SdfgError::UnknownData { name: "A".into() };
        assert_eq!(u.code(), "SDFG-X002");
        assert!(u.to_string().contains("unknown data container `A`"));
    }

    #[test]
    fn validation_errors_fold_in() {
        let e: SdfgError = ValidationError::NoStartState.into();
        assert_eq!(e.code(), "SDFG-V001");
        let e: SdfgError = vec![ValidationError::NoStartState].into();
        assert!(e.to_string().contains("no start state"));
    }
}
