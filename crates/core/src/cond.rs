//! Boolean condition expressions for interstate edges.
//!
//! State transitions "define a condition, which can depend on data in
//! containers, and a list of assignments to inter-state symbols" (§3.4).
//! Conditions are boolean combinations of integer comparisons over
//! [`Expr`]s; scalar containers are made visible to conditions by the
//! execution layers under their container names.

use sdfg_symbolic::{parse_expr, Env, EvalError, Expr, ParseError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Textual form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// A boolean expression over symbolic integers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum BoolExpr {
    /// Constant truth value.
    Const(bool),
    /// Integer comparison.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl Default for BoolExpr {
    fn default() -> Self {
        BoolExpr::Const(true)
    }
}

impl BoolExpr {
    /// The always-true condition (unconditional transition).
    pub fn always() -> BoolExpr {
        BoolExpr::Const(true)
    }

    /// Comparison constructor.
    pub fn cmp(op: CmpOp, lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> BoolExpr {
        BoolExpr::Cmp(op, lhs.into(), rhs.into())
    }

    /// Evaluates under an environment.
    pub fn eval(&self, env: &Env) -> Result<bool, EvalError> {
        match self {
            BoolExpr::Const(b) => Ok(*b),
            BoolExpr::Cmp(op, a, b) => Ok(op.apply(a.eval(env)?, b.eval(env)?)),
            BoolExpr::And(a, b) => Ok(a.eval(env)? && b.eval(env)?),
            BoolExpr::Or(a, b) => Ok(a.eval(env)? || b.eval(env)?),
            BoolExpr::Not(a) => Ok(!a.eval(env)?),
        }
    }

    /// True if this is the constant `true` condition.
    pub fn is_always(&self) -> bool {
        matches!(self, BoolExpr::Const(true))
    }

    /// Free symbols of the condition.
    pub fn free_symbols(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Cmp(_, a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            BoolExpr::Not(a) => a.collect_symbols(out),
        }
    }

    /// Renames a symbol throughout.
    pub fn rename(&self, from: &str, to: &str) -> BoolExpr {
        match self {
            BoolExpr::Const(_) => self.clone(),
            BoolExpr::Cmp(op, a, b) => BoolExpr::Cmp(*op, a.rename(from, to), b.rename(from, to)),
            BoolExpr::And(a, b) => {
                BoolExpr::And(Box::new(a.rename(from, to)), Box::new(b.rename(from, to)))
            }
            BoolExpr::Or(a, b) => {
                BoolExpr::Or(Box::new(a.rename(from, to)), Box::new(b.rename(from, to)))
            }
            BoolExpr::Not(a) => BoolExpr::Not(Box::new(a.rename(from, to))),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Children of `and`/`not` are parenthesized unless atomic.
        match self {
            BoolExpr::Const(true) => write!(f, "true"),
            BoolExpr::Const(false) => write!(f, "false"),
            BoolExpr::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            BoolExpr::And(a, b) => {
                write_atom(f, a)?;
                write!(f, " and ")?;
                write_atom(f, b)
            }
            BoolExpr::Or(a, b) => write!(f, "{a} or {b}"),
            BoolExpr::Not(a) => {
                write!(f, "not ")?;
                write_atom(f, a)
            }
        }
    }
}

fn write_atom(f: &mut fmt::Formatter<'_>, e: &BoolExpr) -> fmt::Result {
    match e {
        BoolExpr::Or(..) | BoolExpr::And(..) => write!(f, "({e})"),
        _ => write!(f, "{e}"),
    }
}

/// Parses a condition such as `"i < N and fsz > 0"` or `"not (a == b)"`.
///
/// Grammar: `or` < `and` < `not` < comparison < arithmetic; a bare
/// arithmetic expression `e` is shorthand for `e != 0`.
pub fn parse_cond(src: &str) -> Result<BoolExpr, ParseError> {
    let mut p = CondParser {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let e = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError {
            message: "trailing input in condition".into(),
            offset: p.pos,
        });
    }
    Ok(e)
}

struct CondParser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl CondParser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Non-mutating: if the next non-whitespace text is the keyword `kw`
    /// (not continuing as an identifier), returns the position just past it.
    fn keyword_end(&self, kw: &str) -> Option<usize> {
        let mut start = self.pos;
        while start < self.bytes.len() && self.bytes[start].is_ascii_whitespace() {
            start += 1;
        }
        let end = start + kw.len();
        if end > self.bytes.len() || &self.src[start..end] != kw {
            return None;
        }
        match self.bytes.get(end) {
            Some(c) if (*c as char).is_ascii_alphanumeric() || *c == b'_' => None,
            _ => Some(end),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.keyword_end(kw).is_some()
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(end) = self.keyword_end(kw) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.not_expr()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<BoolExpr, ParseError> {
        if self.eat_keyword("not") {
            return Ok(BoolExpr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<BoolExpr, ParseError> {
        self.skip_ws();
        if self.eat_keyword("true") || self.eat_keyword("True") {
            return Ok(BoolExpr::Const(true));
        }
        if self.eat_keyword("false") || self.eat_keyword("False") {
            return Ok(BoolExpr::Const(false));
        }
        // Boolean parenthesized group: "(...)" that contains boolean
        // operators at depth 1; otherwise arithmetic parens.
        if self.bytes.get(self.pos) == Some(&b'(') && self.paren_group_is_boolean() {
            self.pos += 1;
            let inner = self.or_expr()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b')') {
                return Err(ParseError {
                    message: "expected `)`".into(),
                    offset: self.pos,
                });
            }
            self.pos += 1;
            return Ok(inner);
        }
        let lhs_src = self.arith_slice()?;
        let lhs = parse_expr(lhs_src).map_err(|e| self.shift(e))?;
        self.skip_ws();
        let op = self.try_cmp_op();
        let Some(op) = op else {
            // Bare arithmetic expression: truthiness.
            return Ok(BoolExpr::Cmp(CmpOp::Ne, lhs, Expr::zero()));
        };
        let rhs_src = self.arith_slice()?;
        let rhs = parse_expr(rhs_src).map_err(|e| self.shift(e))?;
        Ok(BoolExpr::Cmp(op, lhs, rhs))
    }

    fn shift(&self, mut e: ParseError) -> ParseError {
        e.offset = self.pos;
        e
    }

    /// Detects whether the parenthesized group starting at `pos` contains a
    /// boolean operator or comparison at depth ≥ 1.
    fn paren_group_is_boolean(&self) -> bool {
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                b'<' | b'>' | b'=' | b'!' => return true,
                b'a' if self.src[i..].starts_with("and ") => return true,
                b'o' if self.src[i..].starts_with("or ") => return true,
                b'n' if self.src[i..].starts_with("not ") => return true,
                _ => {}
            }
            i += 1;
        }
        false
    }

    /// Consumes an arithmetic expression: everything up to a comparison
    /// operator, boolean keyword, or unbalanced `)` at depth 0.
    fn arith_slice(&mut self) -> Result<&str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            match c {
                b'(' => depth += 1,
                b')' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b'<' | b'>' | b'=' | b'!' if depth == 0 => break,
                _ if depth == 0 => {
                    // Keyword check only at a word boundary (not inside an
                    // identifier like `band`).
                    let at_word_boundary = self.pos == start
                        || !((self.bytes[self.pos - 1] as char).is_ascii_alphanumeric()
                            || self.bytes[self.pos - 1] == b'_');
                    if at_word_boundary && (self.peek_keyword("and") || self.peek_keyword("or")) {
                        break;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let slice = self.src[start..self.pos].trim();
        if slice.is_empty() {
            return Err(ParseError {
                message: "expected arithmetic expression".into(),
                offset: start,
            });
        }
        Ok(slice)
    }

    fn try_cmp_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let (op, len) = if rest.starts_with("<=") {
            (CmpOp::Le, 2)
        } else if rest.starts_with(">=") {
            (CmpOp::Ge, 2)
        } else if rest.starts_with("==") {
            (CmpOp::Eq, 2)
        } else if rest.starts_with("!=") {
            (CmpOp::Ne, 2)
        } else if rest.starts_with('<') {
            (CmpOp::Lt, 1)
        } else if rest.starts_with('>') {
            (CmpOp::Gt, 1)
        } else {
            return None;
        };
        self.pos += len;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_symbolic::env;

    #[test]
    fn parse_and_eval() {
        let c = parse_cond("i < N").unwrap();
        assert!(c.eval(&env(&[("i", 3), ("N", 5)])).unwrap());
        assert!(!c.eval(&env(&[("i", 5), ("N", 5)])).unwrap());
    }

    #[test]
    fn boolean_combinations() {
        let c = parse_cond("i < N and fsz > 0").unwrap();
        assert!(c.eval(&env(&[("i", 0), ("N", 1), ("fsz", 2)])).unwrap());
        assert!(!c.eval(&env(&[("i", 0), ("N", 1), ("fsz", 0)])).unwrap());
        let o = parse_cond("a == 1 or b == 1").unwrap();
        assert!(o.eval(&env(&[("a", 0), ("b", 1)])).unwrap());
        let n = parse_cond("not (a == b)").unwrap();
        assert!(n.eval(&env(&[("a", 1), ("b", 2)])).unwrap());
    }

    #[test]
    fn arithmetic_in_comparisons() {
        let c = parse_cond("2*(i + 1) <= N % 7").unwrap();
        assert!(c.eval(&env(&[("i", 0), ("N", 9)])).unwrap());
    }

    #[test]
    fn bare_expression_is_truthiness() {
        let c = parse_cond("fsz").unwrap();
        assert!(c.eval(&env(&[("fsz", 3)])).unwrap());
        assert!(!c.eval(&env(&[("fsz", 0)])).unwrap());
    }

    #[test]
    fn arithmetic_parens_not_boolean() {
        let c = parse_cond("(a + 1) < b").unwrap();
        assert!(c.eval(&env(&[("a", 1), ("b", 3)])).unwrap());
    }

    #[test]
    fn constants() {
        assert!(parse_cond("true").unwrap().eval(&env(&[])).unwrap());
        assert!(!parse_cond("false").unwrap().eval(&env(&[])).unwrap());
        assert!(BoolExpr::always().is_always());
    }

    #[test]
    fn display_roundtrip() {
        for txt in [
            "i < N and fsz > 0",
            "a == 1 or b != 2",
            "not (x < y)",
            "true",
            "(a < b or c < d) and e >= 0",
        ] {
            let c = parse_cond(txt).unwrap();
            let again = parse_cond(&c.to_string()).unwrap();
            assert_eq!(c, again, "roundtrip failed for `{txt}` -> `{c}`");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_cond("").is_err());
        assert!(parse_cond("a <").is_err());
        assert!(parse_cond("and b").is_err());
        assert!(parse_cond("a < b extra +").is_err());
    }

    #[test]
    fn rename_symbols() {
        let c = parse_cond("t < T").unwrap().rename("t", "t0");
        assert_eq!(c.to_string(), "t0 < T");
        assert!(c.free_symbols().contains("t0"));
    }
}
