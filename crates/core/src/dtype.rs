//! Element types and storage locations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element data types supported by SDFG containers and tasklets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit unsigned integer (e.g. CSR row pointers in the paper's SpMV).
    U32,
    /// Boolean.
    Bool,
}

impl DType {
    /// Size of one element in bytes (used for data-movement accounting).
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 | DType::U32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::Bool => 1,
        }
    }

    /// True for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// True for integral types (including `Bool`).
    pub fn is_integral(self) -> bool {
        !self.is_float()
    }

    /// The C-like type name used by code generation.
    pub fn ctype(self) -> &'static str {
        match self {
            DType::F32 => "float",
            DType::F64 => "double",
            DType::I32 => "int",
            DType::I64 => "long long",
            DType::U32 => "unsigned int",
            DType::Bool => "bool",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "float32",
            DType::F64 => "float64",
            DType::I32 => "int32",
            DType::I64 => "int64",
            DType::U32 => "uint32",
            DType::Bool => "bool",
        };
        write!(f, "{s}")
    }
}

/// Storage location of a data container (paper §3.1: "containers are tied
/// to a specific storage location ... which may be on a GPU or even a
/// file"). Validation rejects infeasible storage/schedule combinations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Storage {
    /// Decided by the surrounding schedule at lowering time.
    #[default]
    Default,
    /// CPU heap memory.
    CpuHeap,
    /// Thread-local / stack memory (scratchpads inside CPU maps).
    CpuThreadLocal,
    /// GPU device global memory.
    GpuGlobal,
    /// GPU on-chip shared memory (per thread block).
    GpuShared,
    /// Registers (innermost tiles after vectorization).
    Register,
    /// FPGA off-chip DRAM.
    FpgaGlobal,
    /// FPGA on-chip memory (BRAM).
    FpgaLocal,
}

impl Storage {
    /// True if a kernel running on `sched` may directly dereference data in
    /// this storage.
    pub fn accessible_from(self, sched: crate::node::Schedule) -> bool {
        use crate::node::Schedule::*;
        match self {
            Storage::Default => true,
            Storage::CpuHeap | Storage::CpuThreadLocal => {
                matches!(sched, Sequential | CpuMulticore | Mpi)
            }
            Storage::GpuGlobal | Storage::GpuShared => {
                matches!(sched, GpuDevice | GpuThreadBlock)
            }
            Storage::Register => true,
            Storage::FpgaGlobal | Storage::FpgaLocal => matches!(sched, FpgaDevice),
        }
    }

    /// True for on-device (non-host) storages.
    pub fn is_device(self) -> bool {
        matches!(
            self,
            Storage::GpuGlobal | Storage::GpuShared | Storage::FpgaGlobal | Storage::FpgaLocal
        )
    }
}

impl fmt::Display for Storage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Schedule;

    #[test]
    fn sizes() {
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::Bool.size_bytes(), 1);
    }

    #[test]
    fn storage_accessibility() {
        assert!(Storage::CpuHeap.accessible_from(Schedule::CpuMulticore));
        assert!(!Storage::CpuHeap.accessible_from(Schedule::GpuDevice));
        assert!(Storage::GpuGlobal.accessible_from(Schedule::GpuDevice));
        assert!(!Storage::GpuGlobal.accessible_from(Schedule::Sequential));
        assert!(Storage::Default.accessible_from(Schedule::FpgaDevice));
    }
}
