//! Dataflow-graph node types (paper Table 1 and Appendix A.1).

use crate::memlet::Wcr;
use crate::sdfg::Sdfg;
use sdfg_symbolic::{Expr, SymRange};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How a scope is lowered to a target (paper §3.3: "Maps are tied to
/// schedules that determine how they translate to code").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Schedule {
    /// Plain sequential loop.
    Sequential,
    /// OpenMP-style parallel loop over CPU cores (the default for top-level
    /// maps).
    #[default]
    CpuMulticore,
    /// CUDA-style kernel: the map range becomes the grid.
    GpuDevice,
    /// Thread-block schedule inside a GPU kernel (emits barriers).
    GpuThreadBlock,
    /// FPGA processing elements / pipelines.
    FpgaDevice,
    /// Distribute iterations across MPI ranks (produced by `MPITransform`).
    Mpi,
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Schedule, String> {
        Ok(match s {
            "Sequential" => Schedule::Sequential,
            "CpuMulticore" => Schedule::CpuMulticore,
            "GpuDevice" => Schedule::GpuDevice,
            "GpuThreadBlock" => Schedule::GpuThreadBlock,
            "FpgaDevice" => Schedule::FpgaDevice,
            "Mpi" => Schedule::Mpi,
            other => return Err(format!("unknown schedule `{other}`")),
        })
    }
}

/// Instrumentation requested for a state or map scope (paper §8:
/// performance-centric development requires measuring where time goes
/// without rewriting the program).
///
/// The annotation travels with the SDFG through serialization and
/// transformations; the execution engines honor it when profiling is
/// enabled. `Counter` counts scope entries without ever reading a
/// clock, so it is safe on extremely hot scopes; `Timer` records full
/// wall-clock statistics and timeline spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Instrument {
    /// No instrumentation (the default; zero overhead).
    #[default]
    None,
    /// Count entries only — no clock reads on the hot path.
    Counter,
    /// Full wall-clock timing plus timeline spans.
    Timer,
}

impl fmt::Display for Instrument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::str::FromStr for Instrument {
    type Err = String;
    fn from_str(s: &str) -> Result<Instrument, String> {
        Ok(match s {
            "None" => Instrument::None,
            "Counter" => Instrument::Counter,
            "Timer" => Instrument::Timer,
            other => return Err(format!("unknown instrument mode `{other}`")),
        })
    }
}

/// Language a tasklet body is written in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TaskletLang {
    /// The built-in tasklet language (Python-like; executable by the
    /// interpreter and the executor via the bytecode VM).
    #[default]
    Python,
    /// External code emitted verbatim by code generation (paper Fig. 5);
    /// not executable by the reference interpreter.
    Cpp,
}

/// A map scope: parametric graph abstraction for parallelism (§3.3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MapScope {
    /// Scope label (for diagnostics and DOT output).
    pub label: String,
    /// Parameter names, one per dimension.
    pub params: Vec<String>,
    /// Symbolic iteration ranges, one per parameter.
    pub ranges: Vec<SymRange>,
    /// Lowering schedule.
    pub schedule: Schedule,
    /// Fully unroll this map (FPGA PE replication, register tiles).
    pub unroll: bool,
    /// Vector width applied by the `Vectorization` transformation to the
    /// innermost dimension (used by code generation and the accelerator
    /// models; semantics-neutral for execution).
    pub vector_len: Option<u32>,
    /// Instrumentation requested for this scope (semantics-neutral).
    pub instrument: Instrument,
}

impl MapScope {
    /// Creates a map scope with the default (CPU multicore) schedule.
    pub fn new(label: impl Into<String>, params: Vec<String>, ranges: Vec<SymRange>) -> MapScope {
        assert_eq!(params.len(), ranges.len(), "map params/ranges mismatch");
        MapScope {
            label: label.into(),
            params,
            ranges,
            schedule: Schedule::default(),
            unroll: false,
            vector_len: None,
            instrument: Instrument::default(),
        }
    }

    /// Parameter/range pairs.
    pub fn iter_dims(&self) -> impl Iterator<Item = (&String, &SymRange)> {
        self.params.iter().zip(self.ranges.iter())
    }

    /// Symbolic total number of iterations.
    pub fn num_iterations(&self) -> Expr {
        Expr::mul(self.ranges.iter().map(|r| r.num_elements()))
    }
}

/// A consume scope: dynamic mapping of computations on streams (§3.3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsumeScope {
    /// Scope label.
    pub label: String,
    /// Processing-element parameter name (e.g. `p`).
    pub pe_param: String,
    /// Number of processing elements.
    pub num_pes: Expr,
    /// Name of the local variable holding the popped stream element.
    pub element: String,
    /// Quiescence condition source (tasklet-language boolean over stream
    /// state; the canonical `len(S) == 0` is spelled `"len == 0"`): when
    /// true, processing stops. `None` = run until the stream is empty.
    pub condition: Option<String>,
    /// Lowering schedule.
    pub schedule: Schedule,
}

/// A node in a state's dataflow multigraph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Access node: names a data/stream/scalar container declared on the
    /// SDFG. All dataflow in and out of memory goes through these.
    Access {
        /// Declared container name.
        data: String,
    },
    /// Fine-grained computation (§3.2). Inputs/outputs are connector names;
    /// the code reads only input connectors and writes only output
    /// connectors.
    Tasklet {
        /// Label for diagnostics.
        name: String,
        /// Input connector names.
        inputs: Vec<String>,
        /// Output connector names.
        outputs: Vec<String>,
        /// Body source (remains immutable through transformations).
        code: String,
        /// Language of the body.
        lang: TaskletLang,
    },
    /// Map scope entry. Paired with a [`Node::MapExit`].
    MapEntry(MapScope),
    /// Map scope exit; `entry` is the paired entry node.
    MapExit {
        /// Paired [`Node::MapEntry`] in the same state graph.
        entry: sdfg_graph::NodeId,
    },
    /// Consume scope entry. Paired with a [`Node::ConsumeExit`].
    ConsumeEntry(ConsumeScope),
    /// Consume scope exit; `entry` is the paired entry node.
    ConsumeExit {
        /// Paired [`Node::ConsumeEntry`] in the same state graph.
        entry: sdfg_graph::NodeId,
    },
    /// Library reduction node (Table 1): reduces the input memlet over the
    /// given axes with the WCR function.
    Reduce {
        /// Reduction function.
        wcr: Wcr,
        /// Axes of the *input subset* to reduce over; `None` = all axes.
        axes: Option<Vec<usize>>,
        /// Identity value used to initialize the output (`None`: the output
        /// is combined with its prior contents).
        identity: Option<f64>,
    },
    /// Invoke a nested SDFG (Table 1 "Invoke"). Semantically a tasklet:
    /// access to external memory only through memlets on connectors, which
    /// map to the nested SDFG's non-transient containers by name.
    NestedSdfg {
        /// The nested SDFG.
        sdfg: Box<Sdfg>,
        /// Mapping from nested-SDFG symbols to expressions over outer
        /// symbols (including scope parameters).
        symbol_mapping: BTreeMap<String, Expr>,
        /// Input connector names (nested container names).
        inputs: Vec<String>,
        /// Output connector names (nested container names).
        outputs: Vec<String>,
    },
}

impl Node {
    /// Access-node constructor.
    pub fn access(data: impl Into<String>) -> Node {
        Node::Access { data: data.into() }
    }

    /// Tasklet constructor (built-in language).
    pub fn tasklet(
        name: impl Into<String>,
        inputs: &[&str],
        outputs: &[&str],
        code: impl Into<String>,
    ) -> Node {
        Node::Tasklet {
            name: name.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            code: code.into(),
            lang: TaskletLang::Python,
        }
    }

    /// True for scope entry nodes.
    pub fn is_scope_entry(&self) -> bool {
        matches!(self, Node::MapEntry(_) | Node::ConsumeEntry(_))
    }

    /// True for scope exit nodes.
    pub fn is_scope_exit(&self) -> bool {
        matches!(self, Node::MapExit { .. } | Node::ConsumeExit { .. })
    }

    /// The paired entry of a scope exit.
    pub fn exit_entry(&self) -> Option<sdfg_graph::NodeId> {
        match self {
            Node::MapExit { entry } | Node::ConsumeExit { entry } => Some(*entry),
            _ => None,
        }
    }

    /// Access-node container name, if this is an access node.
    pub fn access_data(&self) -> Option<&str> {
        match self {
            Node::Access { data } => Some(data),
            _ => None,
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> String {
        match self {
            Node::Access { data } => data.clone(),
            Node::Tasklet { name, .. } => name.clone(),
            Node::MapEntry(m) => format!(
                "[{}]",
                m.iter_dims()
                    .map(|(p, r)| format!("{p}={r}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Node::MapExit { .. } => "map_exit".into(),
            Node::ConsumeEntry(c) => format!("[{}=0:{}]", c.pe_param, c.num_pes),
            Node::ConsumeExit { .. } => "consume_exit".into(),
            Node::Reduce { wcr, axes, .. } => match axes {
                Some(a) => format!("reduce({wcr}, axes={a:?})"),
                None => format!("reduce({wcr})"),
            },
            Node::NestedSdfg { sdfg, .. } => format!("invoke {}", sdfg.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_scope_dims() {
        let m = MapScope::new(
            "m",
            vec!["i".into(), "j".into()],
            vec![SymRange::full("N"), SymRange::full("M")],
        );
        assert_eq!(m.num_iterations(), Expr::sym("M") * Expr::sym("N"));
        assert_eq!(m.iter_dims().count(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn map_scope_arity_checked() {
        MapScope::new("m", vec!["i".into()], vec![]);
    }

    #[test]
    fn node_predicates() {
        let t = Node::tasklet("t", &["a"], &["b"], "b = a");
        assert!(!t.is_scope_entry());
        let me = Node::MapEntry(MapScope::new("m", vec![], vec![]));
        assert!(me.is_scope_entry());
        let mx = Node::MapExit {
            entry: sdfg_graph::NodeId(0),
        };
        assert!(mx.is_scope_exit());
        assert_eq!(mx.exit_entry(), Some(sdfg_graph::NodeId(0)));
        assert_eq!(Node::access("A").access_data(), Some("A"));
    }

    #[test]
    fn labels() {
        let m = Node::MapEntry(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        assert_eq!(m.label(), "[i=0:N]");
    }
}
