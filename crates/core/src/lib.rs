//! # sdfg-core — the Stateful Dataflow Multigraph IR
//!
//! This crate implements the intermediate representation of the paper
//! *Stateful Dataflow Multigraphs* (SC'19, §3 and Appendix A): a directed
//! graph of directed acyclic multigraphs.
//!
//! * The top level ([`Sdfg`]) is a **state machine**: nodes are [`State`]s,
//!   edges are [`InterstateEdge`]s carrying a condition and symbol
//!   assignments.
//! * Each state is an acyclic **dataflow multigraph**: nodes ([`Node`]) are
//!   data containers, tasklets, scopes (map/consume), reductions and nested
//!   SDFGs; edges carry [`Memlet`]s — data-movement descriptors with a
//!   symbolic subset, volume and optional write-conflict resolution.
//!
//! The crate also provides the structural machinery of §4.3 step ❶:
//! [`validate`](validate::validate) (scope structure, memlet/descriptor
//! consistency, schedule/storage feasibility) and
//! [`propagate`](propagate::propagate_sdfg) (memlet ranges propagated
//! outward through scopes using the image of the scope function on the
//! union of internal subsets).
//!
//! Nothing here executes or optimizes — execution lives in `sdfg-interp`
//! (reference semantics) and `sdfg-exec` (optimizing CPU runtime), and
//! rewriting lives in `sdfg-transforms`.

pub mod cond;
pub mod desc;
pub mod dot;
pub mod dtype;
pub mod error;
pub mod memlet;
pub mod node;
pub mod propagate;
pub mod scope;
pub mod sdfg;
pub mod serialize;
pub mod validate;

pub use cond::BoolExpr;
pub use desc::{ArrayDesc, DataDesc, ScalarDesc, StreamDesc};
pub use dtype::{DType, Storage};
pub use error::SdfgError;
pub use memlet::{Memlet, Wcr};
pub use node::{ConsumeScope, Instrument, MapScope, Node, Schedule, TaskletLang};
pub use sdfg::{InterstateEdge, Sdfg, State, StateId};
pub use validate::{validate, ValidationError};

// Re-export the substrate types users constantly need together with the IR.
pub use sdfg_graph::{EdgeId, MultiGraph, NodeId};
pub use sdfg_symbolic::{Expr, Subset, SymRange};
