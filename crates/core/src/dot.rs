//! GraphViz (DOT) export — the textual equivalent of the paper's SDFG
//! renderings (Fig. 2b, 6–10): access nodes are ovals, tasklets are
//! octagons, scope entries/exits are trapezoids, states are clusters, and
//! write-conflict-resolution memlets are dashed (per Fig. 9a).

use crate::node::Node;
use crate::sdfg::Sdfg;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the SDFG as a GraphViz digraph.
pub fn to_dot(sdfg: &Sdfg) -> String {
    render(sdfg, None)
}

/// Profile heat for the DOT overlay: wall-time share (`0.0..=1.0`) per
/// state id and per `(state, map-entry node)`, as produced by
/// `sdfg_profile::InstrumentationReport::heat`.
pub struct ProfileHeat<'a> {
    /// Time share per state id.
    pub states: &'a HashMap<u32, f64>,
    /// Time share per `(state id, map-entry node id)`.
    pub maps: &'a HashMap<(u32, u32), f64>,
}

/// Renders the SDFG with nodes colored by their share of run wall time:
/// hot states/maps are filled red, cool ones stay white, and each heated
/// label is annotated with its percentage.
pub fn to_dot_with_profile(sdfg: &Sdfg, heat: &ProfileHeat<'_>) -> String {
    render(sdfg, Some(heat))
}

/// White → red fill for a `0.0..=1.0` time share.
fn heat_color(share: f64) -> String {
    let cool = (255.0 * (1.0 - share.clamp(0.0, 1.0))) as u8;
    format!("#ff{cool:02x}{cool:02x}")
}

fn render(sdfg: &Sdfg, heat: Option<&ProfileHeat<'_>>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&sdfg.name));
    let _ = writeln!(out, "  compound=true; rankdir=TB;");
    for sid in sdfg.graph.node_ids() {
        let state = sdfg.graph.node(sid);
        let _ = writeln!(out, "  subgraph \"cluster_{}\" {{", sid.index());
        // Escape first: the heat suffix below uses a DOT `\n` escape that
        // must survive verbatim.
        let mut label = escape(&state.label);
        if sdfg.start == Some(sid) {
            label.push_str(" (start)");
        }
        let state_share = heat.and_then(|h| h.states.get(&(sid.index() as u32)).copied());
        if let Some(share) = state_share {
            let _ = write!(label, "\\n{:.1}% of wall", share * 100.0);
        }
        let _ = writeln!(out, "    label=\"{}\";", label);
        if let Some(share) = state_share {
            let _ = writeln!(
                out,
                "    style=filled; fillcolor=\"{}\";",
                heat_color(share)
            );
        }
        for nid in state.graph.node_ids() {
            let node = state.graph.node(nid);
            let (shape, style) = match node {
                Node::Access { data } => {
                    let transient = sdfg.desc(data).map(|d| d.transient()).unwrap_or(false);
                    let is_stream = sdfg
                        .desc(data)
                        .map(|d| d.as_stream().is_some())
                        .unwrap_or(false);
                    if is_stream {
                        ("oval", "dashed")
                    } else if transient {
                        ("oval", "dotted")
                    } else {
                        ("oval", "solid")
                    }
                }
                Node::Tasklet { .. } => ("octagon", "solid"),
                Node::MapEntry(_) | Node::ConsumeEntry(_) => ("trapezium", "solid"),
                Node::MapExit { .. } | Node::ConsumeExit { .. } => ("invtrapezium", "solid"),
                Node::Reduce { .. } => ("invtriangle", "solid"),
                Node::NestedSdfg { .. } => ("doubleoctagon", "solid"),
            };
            let map_share = match node {
                Node::MapEntry(_) => heat.and_then(|h| {
                    h.maps
                        .get(&(sid.index() as u32, nid.index() as u32))
                        .copied()
                }),
                _ => None,
            };
            let mut label = escape(&node.label());
            let mut extra = String::new();
            if let Some(share) = map_share {
                let _ = write!(label, "\\n{:.1}% of wall", share * 100.0);
                let _ = write!(
                    extra,
                    ", style=\"filled,{}\", fillcolor=\"{}\"",
                    style,
                    heat_color(share)
                );
            }
            if map_share.is_some() {
                let _ = writeln!(
                    out,
                    "    \"s{}_n{}\" [label=\"{}\", shape={}{}];",
                    sid.index(),
                    nid.index(),
                    label,
                    shape,
                    extra
                );
            } else {
                let _ = writeln!(
                    out,
                    "    \"s{}_n{}\" [label=\"{}\", shape={}, style={}];",
                    sid.index(),
                    nid.index(),
                    label,
                    shape,
                    style
                );
            }
        }
        for eid in state.graph.edge_ids() {
            let (src, dst) = state.graph.edge_endpoints(eid);
            let df = state.graph.edge(eid);
            let style = if df.memlet.wcr.is_some() {
                "dashed"
            } else {
                "solid"
            };
            let _ = writeln!(
                out,
                "    \"s{}_n{}\" -> \"s{}_n{}\" [label=\"{}\", style={}];",
                sid.index(),
                src.index(),
                sid.index(),
                dst.index(),
                escape(&df.memlet.to_string()),
                style
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // Interstate edges between cluster anchor nodes.
    for eid in sdfg.graph.edge_ids() {
        let (src, dst) = sdfg.graph.edge_endpoints(eid);
        let t = sdfg.graph.edge(eid);
        let mut label = String::new();
        if !t.condition.is_always() {
            let _ = write!(label, "{}", t.condition);
        }
        for (s, e) in &t.assignments {
            if !label.is_empty() {
                label.push_str("; ");
            }
            let _ = write!(label, "{s} = {e}");
        }
        let (sanchor, danchor) = (anchor(sdfg, src), anchor(sdfg, dst));
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\", ltail=\"cluster_{}\", lhead=\"cluster_{}\", style=bold];",
            sanchor,
            danchor,
            escape(&label),
            src.index(),
            dst.index()
        );
    }
    out.push_str("}\n");
    out
}

/// A representative node inside a state cluster (or an invisible point for
/// empty states).
fn anchor(sdfg: &Sdfg, sid: crate::StateId) -> String {
    let state = sdfg.graph.node(sid);
    match state.graph.node_ids().next() {
        Some(n) => format!("\"s{}_n{}\"", sid.index(), n.index()),
        None => format!("\"s{}_empty\"", sid.index()),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::{Memlet, Wcr};
    use crate::node::MapScope;
    use crate::sdfg::InterstateEdge;
    use crate::DType;
    use sdfg_symbolic::SymRange;

    #[test]
    fn dot_contains_expected_elements() {
        let mut s = Sdfg::new("demo");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_transient("tmp", &["N"], DType::F64);
        let s1 = s.add_state("first");
        let s2 = s.add_state("second");
        s.add_transition(s1, s2, InterstateEdge::when("t < 5").assign("t", "t + 1"));
        let st = s.state_mut(s1);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("work", &["x"], &["y"], "y = x");
        let tmp = st.add_access("tmp");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(
            t,
            Some("y"),
            mx,
            Some("IN_t"),
            Memlet::parse("tmp", "i").with_wcr(Wcr::Sum),
        );
        st.add_edge(mx, Some("OUT_t"), tmp, None, Memlet::parse("tmp", "0:N"));
        let dot = to_dot(&s);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("cluster_"));
        assert!(dot.contains("trapezium"));
        assert!(dot.contains("octagon"));
        assert!(dot.contains("style=dashed")); // WCR memlet
        assert!(dot.contains("t < 5"));
        assert!(dot.contains("t = t + 1"));
        assert!(dot.contains("(start)"));
        // Transient rendered dotted.
        assert!(dot.contains("dotted"));
    }

    #[test]
    fn heat_overlay_colors_hot_scopes() {
        let mut s = Sdfg::new("hot");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        let s1 = s.add_state("main");
        let st = s.state_mut(s1);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("w", &["x"], &["y"], "y = x");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(t, Some("y"), mx, Some("IN_A"), Memlet::parse("A", "i"));
        let aa = st.add_access("A");
        st.add_edge(mx, Some("OUT_A"), aa, None, Memlet::parse("A", "0:N"));

        let mut states = HashMap::new();
        states.insert(s1.index() as u32, 0.95);
        let mut maps = HashMap::new();
        maps.insert((s1.index() as u32, me.index() as u32), 0.90);
        let dot = to_dot_with_profile(
            &s,
            &ProfileHeat {
                states: &states,
                maps: &maps,
            },
        );
        assert!(dot.contains("95.0% of wall"), "state share in:\n{dot}");
        assert!(dot.contains("90.0% of wall"), "map share in:\n{dot}");
        assert!(dot.contains("fillcolor=\"#ff"), "heat fill in:\n{dot}");
        assert!(dot.contains("style=filled"), "cluster filled in:\n{dot}");
        // Plain renderer unchanged by the overlay machinery.
        assert!(!to_dot(&s).contains("% of wall"));
    }
}
