//! GraphViz (DOT) export — the textual equivalent of the paper's SDFG
//! renderings (Fig. 2b, 6–10): access nodes are ovals, tasklets are
//! octagons, scope entries/exits are trapezoids, states are clusters, and
//! write-conflict-resolution memlets are dashed (per Fig. 9a).

use crate::node::Node;
use crate::sdfg::Sdfg;
use std::fmt::Write as _;

/// Renders the SDFG as a GraphViz digraph.
pub fn to_dot(sdfg: &Sdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&sdfg.name));
    let _ = writeln!(out, "  compound=true; rankdir=TB;");
    for sid in sdfg.graph.node_ids() {
        let state = sdfg.graph.node(sid);
        let _ = writeln!(out, "  subgraph \"cluster_{}\" {{", sid.index());
        let mut label = state.label.clone();
        if sdfg.start == Some(sid) {
            label.push_str(" (start)");
        }
        let _ = writeln!(out, "    label=\"{}\";", escape(&label));
        for nid in state.graph.node_ids() {
            let node = state.graph.node(nid);
            let (shape, style) = match node {
                Node::Access { data } => {
                    let transient = sdfg
                        .desc(data)
                        .map(|d| d.transient())
                        .unwrap_or(false);
                    let is_stream = sdfg
                        .desc(data)
                        .map(|d| d.as_stream().is_some())
                        .unwrap_or(false);
                    if is_stream {
                        ("oval", "dashed")
                    } else if transient {
                        ("oval", "dotted")
                    } else {
                        ("oval", "solid")
                    }
                }
                Node::Tasklet { .. } => ("octagon", "solid"),
                Node::MapEntry(_) | Node::ConsumeEntry(_) => ("trapezium", "solid"),
                Node::MapExit { .. } | Node::ConsumeExit { .. } => ("invtrapezium", "solid"),
                Node::Reduce { .. } => ("invtriangle", "solid"),
                Node::NestedSdfg { .. } => ("doubleoctagon", "solid"),
            };
            let _ = writeln!(
                out,
                "    \"s{}_n{}\" [label=\"{}\", shape={}, style={}];",
                sid.index(),
                nid.index(),
                escape(&node.label()),
                shape,
                style
            );
        }
        for eid in state.graph.edge_ids() {
            let (src, dst) = state.graph.edge_endpoints(eid);
            let df = state.graph.edge(eid);
            let style = if df.memlet.wcr.is_some() {
                "dashed"
            } else {
                "solid"
            };
            let _ = writeln!(
                out,
                "    \"s{}_n{}\" -> \"s{}_n{}\" [label=\"{}\", style={}];",
                sid.index(),
                src.index(),
                sid.index(),
                dst.index(),
                escape(&df.memlet.to_string()),
                style
            );
        }
        let _ = writeln!(out, "  }}");
    }
    // Interstate edges between cluster anchor nodes.
    for eid in sdfg.graph.edge_ids() {
        let (src, dst) = sdfg.graph.edge_endpoints(eid);
        let t = sdfg.graph.edge(eid);
        let mut label = String::new();
        if !t.condition.is_always() {
            let _ = write!(label, "{}", t.condition);
        }
        for (s, e) in &t.assignments {
            if !label.is_empty() {
                label.push_str("; ");
            }
            let _ = write!(label, "{s} = {e}");
        }
        let (sanchor, danchor) = (anchor(sdfg, src), anchor(sdfg, dst));
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\", ltail=\"cluster_{}\", lhead=\"cluster_{}\", style=bold];",
            sanchor,
            danchor,
            escape(&label),
            src.index(),
            dst.index()
        );
    }
    out.push_str("}\n");
    out
}

/// A representative node inside a state cluster (or an invisible point for
/// empty states).
fn anchor(sdfg: &Sdfg, sid: crate::StateId) -> String {
    let state = sdfg.graph.node(sid);
    match state.graph.node_ids().next() {
        Some(n) => format!("\"s{}_n{}\"", sid.index(), n.index()),
        None => format!("\"s{}_empty\"", sid.index()),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memlet::{Memlet, Wcr};
    use crate::node::MapScope;
    use crate::sdfg::InterstateEdge;
    use crate::DType;
    use sdfg_symbolic::SymRange;

    #[test]
    fn dot_contains_expected_elements() {
        let mut s = Sdfg::new("demo");
        s.add_symbol("N");
        s.add_array("A", &["N"], DType::F64);
        s.add_transient("tmp", &["N"], DType::F64);
        let s1 = s.add_state("first");
        let s2 = s.add_state("second");
        s.add_transition(s1, s2, InterstateEdge::when("t < 5").assign("t", "t + 1"));
        let st = s.state_mut(s1);
        let a = st.add_access("A");
        let (me, mx) = st.add_map(MapScope::new(
            "m",
            vec!["i".into()],
            vec![SymRange::new(0, "N")],
        ));
        let t = st.add_tasklet("work", &["x"], &["y"], "y = x");
        let tmp = st.add_access("tmp");
        st.add_edge(a, None, me, Some("IN_A"), Memlet::parse("A", "0:N"));
        st.add_edge(me, Some("OUT_A"), t, Some("x"), Memlet::parse("A", "i"));
        st.add_edge(
            t,
            Some("y"),
            mx,
            Some("IN_t"),
            Memlet::parse("tmp", "i").with_wcr(Wcr::Sum),
        );
        st.add_edge(mx, Some("OUT_t"), tmp, None, Memlet::parse("tmp", "0:N"));
        let dot = to_dot(&s);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("cluster_"));
        assert!(dot.contains("trapezium"));
        assert!(dot.contains("octagon"));
        assert!(dot.contains("style=dashed")); // WCR memlet
        assert!(dot.contains("t < 5"));
        assert!(dot.contains("t = t + 1"));
        assert!(dot.contains("(start)"));
        // Transient rendered dotted.
        assert!(dot.contains("dotted"));
    }
}
