//! Memlets: data-movement descriptors (paper Fig. 3 and Appendix A.1).
//!
//! A memlet annotates a dataflow edge with *what* moves: the referenced
//! container, the subset of elements visible at the destination, an optional
//! reindexing subset (for container-to-container copies), the symbolic
//! number of accesses (used for performance modeling), and an optional
//! write-conflict resolution function.

use crate::dtype::DType;
use sdfg_symbolic::{Expr, Subset};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Write-conflict resolution: combines the old value at the destination with
/// the newly written value (paper §3.3, "implemented as atomic operations,
/// critical sections, or accumulator modules").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Wcr {
    /// `old + new`.
    Sum,
    /// `old * new`.
    Product,
    /// `min(old, new)`.
    Min,
    /// `max(old, new)`.
    Max,
    /// Custom resolution written in the tasklet language, with formal
    /// parameters `old` and `new` (e.g. `"old + new*new"`).
    Custom(String),
}

impl Wcr {
    /// Identity element for the reduction, when well-defined.
    pub fn identity(&self, dtype: DType) -> Option<f64> {
        match self {
            Wcr::Sum => Some(0.0),
            Wcr::Product => Some(1.0),
            Wcr::Min => Some(if dtype.is_float() {
                f64::INFINITY
            } else {
                i64::MAX as f64
            }),
            Wcr::Max => Some(if dtype.is_float() {
                f64::NEG_INFINITY
            } else {
                i64::MIN as f64
            }),
            Wcr::Custom(_) => None,
        }
    }

    /// Applies the resolution to concrete scalar values. `Custom` variants
    /// are evaluated by the execution layers, not here.
    pub fn apply(&self, old: f64, new: f64) -> Option<f64> {
        match self {
            Wcr::Sum => Some(old + new),
            Wcr::Product => Some(old * new),
            Wcr::Min => Some(old.min(new)),
            Wcr::Max => Some(old.max(new)),
            Wcr::Custom(_) => None,
        }
    }
}

impl fmt::Display for Wcr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wcr::Sum => write!(f, "Sum"),
            Wcr::Product => write!(f, "Product"),
            Wcr::Min => write!(f, "Min"),
            Wcr::Max => write!(f, "Max"),
            Wcr::Custom(code) => write!(f, "lambda old, new: {code}"),
        }
    }
}

/// A data-movement descriptor attached to a dataflow edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct Memlet {
    /// Referenced container name; `None` for an *empty memlet* — a pure
    /// ordering dependency that moves no data (used e.g. to keep systolic
    /// PEs inside a map scope, Fig. 7).
    pub data: Option<String>,
    /// Subset of the container that moves.
    pub subset: Subset,
    /// For container-to-container copies: where the data lands in the
    /// destination (the `reindex` function of Appendix A.1).
    pub other_subset: Option<Subset>,
    /// Symbolic number of accesses. Defaults to the subset volume.
    pub volume: Expr,
    /// True when the number of accesses is data-dependent ("dyn" in Fig. 8).
    pub dynamic: bool,
    /// Write-conflict resolution, if writes may conflict.
    pub wcr: Option<Wcr>,
}

impl Memlet {
    /// An empty memlet (ordering-only dependency).
    pub fn empty() -> Memlet {
        Memlet {
            data: None,
            subset: Subset::default(),
            other_subset: None,
            volume: Expr::zero(),
            dynamic: false,
            wcr: None,
        }
    }

    /// A simple memlet moving `subset` of `data`, volume = subset volume.
    pub fn new(data: impl Into<String>, subset: Subset) -> Memlet {
        let volume = subset.volume();
        Memlet {
            data: Some(data.into()),
            subset,
            other_subset: None,
            volume,
            dynamic: false,
            wcr: None,
        }
    }

    /// Parses the subset from text: `Memlet::parse("A", "i, 0:N")`.
    pub fn parse(data: impl Into<String>, subset: &str) -> Memlet {
        let subset = Subset::parse(subset)
            .unwrap_or_else(|e| panic!("invalid memlet subset `{subset}`: {e}"));
        Memlet::new(data, subset)
    }

    /// Adds a write-conflict resolution.
    pub fn with_wcr(mut self, wcr: Wcr) -> Memlet {
        self.wcr = Some(wcr);
        self
    }

    /// Marks the access count as dynamic (e.g. consume-scope feeds).
    pub fn dynamic(mut self) -> Memlet {
        self.dynamic = true;
        self
    }

    /// Overrides the access count.
    pub fn with_volume(mut self, volume: Expr) -> Memlet {
        self.volume = volume;
        self
    }

    /// Sets the destination subset for copies.
    pub fn with_other_subset(mut self, other: Subset) -> Memlet {
        self.other_subset = Some(other);
        self
    }

    /// True if this memlet moves no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_none()
    }

    /// Container name; panics on empty memlets.
    pub fn data_name(&self) -> &str {
        self.data.as_deref().expect("empty memlet has no data")
    }
}

impl fmt::Display for Memlet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let Some(data) = &self.data else {
            return write!(f, "∅");
        };
        write!(f, "{data}")?;
        if self.dynamic {
            write!(f, "(dyn)")?;
        } else if self.volume != self.subset.volume() {
            write!(f, "({})", self.volume)?;
        }
        write!(f, "[{}]", self.subset)?;
        if let Some(os) = &self.other_subset {
            write!(f, " -> [{os}]")?;
        }
        if let Some(wcr) = &self.wcr {
            write!(f, " (CR: {wcr})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_volume_is_subset_volume() {
        let m = Memlet::parse("A", "0:N, k");
        assert_eq!(m.volume, Expr::sym("N"));
        assert!(!m.is_empty());
        assert_eq!(m.data_name(), "A");
    }

    #[test]
    fn empty_memlet() {
        let m = Memlet::empty();
        assert!(m.is_empty());
        assert_eq!(m.to_string(), "∅");
    }

    #[test]
    fn display_forms() {
        let m = Memlet::parse("A", "i").with_wcr(Wcr::Sum);
        assert_eq!(m.to_string(), "A[i] (CR: Sum)");
        let d = Memlet::parse("S", "0").dynamic();
        assert_eq!(d.to_string(), "S(dyn)[0]");
        let v = Memlet::parse("b", "i").with_volume(Expr::int(1));
        assert_eq!(v.to_string(), "b[i]"); // volume == subset volume: elided
    }

    #[test]
    fn wcr_semantics() {
        assert_eq!(Wcr::Sum.apply(2.0, 3.0), Some(5.0));
        assert_eq!(Wcr::Min.apply(2.0, 3.0), Some(2.0));
        assert_eq!(Wcr::Max.identity(DType::F64), Some(f64::NEG_INFINITY));
        assert_eq!(Wcr::Custom("old".into()).apply(1.0, 2.0), None);
    }
}
