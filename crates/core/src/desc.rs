//! Data descriptors: the "containers" of the data-centric model (§3.1).
//!
//! Containers are declared once per SDFG (keyed by name) and referenced by
//! access nodes. `transient` marks containers that exist only for the
//! duration of the SDFG — the property that lets transformations reshape or
//! eliminate them ("standard compilers cannot make this distinction").

use crate::dtype::{DType, Storage};
use sdfg_symbolic::Expr;
use serde::{Deserialize, Serialize};

/// An N-dimensional array container.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayDesc {
    /// Element type.
    pub dtype: DType,
    /// Symbolic shape, outermost dimension first.
    pub shape: Vec<Expr>,
    /// Symbolic strides in *elements* (same length as `shape`).
    pub strides: Vec<Expr>,
    /// Storage location.
    pub storage: Storage,
    /// Allocated only for the duration of SDFG execution.
    pub transient: bool,
}

impl ArrayDesc {
    /// Row-major (C-order) array.
    pub fn new(dtype: DType, shape: Vec<Expr>) -> ArrayDesc {
        let strides = row_major_strides(&shape);
        ArrayDesc {
            dtype,
            shape,
            strides,
            storage: Storage::Default,
            transient: false,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Symbolic total element count.
    pub fn total_size(&self) -> Expr {
        Expr::mul(self.shape.iter().cloned())
    }

    /// Recomputes contiguous row-major strides (after a shape change).
    pub fn reset_strides(&mut self) {
        self.strides = row_major_strides(&self.shape);
    }
}

/// Computes row-major strides for a shape.
pub fn row_major_strides(shape: &[Expr]) -> Vec<Expr> {
    let mut strides = vec![Expr::one(); shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1].clone() * shape[d + 1].clone();
    }
    strides
}

/// A multi-dimensional array of concurrent queues (§3.1). On FPGAs these
/// become FIFO interfaces; on CPUs, concurrent queues.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamDesc {
    /// Element type.
    pub dtype: DType,
    /// Shape of the *array of queues* (empty = single queue).
    pub shape: Vec<Expr>,
    /// Buffer capacity hint per queue (FIFO depth on FPGAs); `None` =
    /// unbounded.
    pub buffer_size: Option<Expr>,
    /// Storage location.
    pub storage: Storage,
    /// Allocated only for the duration of SDFG execution.
    pub transient: bool,
}

impl StreamDesc {
    /// A single unbounded queue.
    pub fn new(dtype: DType) -> StreamDesc {
        StreamDesc {
            dtype,
            shape: Vec::new(),
            buffer_size: None,
            storage: Storage::Default,
            transient: true,
        }
    }
}

/// A scalar container (rank-0 array); also used for symbols passed as data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalarDesc {
    /// Element type.
    pub dtype: DType,
    /// Storage location.
    pub storage: Storage,
    /// Allocated only for the duration of SDFG execution.
    pub transient: bool,
}

/// Any container declarable in an SDFG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DataDesc {
    /// N-dimensional array.
    Array(ArrayDesc),
    /// Array of concurrent queues.
    Stream(StreamDesc),
    /// Scalar.
    Scalar(ScalarDesc),
}

impl DataDesc {
    /// Element type of the container.
    pub fn dtype(&self) -> DType {
        match self {
            DataDesc::Array(a) => a.dtype,
            DataDesc::Stream(s) => s.dtype,
            DataDesc::Scalar(s) => s.dtype,
        }
    }

    /// Number of dimensions (0 for scalars; queue-array rank for streams).
    pub fn rank(&self) -> usize {
        match self {
            DataDesc::Array(a) => a.rank(),
            DataDesc::Stream(s) => s.shape.len(),
            DataDesc::Scalar(_) => 0,
        }
    }

    /// Symbolic shape (empty for scalars).
    pub fn shape(&self) -> &[Expr] {
        match self {
            DataDesc::Array(a) => &a.shape,
            DataDesc::Stream(s) => &s.shape,
            DataDesc::Scalar(_) => &[],
        }
    }

    /// Whether the container is transient.
    pub fn transient(&self) -> bool {
        match self {
            DataDesc::Array(a) => a.transient,
            DataDesc::Stream(s) => s.transient,
            DataDesc::Scalar(s) => s.transient,
        }
    }

    /// Sets the transient flag.
    pub fn set_transient(&mut self, t: bool) {
        match self {
            DataDesc::Array(a) => a.transient = t,
            DataDesc::Stream(s) => s.transient = t,
            DataDesc::Scalar(s) => s.transient = t,
        }
    }

    /// Storage location.
    pub fn storage(&self) -> Storage {
        match self {
            DataDesc::Array(a) => a.storage,
            DataDesc::Stream(s) => s.storage,
            DataDesc::Scalar(s) => s.storage,
        }
    }

    /// Sets the storage location.
    pub fn set_storage(&mut self, st: Storage) {
        match self {
            DataDesc::Array(a) => a.storage = st,
            DataDesc::Stream(s) => s.storage = st,
            DataDesc::Scalar(s) => s.storage = st,
        }
    }

    /// Convenience accessor for arrays.
    pub fn as_array(&self) -> Option<&ArrayDesc> {
        match self {
            DataDesc::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience accessor for streams.
    pub fn as_stream(&self) -> Option<&StreamDesc> {
        match self {
            DataDesc::Stream(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_stride_computation() {
        let shape = vec![Expr::sym("M"), Expr::sym("N"), Expr::int(4)];
        let strides = row_major_strides(&shape);
        assert_eq!(strides[2], Expr::one());
        assert_eq!(strides[1], Expr::int(4));
        assert_eq!(strides[0], Expr::sym("N") * Expr::int(4));
    }

    #[test]
    fn array_total_size() {
        let a = ArrayDesc::new(DType::F64, vec![Expr::sym("N"), Expr::sym("N")]);
        assert_eq!(a.total_size(), Expr::sym("N") * Expr::sym("N"));
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn desc_dispatch() {
        let d = DataDesc::Array(ArrayDesc::new(DType::F32, vec![Expr::int(8)]));
        assert_eq!(d.dtype(), DType::F32);
        assert_eq!(d.rank(), 1);
        assert!(!d.transient());
        let mut s = DataDesc::Stream(StreamDesc::new(DType::I64));
        assert!(s.transient());
        s.set_storage(Storage::FpgaLocal);
        assert_eq!(s.storage(), Storage::FpgaLocal);
        let sc = DataDesc::Scalar(ScalarDesc {
            dtype: DType::I64,
            storage: Storage::Default,
            transient: false,
        });
        assert_eq!(sc.rank(), 0);
    }
}
