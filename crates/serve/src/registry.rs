//! The multi-tenant program registry: submitted SDFGs are keyed by
//! content hash, validated and compiled **once**, and every resident
//! program shares one plan cache, buffer pool, tuning DB and scheduler
//! pool. A second tenant submitting a byte-identical program gets the
//! same handle back (and, on invoke, the first tenant's cached plans).

use sdfg_core::serialize::{content_hash, from_json_limited};
use sdfg_core::SdfgError;
use sdfg_exec::{
    shared_scheduler, Bindings, BufferPool, OptLevel, Outputs, PlanCache, SchedPool, Session,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Per-program usage counters, updated lock-free on the invoke path.
#[derive(Default)]
pub struct ProgramStats {
    /// Completed invokes (success or failure).
    pub invokes: AtomicU64,
    /// Invokes that returned an error.
    pub errors: AtomicU64,
    /// Total invoke wall time, microseconds.
    pub total_us: AtomicU64,
    /// Submissions that found this program already resident.
    pub submit_hits: AtomicU64,
}

/// One resident program: a compile-once [`Session`] plus usage counters.
pub struct ProgramEntry {
    /// The shared, `Sync` session (compiled lazily on first invoke).
    pub session: Session,
    /// Usage counters.
    pub stats: ProgramStats,
}

impl ProgramEntry {
    /// Runs one invoke with an optional wall-clock budget, updating the
    /// per-program counters.
    pub fn invoke(
        &self,
        bindings: Bindings,
        budget: Option<Duration>,
    ) -> Result<Outputs, SdfgError> {
        let t0 = Instant::now();
        let out = match budget {
            Some(b) => self.session.run_deadline(bindings, b),
            None => self.session.run(bindings),
        };
        self.stats.invokes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .total_us
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        if out.is_err() {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

/// Execution policy every registered program is built with. Tenants
/// share the server's policy; per-request knobs are limited to symbol
/// and array bindings plus the invoke deadline.
pub struct RegistryConfig {
    /// Optimization level for registered programs.
    pub opt: OptLevel,
    /// Worker threads per invoke.
    pub nthreads: usize,
    /// Optional tuning database (implies measured configs at `opt`
    /// level [`OptLevel::Tuned`]).
    pub tuning_db: Option<PathBuf>,
    /// Size cap for submitted program payloads, bytes.
    pub max_program_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            opt: OptLevel::Aggressive,
            nthreads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            tuning_db: None,
            max_program_bytes: sdfg_core::serialize::DEFAULT_MAX_PROGRAM_BYTES,
        }
    }
}

/// What a submit returned: the content-hash handle and whether the
/// program was already resident.
pub struct Submitted {
    /// Content hash of the submitted (unoptimized) graph.
    pub hash: u64,
    /// True when a byte-identical program was already registered.
    pub existing: bool,
    /// Program name from the graph.
    pub name: String,
}

/// The content-addressed program store shared by all tenants.
pub struct Registry {
    config: RegistryConfig,
    plan_cache: Arc<PlanCache>,
    pool: Arc<BufferPool>,
    sched: Option<Arc<SchedPool>>,
    programs: RwLock<HashMap<u64, Arc<ProgramEntry>>>,
}

impl Registry {
    /// Creates an empty registry; the plan cache, buffer pool and
    /// scheduler pool created here are shared by every program it will
    /// ever hold.
    pub fn new(config: RegistryConfig) -> Registry {
        let sched = shared_scheduler(config.nthreads);
        Registry {
            config,
            plan_cache: Arc::new(PlanCache::new()),
            pool: Arc::new(BufferPool::new()),
            sched,
            programs: RwLock::new(HashMap::new()),
        }
    }

    /// Deserializes, validates and registers a program. Byte-identical
    /// resubmissions (from any tenant) are registry hits: the existing
    /// entry — and its compiled plans — are reused.
    pub fn submit(&self, src: &str) -> Result<Submitted, SdfgError> {
        let sdfg = from_json_limited(src, self.config.max_program_bytes)?;
        let hash = content_hash(&sdfg);
        if let Some(entry) = self.programs.read().unwrap().get(&hash) {
            entry.stats.submit_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Submitted {
                hash,
                existing: true,
                name: entry.session.sdfg().name.clone(),
            });
        }
        let name = sdfg.name.clone();
        let mut builder = Session::builder(sdfg)
            .opt_level(self.config.opt)
            .nthreads(self.config.nthreads)
            .plan_cache(Arc::clone(&self.plan_cache))
            .buffer_pool(Arc::clone(&self.pool));
        if let Some(s) = &self.sched {
            builder = builder.scheduler(Arc::clone(s));
        }
        if let Some(db) = &self.config.tuning_db {
            builder = builder.tuning_db(db);
        }
        let session = builder.build()?;
        let entry = Arc::new(ProgramEntry {
            session,
            stats: ProgramStats::default(),
        });
        let mut programs = self.programs.write().unwrap();
        // Two tenants can race the same submission; first writer wins and
        // the loser's entry (no compiled state yet) is discarded.
        let existing = programs.contains_key(&hash);
        if existing {
            programs[&hash]
                .stats
                .submit_hits
                .fetch_add(1, Ordering::Relaxed);
        } else {
            programs.insert(hash, entry);
        }
        Ok(Submitted {
            hash,
            existing,
            name,
        })
    }

    /// Looks up a resident program by handle.
    pub fn get(&self, hash: u64) -> Option<Arc<ProgramEntry>> {
        self.programs.read().unwrap().get(&hash).cloned()
    }

    /// Snapshot of all resident programs, sorted by handle for stable
    /// listings: `(hash, name, invokes, errors, submit_hits, avg_ms)`.
    pub fn list(&self) -> Vec<(u64, String, u64, u64, u64, f64)> {
        let programs = self.programs.read().unwrap();
        let mut rows: Vec<_> = programs
            .iter()
            .map(|(h, e)| {
                let invokes = e.stats.invokes.load(Ordering::Relaxed);
                let avg_ms = if invokes > 0 {
                    e.stats.total_us.load(Ordering::Relaxed) as f64 / invokes as f64 / 1000.0
                } else {
                    0.0
                };
                (
                    *h,
                    e.session.sdfg().name.clone(),
                    invokes,
                    e.stats.errors.load(Ordering::Relaxed),
                    e.stats.submit_hits.load(Ordering::Relaxed),
                    avg_ms,
                )
            })
            .collect();
        rows.sort_by_key(|r| r.0);
        rows
    }

    /// Number of resident programs.
    pub fn len(&self) -> usize {
        self.programs.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.read().unwrap().is_empty()
    }

    /// The plan cache shared by every resident program.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The buffer pool shared by every resident program.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}
