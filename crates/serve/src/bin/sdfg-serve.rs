//! `sdfg-serve` — the multi-tenant SDFG execution server.
//!
//! ```text
//! sdfg-serve --port 8080 --nthreads 4 --opt aggressive
//! ```
//!
//! See the crate docs (`sdfg_serve`) for the wire protocol.

use sdfg_exec::OptLevel;
use sdfg_serve::{Server, ServerConfig};
use std::path::PathBuf;

const USAGE: &str = "\
sdfg-serve: multi-tenant SDFG execution server

USAGE:
  sdfg-serve [--port N] [--nthreads N] [--opt LEVEL] [--db PATH]
             [--max-inflight N] [--queue-depth N] [--tenant-cap N]
             [--timeout-ms N] [--ledger PATH]

OPTIONS:
  --port N          TCP port on 127.0.0.1 (default 8080; 0 = ephemeral)
  --nthreads N      worker threads per invoke (default: all cores)
  --opt LEVEL       none | strict | aggressive | tuned (default aggressive)
  --db PATH         tuning database (implies --opt tuned)
  --max-inflight N  concurrently executing invokes (default 4)
  --queue-depth N   invokes queued beyond the cap before 429 (default 16)
  --tenant-cap N    per-tenant running+queued cap (default 4)
  --timeout-ms N    default invoke deadline (default 30000)
  --ledger PATH     append per-request run records to this JSONL file
";

fn main() {
    let mut config = ServerConfig {
        port: 8080,
        ..ServerConfig::default()
    };
    let mut ledger_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            return;
        }
        let Some(value) = args.next() else {
            eprintln!("error: {flag} needs a value\n\n{USAGE}");
            std::process::exit(2);
        };
        match flag.as_str() {
            "--port" => config.port = parse(&flag, &value),
            "--nthreads" => config.registry.nthreads = parse::<usize>(&flag, &value).max(1),
            "--opt" => {
                config.registry.opt = match value.as_str() {
                    "none" => OptLevel::None,
                    "strict" => OptLevel::Strict,
                    "aggressive" => OptLevel::Aggressive,
                    "tuned" => OptLevel::Tuned,
                    other => {
                        eprintln!("error: unknown --opt level `{other}`\n\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--db" => {
                config.registry.tuning_db = Some(PathBuf::from(&value));
                config.registry.opt = OptLevel::Tuned;
            }
            "--max-inflight" => config.max_inflight = parse::<usize>(&flag, &value).max(1),
            "--queue-depth" => config.queue_depth = parse(&flag, &value),
            "--tenant-cap" => config.tenant_cap = parse::<usize>(&flag, &value).max(1),
            "--timeout-ms" => config.default_timeout_ms = parse(&flag, &value),
            "--ledger" => ledger_path = Some(PathBuf::from(&value)),
            other => {
                eprintln!("error: unknown flag `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &ledger_path {
        sdfg_profile::ledger::set_path(Some(path));
    }
    // Touch the engine's metric handles up front so `/metrics` exposes
    // every core family from the first scrape, not the first invoke.
    let _ = sdfg_profile::metrics::core();
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            std::process::exit(1);
        }
    };
    println!("sdfg-serve listening on http://{}", server.addr());
    println!(
        "  submit:  curl -X POST --data-binary @program.json http://{}/v1/programs",
        server.addr()
    );
    println!("  metrics: curl http://{}/metrics", server.addr());
    // Serve until killed; `server` stays alive (and accepting) for the
    // process lifetime.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got `{value}`, expected a number\n\n{USAGE}");
        std::process::exit(2);
    })
}
