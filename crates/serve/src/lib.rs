//! # sdfg-serve — SDFG-as-a-service
//!
//! A long-running, multi-tenant execution server over the
//! compile-once/invoke-many [`Session`](sdfg_exec::Session) API. Tenants
//! `POST` a serialized SDFG once and get back a content-hash handle; the
//! program is validated and optimized at submit time, and every
//! subsequent invoke binds inputs, runs, and streams outputs back — no
//! per-request compilation. All resident programs share one plan cache,
//! buffer pool, tuning database and work-stealing scheduler pool, so
//! tenants transparently benefit from each other's warmed state.
//!
//! The wire protocol is deliberately small (std-only HTTP/1.1 with
//! keep-alive, thread-per-connection):
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/programs` | submit a serialized SDFG → `{"program": "<hash>"}` |
//! | `POST /v1/programs/{hash}/invoke` | bind inputs, execute, return outputs |
//! | `GET /v1/programs` | registry listing with per-program usage stats |
//! | `GET /metrics` | Prometheus exposition (the process-global registry) |
//! | `GET /healthz` | liveness probe |
//!
//! Robustness: invokes pass a bounded admission queue (overflow is shed
//! with `429` + `Retry-After`), each tenant (`x-api-key` header) has an
//! in-flight cap, and every invoke carries a wall-clock deadline that
//! cancels the run between SDFG states (`504`, registry unharmed). Every
//! request lands in the run ledger tagged with tenant and request id.

pub mod admission;
pub mod http;
pub mod registry;

pub use admission::{Admission, Permit, Reject};
pub use registry::{ProgramEntry, Registry, RegistryConfig, Submitted};

use http::{ParseError, Request, Response};
use sdfg_core::serialize::{parse_json_limited, Json};
use sdfg_core::SdfgError;
use sdfg_exec::Bindings;
use sdfg_profile::{ledger, metrics};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server needs to start; `Default` is a sane
/// single-machine configuration on an ephemeral port.
pub struct ServerConfig {
    /// Port to bind on `127.0.0.1` (0 = ephemeral, see
    /// [`Server::addr`]).
    pub port: u16,
    /// Execution policy for registered programs.
    pub registry: RegistryConfig,
    /// Maximum concurrently executing invokes.
    pub max_inflight: usize,
    /// Invokes allowed to queue beyond the cap before shedding with 429.
    pub queue_depth: usize,
    /// Per-tenant running + queued invoke cap.
    pub tenant_cap: usize,
    /// Default invoke deadline when the request names none, ms.
    pub default_timeout_ms: u64,
    /// Request body cap for invoke payloads, bytes.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 0,
            registry: RegistryConfig::default(),
            max_inflight: 4,
            queue_depth: 16,
            tenant_cap: 4,
            default_timeout_ms: 30_000,
            max_body_bytes: 64 << 20,
        }
    }
}

/// A running server: accept loop on its own thread, one thread per
/// connection. Dropping it stops accepting new connections.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<Registry>,
    admission: Arc<Admission>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving. With `port` 0 the OS picks an ephemeral
    /// port; read it back from [`Server::addr`].
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Registry::new(config.registry));
        let admission = Admission::new(config.max_inflight, config.queue_depth, config.tenant_cap);
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            registry: Arc::clone(&registry),
            admission: Arc::clone(&admission),
            default_timeout_ms: config.default_timeout_ms,
            max_body_bytes: config.max_body_bytes,
            request_seq: AtomicU64::new(0),
        });
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("sdfg-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name("sdfg-serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared));
                }
            })?;
        Ok(Server {
            addr,
            registry,
            admission,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved port for ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared program registry (for embedding and tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Running + queued invokes right now.
    pub fn inflight(&self) -> usize {
        self.admission.inflight()
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight requests on already-accepted connections complete.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-server state every connection thread sees.
struct Shared {
    registry: Arc<Registry>,
    admission: Arc<Admission>,
    default_timeout_ms: u64,
    max_body_bytes: usize,
    request_seq: AtomicU64,
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_read);
    let mut stream = stream;
    loop {
        let req = match http::read_request(&mut reader, shared.max_body_bytes) {
            Ok(req) => req,
            Err(ParseError::Eof) | Err(ParseError::Io(_)) => return,
            Err(ParseError::Bad(msg)) => {
                let resp = error_response(400, "SDFG-H400", &msg);
                let _ = http::write_response(&mut stream, &resp, false);
                return;
            }
            Err(ParseError::TooLarge { limit, got }) => {
                let err = SdfgError::PayloadTooLarge { limit, got };
                let resp = error_response(413, err.code(), &err.to_string());
                let _ = http::write_response(&mut stream, &resp, false);
                return;
            }
        };
        let keep_alive = req.keep_alive;
        let resp = route(&req, shared);
        match http::write_response(&mut stream, &resp, keep_alive) {
            Ok(true) => continue,
            _ => return,
        }
    }
}

fn route(req: &Request, shared: &Shared) -> Response {
    let m = metrics::serve();
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            m.requests_other.inc();
            Response::text(200, "ok\n")
        }
        ("GET", "/metrics") => {
            m.requests_other.inc();
            Response::text(200, metrics::global().render_prometheus())
        }
        ("GET", "/v1/programs") => {
            m.requests_other.inc();
            list_programs(shared)
        }
        ("POST", "/v1/programs") => {
            m.requests_submit.inc();
            submit(req, shared)
        }
        ("POST", path) => match invoke_target(path) {
            Some(hash_str) => {
                m.requests_invoke.inc();
                invoke(req, shared, hash_str)
            }
            None => {
                m.requests_other.inc();
                error_response(404, "SDFG-H404", &format!("no route for `{path}`"))
            }
        },
        (_, path) => {
            m.requests_other.inc();
            error_response(
                405,
                "SDFG-H405",
                &format!("method {} not supported on `{path}`", req.method),
            )
        }
    }
}

/// Matches `/v1/programs/{hash}/invoke` and returns the hash segment.
fn invoke_target(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/v1/programs/")?;
    let (hash, tail) = rest.split_once('/')?;
    (tail == "invoke" && !hash.is_empty()).then_some(hash)
}

fn tenant_of(req: &Request) -> String {
    req.header("x-api-key")
        .filter(|k| !k.is_empty())
        .unwrap_or("anonymous")
        .to_string()
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

fn submit(req: &Request, shared: &Shared) -> Response {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return error_response(400, "SDFG-S002", "request body is not UTF-8");
    };
    match shared.registry.submit(body) {
        Ok(sub) => {
            let status = if sub.existing { 200 } else { 201 };
            Response::json(
                status,
                format!(
                    "{{\"program\":\"{:016x}\",\"name\":{},\"existing\":{}}}",
                    sub.hash,
                    json_str(&sub.name),
                    sub.existing
                ),
            )
        }
        Err(err) => sdfg_error_response(&err),
    }
}

fn list_programs(shared: &Shared) -> Response {
    let mut out = String::from("{\"programs\":[");
    for (i, (hash, name, invokes, errors, submit_hits, avg_ms)) in
        shared.registry.list().into_iter().enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"program\":\"{hash:016x}\",\"name\":{},\"invokes\":{invokes},\
             \"errors\":{errors},\"submit_hits\":{submit_hits},\"avg_ms\":{avg_ms}}}",
            json_str(&name),
        ));
    }
    out.push_str("]}");
    Response::json(200, out)
}

fn invoke(req: &Request, shared: &Shared, hash_str: &str) -> Response {
    let m = metrics::serve();
    let Ok(hash) = u64::from_str_radix(hash_str, 16) else {
        return error_response(
            400,
            "SDFG-H400",
            &format!("`{hash_str}` is not a program handle (16 hex digits)"),
        );
    };
    let Some(entry) = shared.registry.get(hash) else {
        return error_response(
            404,
            "SDFG-H404",
            &format!("no program {hash:016x} registered"),
        );
    };
    let (bindings, timeout_ms, outputs_filter) =
        match decode_invoke_body(&req.body, shared.max_body_bytes) {
            Ok(parts) => parts,
            Err(resp) => return resp,
        };
    let tenant = tenant_of(req);
    let request_id = format!(
        "req-{}",
        shared.request_seq.fetch_add(1, Ordering::Relaxed) + 1
    );
    let timeout = Duration::from_millis(timeout_ms.unwrap_or(shared.default_timeout_ms));
    let deadline = Instant::now() + timeout;

    m.inflight.add(1);
    let t0 = Instant::now();
    let result = (|| {
        let _permit = match shared.admission.admit(&tenant, deadline) {
            Ok(p) => p,
            Err(reject) => return Err(reject_response(reject)),
        };
        // The permit may have been granted with part of the budget spent
        // queueing; the run gets only what remains.
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            m.rejected_timeout.inc();
            let err = SdfgError::Timeout {
                ms: timeout.as_millis() as u64,
            };
            return Err(sdfg_error_response(&err));
        }
        let _scope = ledger::request_scope(&tenant, &request_id);
        entry.invoke(bindings, Some(remaining)).map_err(|err| {
            if matches!(err, SdfgError::Timeout { .. }) {
                m.rejected_timeout.inc();
            }
            sdfg_error_response(&err)
        })
    })();
    m.inflight.add(-1);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    m.request_duration_ms.observe(wall_ms);

    let out = match result {
        Ok(out) => out,
        Err(resp) => return resp.with_header("x-request-id", request_id),
    };
    let arrays = out.into_arrays();
    let mut body = format!("{{\"program\":\"{hash:016x}\",\"outputs\":{{");
    let mut names: Vec<&String> = match &outputs_filter {
        Some(want) => {
            for name in want {
                if !arrays.contains_key(name) {
                    let err = SdfgError::UnknownData { name: name.clone() };
                    return sdfg_error_response(&err).with_header("x-request-id", request_id);
                }
            }
            want.iter().collect()
        }
        None => arrays.keys().collect(),
    };
    names.sort();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&json_str(name));
        body.push(':');
        json_f64_array(&mut body, &arrays[*name]);
    }
    body.push_str(&format!("}},\"wall_ms\":{wall_ms}}}"));
    Response::json(200, body).with_header("x-request-id", request_id)
}

fn reject_response(reject: Reject) -> Response {
    let m = metrics::serve();
    match reject {
        Reject::QueueFull => {
            m.rejected_queue.inc();
            error_response(429, "SDFG-H429", "admission queue is full; retry shortly")
                .with_header("retry-after", "1".into())
        }
        Reject::TenantCap => {
            m.rejected_tenant.inc();
            error_response(
                429,
                "SDFG-H429",
                "tenant in-flight cap reached; retry shortly",
            )
            .with_header("retry-after", "1".into())
        }
        Reject::Timeout => {
            m.rejected_timeout.inc();
            error_response(
                504,
                "SDFG-X004",
                "deadline expired while queued for admission",
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Wire JSON
// ---------------------------------------------------------------------------

type InvokeParts = (Bindings, Option<u64>, Option<Vec<String>>);

/// Decodes an invoke body: `{"symbols": {..}, "arrays": {..},
/// "timeout_ms": N, "outputs": [..]}`; every field optional.
fn decode_invoke_body(body: &[u8], max_bytes: usize) -> Result<InvokeParts, Response> {
    if body.is_empty() {
        return Ok((Bindings::new(), None, None));
    }
    let src = std::str::from_utf8(body)
        .map_err(|_| error_response(400, "SDFG-S002", "request body is not UTF-8"))?;
    let doc = parse_json_limited(src, max_bytes)
        .map_err(|msg| error_response(400, "SDFG-S002", &format!("deserialization: {msg}")))?;
    let mut bindings = Bindings::new();
    if let Some(Json::Obj(pairs)) = doc.get("symbols") {
        for (name, v) in pairs {
            let Json::Num(x) = v else {
                return Err(bad_field(&format!("symbol `{name}` must be a number")));
            };
            if x.fract() != 0.0 {
                return Err(bad_field(&format!("symbol `{name}` must be an integer")));
            }
            bindings = bindings.symbol(name, *x as i64);
        }
    }
    if let Some(Json::Obj(pairs)) = doc.get("arrays") {
        for (name, v) in pairs {
            let Json::Arr(items) = v else {
                return Err(bad_field(&format!("array `{name}` must be a JSON array")));
            };
            let mut data = Vec::with_capacity(items.len());
            for item in items {
                let Json::Num(x) = item else {
                    return Err(bad_field(&format!("array `{name}` must hold only numbers")));
                };
                data.push(*x);
            }
            bindings = bindings.array_vec(name, data);
        }
    }
    let timeout_ms = match doc.get("timeout_ms") {
        Some(Json::Num(x)) if *x >= 0.0 => Some(*x as u64),
        Some(_) => return Err(bad_field("timeout_ms must be a non-negative number")),
        None => None,
    };
    let outputs = match doc.get("outputs") {
        Some(Json::Arr(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                let Json::Str(s) = item else {
                    return Err(bad_field("outputs must be an array of names"));
                };
                names.push(s.clone());
            }
            Some(names)
        }
        Some(_) => return Err(bad_field("outputs must be an array of names")),
        None => None,
    };
    Ok((bindings, timeout_ms, outputs))
}

fn bad_field(msg: &str) -> Response {
    error_response(400, "SDFG-S002", msg)
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes an `f64` array. Finite values use Rust's shortest
/// round-trip representation, so a client that reparses them gets
/// bitwise-identical doubles; non-finite values (unrepresentable in
/// JSON) are emitted as `null`.
fn json_f64_array(out: &mut String, data: &[f64]) {
    out.push('[');
    for (i, x) in data.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if x.is_finite() {
            out.push_str(&format!("{x}"));
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

fn error_response(status: u16, code: &str, message: &str) -> Response {
    Response::json(
        status,
        format!(
            "{{\"error\":{{\"code\":{},\"message\":{}}}}}",
            json_str(code),
            json_str(message)
        ),
    )
}

/// Maps a typed engine error onto an HTTP status: client-side defects
/// (bad graph, unknown data, shape mismatch, malformed payload) are 4xx,
/// deadline expiry is 504, anything else is the server's fault.
fn sdfg_error_response(err: &SdfgError) -> Response {
    let status = match err {
        SdfgError::PayloadTooLarge { .. } => 413,
        SdfgError::Timeout { .. } => 504,
        SdfgError::Serialize { .. }
        | SdfgError::Validation { .. }
        | SdfgError::UnknownData { .. }
        | SdfgError::ShapeMismatch { .. } => 400,
        _ => 500,
    };
    error_response(status, err.code(), &err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_target_parses() {
        assert_eq!(
            invoke_target("/v1/programs/00ff00ff00ff00ff/invoke"),
            Some("00ff00ff00ff00ff")
        );
        assert_eq!(invoke_target("/v1/programs/abc"), None);
        assert_eq!(invoke_target("/v1/programs//invoke"), None);
        assert_eq!(invoke_target("/v1/other/abc/invoke"), None);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn f64_array_round_trips_bitwise() {
        let vals = [0.1, -1.5e-300, 3.0, f64::MAX, 1.0 / 3.0];
        let mut s = String::new();
        json_f64_array(&mut s, &vals);
        let doc = sdfg_core::serialize::parse_json(&s).unwrap();
        let Json::Arr(items) = doc else { panic!() };
        for (item, want) in items.iter().zip(vals) {
            let Json::Num(got) = item else { panic!() };
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn decode_invoke_body_full() {
        let body =
            br#"{"symbols":{"N":8},"arrays":{"A":[1.0,2.5]},"timeout_ms":250,"outputs":["A"]}"#;
        let Ok((b, timeout, outputs)) = decode_invoke_body(body, 1 << 20) else {
            panic!("body should decode");
        };
        assert_eq!(b.array_names().collect::<Vec<_>>(), vec!["A"]);
        assert_eq!(timeout, Some(250));
        assert_eq!(outputs, Some(vec!["A".to_string()]));
    }

    #[test]
    fn decode_invoke_body_rejects_junk() {
        assert!(decode_invoke_body(b"{\"symbols\":{\"N\":1.5}}", 1 << 20).is_err());
        assert!(decode_invoke_body(b"not json", 1 << 20).is_err());
    }
}
