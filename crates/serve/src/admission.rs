//! Bounded admission for invoke requests: a global in-flight cap with a
//! small wait queue, plus per-tenant in-flight caps. Built on
//! `Mutex`+`Condvar` so shedding decisions are exact (no sampling, no
//! racy fast paths): a request either holds a [`Permit`] or it was
//! rejected with a typed [`Reject`].

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why admission refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The wait queue is at its configured depth → HTTP 429.
    QueueFull,
    /// The tenant is already at its in-flight cap → HTTP 429.
    TenantCap,
    /// The request's deadline expired while queued → HTTP 504.
    Timeout,
}

struct State {
    /// Requests currently holding a permit (executing).
    running: usize,
    /// Requests blocked in `admit` waiting for a permit.
    queued: usize,
    /// Per-tenant count of running + queued requests.
    per_tenant: HashMap<String, usize>,
}

/// The admission controller shared by all connection threads.
pub struct Admission {
    /// Maximum concurrently executing invokes.
    max_inflight: usize,
    /// Maximum invokes allowed to wait for a permit beyond the cap.
    queue_depth: usize,
    /// Maximum running + queued invokes per tenant.
    tenant_cap: usize,
    state: Mutex<State>,
    freed: Condvar,
}

impl Admission {
    /// Creates a controller. All limits are clamped to at least
    /// 1 in-flight (a server that can admit nothing is a misconfiguration,
    /// not a policy).
    pub fn new(max_inflight: usize, queue_depth: usize, tenant_cap: usize) -> Arc<Admission> {
        Arc::new(Admission {
            max_inflight: max_inflight.max(1),
            queue_depth,
            tenant_cap: tenant_cap.max(1),
            state: Mutex::new(State {
                running: 0,
                queued: 0,
                per_tenant: HashMap::new(),
            }),
            freed: Condvar::new(),
        })
    }

    /// Tries to admit one invoke for `tenant`, blocking until a permit
    /// frees up or `deadline` passes. Tenant counts include queued
    /// requests, so a single tenant cannot monopolize the wait queue.
    pub fn admit(self: &Arc<Admission>, tenant: &str, deadline: Instant) -> Result<Permit, Reject> {
        let mut st = self.state.lock().unwrap();
        let tenant_count = st.per_tenant.get(tenant).copied().unwrap_or(0);
        if tenant_count >= self.tenant_cap {
            return Err(Reject::TenantCap);
        }
        if st.running >= self.max_inflight {
            if st.queued >= self.queue_depth {
                return Err(Reject::QueueFull);
            }
            st.queued += 1;
            *st.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    st.queued -= 1;
                    Admission::drop_tenant(&mut st, tenant);
                    return Err(Reject::Timeout);
                }
                let (next, timed_out) = self.freed.wait_timeout(st, deadline - now).unwrap();
                st = next;
                if st.running < self.max_inflight {
                    st.queued -= 1;
                    st.running += 1;
                    return Ok(Permit {
                        admission: Arc::clone(self),
                        tenant: tenant.to_string(),
                    });
                }
                if timed_out.timed_out() && Instant::now() >= deadline {
                    st.queued -= 1;
                    Admission::drop_tenant(&mut st, tenant);
                    return Err(Reject::Timeout);
                }
            }
        }
        st.running += 1;
        *st.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(Permit {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    fn drop_tenant(st: &mut State, tenant: &str) {
        if let Some(n) = st.per_tenant.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                st.per_tenant.remove(tenant);
            }
        }
    }

    /// Running + queued invokes, for diagnostics.
    pub fn inflight(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.running + st.queued
    }
}

/// RAII admission permit: releasing it (on drop, including panics and
/// error paths) wakes one queued waiter, so a failed invoke can never
/// leak capacity.
pub struct Permit {
    admission: Arc<Admission>,
    tenant: String,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock().unwrap();
        st.running -= 1;
        Admission::drop_tenant(&mut st, &self.tenant);
        drop(st);
        self.admission.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn soon() -> Instant {
        Instant::now() + Duration::from_millis(50)
    }

    #[test]
    fn admits_up_to_cap_then_queue_fills() {
        let a = Admission::new(1, 0, 8);
        let p = a.admit("t", soon()).unwrap();
        assert!(matches!(a.admit("t2", soon()), Err(Reject::QueueFull)));
        drop(p);
        let _p2 = a.admit("t2", soon()).unwrap();
    }

    #[test]
    fn tenant_cap_counts_queued() {
        let a = Admission::new(1, 4, 1);
        let _p = a.admit("t", soon()).unwrap();
        // Same tenant again: at cap even though the queue has room.
        assert!(matches!(a.admit("t", soon()), Err(Reject::TenantCap)));
    }

    #[test]
    fn queued_waiter_times_out() {
        let a = Admission::new(1, 4, 8);
        let _p = a.admit("t", soon()).unwrap();
        let t0 = Instant::now();
        assert!(matches!(
            a.admit("t2", Instant::now() + Duration::from_millis(30)),
            Err(Reject::Timeout)
        ));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn permit_drop_wakes_waiter() {
        let a = Admission::new(1, 4, 8);
        let p = a.admit("t", soon()).unwrap();
        let a2 = Arc::clone(&a);
        let h = std::thread::spawn(move || {
            a2.admit("t2", Instant::now() + Duration::from_secs(5))
                .is_ok()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(p);
        assert!(h.join().unwrap());
        assert_eq!(a.inflight(), 0);
    }
}
