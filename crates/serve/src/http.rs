//! A minimal HTTP/1.1 layer over `std::net`: request parsing with hard
//! caps, response writing, keep-alive. No async runtime — the server is
//! thread-per-connection, which the workspace's std-only constraint (and
//! the engine's blocking invokes) make the honest choice.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus headers, to shed hostile input
/// before any allocation scales with it.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Headers, lowercase names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First header value by (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps to a 4xx and closes the
/// connection.
pub enum ParseError {
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// Malformed request line or headers.
    Bad(String),
    /// The declared body exceeds the configured limit (maps to 413).
    TooLarge { limit: usize, got: usize },
    /// Socket-level failure.
    Io(std::io::Error),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> ParseError {
        ParseError::Io(e)
    }
}

/// Reads one request off the connection. `max_body` caps the declared
/// `Content-Length`; anything bigger is rejected *before* reading the
/// body, so a hostile payload costs nothing but its headers.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ParseError> {
    let mut head = String::new();
    let n = reader.read_line(&mut head)?;
    if n == 0 {
        return Err(ParseError::Eof);
    }
    let line = head.trim_end();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("request line has no target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    let http11 = version == "HTTP/1.1";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut connection = String::new();
    let mut head_bytes = line.len();
    loop {
        let mut hl = String::new();
        let n = reader.read_line(&mut hl)?;
        if n == 0 {
            return Err(ParseError::Bad("connection closed mid-headers".into()));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Bad("headers exceed the 16 KiB cap".into()));
        }
        let hl = hl.trim_end();
        if hl.is_empty() {
            break;
        }
        let Some((k, v)) = hl.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header `{hl}`")));
        };
        let k = k.trim().to_ascii_lowercase();
        let v = v.trim().to_string();
        if k == "content-length" {
            content_length = v
                .parse()
                .map_err(|_| ParseError::Bad(format!("bad content-length `{v}`")))?;
        }
        if k == "connection" {
            connection = v.to_ascii_lowercase();
        }
        headers.push((k, v));
    }
    if content_length > max_body {
        return Err(ParseError::TooLarge {
            limit: max_body,
            got: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let keep_alive = match connection.as_str() {
        "close" => false,
        "keep-alive" => true,
        _ => http11, // HTTP/1.1 defaults to keep-alive
    };
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    })
}

/// One response, written in full (with `Content-Length`) so keep-alive
/// framing is always correct.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub extra: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra.push((name.to_string(), value));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes `resp` to the stream. `keep_alive` selects the `Connection`
/// header; the return value reports whether the connection may be reused.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<bool> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in &resp.extra {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()?;
    Ok(keep_alive)
}
