//! End-to-end test of the serving layer over a real TCP socket: two
//! tenants submit and invoke Polybench programs concurrently, sharing
//! one registry (and one plan cache); overflow is shed with 429; a
//! timed-out invoke comes back 504 without poisoning the registry; and
//! the `/metrics` endpoint passes the exposition validator.

use sdfg_core::sdfg::InterstateEdge;
use sdfg_core::serialize::{parse_json, to_json, Json};
use sdfg_core::Sdfg;
use sdfg_exec::{OptLevel, Session};
use sdfg_profile::metrics;
use sdfg_serve::{RegistryConfig, Server, ServerConfig};
use sdfg_workloads::polybench;
use sdfg_workloads::workload::Workload;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const SCALE: usize = 8;
const NTHREADS: usize = 2;

fn kernel(name: &str) -> Workload {
    let k = polybench::all()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unknown kernel `{name}`"));
    (k.build)(SCALE)
}

/// A program that spins through interstate transitions forever (the
/// bound is far beyond the transition limit), so only the wall-clock
/// deadline can stop it with a typed timeout.
fn spin_sdfg() -> Sdfg {
    let mut s = Sdfg::new("spin");
    s.add_symbol("t");
    s.add_symbol("T");
    let a = s.add_state("body");
    s.add_transition(a, a, InterstateEdge::when("t < T").assign("t", "t + 1"));
    s
}

// ---------------------------------------------------------------------------
// A tiny blocking HTTP client (connection: close per request).
// ---------------------------------------------------------------------------

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    stream.write_all(req.as_bytes()).expect("write request");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("status code");
    let (head, resp_body) = text.split_once("\r\n\r\n").expect("header/body split");
    (status, head.to_string(), resp_body.to_string())
}

/// Builds an invoke body from a workload's symbols and arrays. `f64`
/// values are written in Rust's shortest round-trip representation, so
/// the server sees bitwise-identical inputs to a direct session run.
fn invoke_body(symbols: &[(String, i64)], arrays: &HashMap<String, Vec<f64>>) -> String {
    let mut out = String::from("{\"symbols\":{");
    for (i, (name, v)) in symbols.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"arrays\":{");
    for (i, (name, data)) in arrays.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":["));
        for (j, x) in data.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{x}"));
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

fn submitted_hash(body: &str) -> String {
    let doc = parse_json(body).expect("submit response json");
    let Some(Json::Str(h)) = doc.get("program") else {
        panic!("no program handle in {body}");
    };
    h.clone()
}

fn output_arrays(body: &str) -> HashMap<String, Vec<f64>> {
    let doc = parse_json(body).expect("invoke response json");
    let Some(Json::Obj(outputs)) = doc.get("outputs") else {
        panic!("no outputs in {body}");
    };
    outputs
        .iter()
        .map(|(name, v)| {
            let Json::Arr(items) = v else {
                panic!("output `{name}` is not an array");
            };
            let data = items
                .iter()
                .map(|x| match x {
                    Json::Num(f) => *f,
                    other => panic!("output `{name}` holds {other:?}"),
                })
                .collect();
            (name.clone(), data)
        })
        .collect()
}

fn start_server(max_inflight: usize, queue_depth: usize, tenant_cap: usize) -> Server {
    Server::start(ServerConfig {
        port: 0,
        registry: RegistryConfig {
            opt: OptLevel::Aggressive,
            nthreads: NTHREADS,
            ..RegistryConfig::default()
        },
        max_inflight,
        queue_depth,
        tenant_cap,
        default_timeout_ms: 30_000,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn counter(name: &str) -> u64 {
    metrics::global().counter_value(name, &[]).unwrap_or(0)
}

/// The core multi-tenant flow: two tenants on concurrent threads submit
/// gemm and atax, the second identical submit is a registry hit, shared
/// plan-cache hits accumulate across tenants, and every invoke result is
/// bitwise identical to a direct `Session::run` at the same policy.
#[test]
fn two_tenants_share_one_registry_and_plan_cache() {
    let server = start_server(4, 16, 4);
    let addr = server.addr();

    let direct = |name: &str| -> HashMap<String, Vec<f64>> {
        let w = kernel(name);
        let session = Session::builder(w.sdfg.clone())
            .opt_level(OptLevel::Aggressive)
            .nthreads(NTHREADS)
            .build()
            .expect("direct session");
        let out = session.run(w.bindings()).expect("direct run");
        out.into_arrays()
    };

    let tenant_run = move |name: &'static str, api_key: &'static str| {
        let w = kernel(name);
        let program = to_json(&w.sdfg);
        let (status, _, body) = http(
            addr,
            "POST",
            "/v1/programs",
            &[("x-api-key", api_key)],
            program.as_bytes(),
        );
        assert!(
            status == 200 || status == 201,
            "{api_key} submit {name}: {status} {body}"
        );
        let handle = submitted_hash(&body);
        let invoke = invoke_body(&w.symbols, &w.arrays);
        let mut results = Vec::new();
        for _ in 0..3 {
            let (status, _, body) = http(
                addr,
                "POST",
                &format!("/v1/programs/{handle}/invoke"),
                &[("x-api-key", api_key)],
                invoke.as_bytes(),
            );
            assert_eq!(status, 200, "{api_key} invoke {name}: {body}");
            results.push(output_arrays(&body));
        }
        (handle, results, w.check.clone())
    };

    let plan_hits_before = counter("sdfg_plan_cache_hits_total");

    // Two tenants, two kernels, concurrently.
    let t1 = std::thread::spawn(move || tenant_run("gemm", "tenant-a"));
    let t2 = std::thread::spawn(move || tenant_run("atax", "tenant-b"));
    let (gemm_handle, gemm_results, gemm_check) = t1.join().expect("tenant-a");
    let (_, atax_results, atax_check) = t2.join().expect("tenant-b");

    // Every invoke result matches a direct Session::run bitwise.
    let want_gemm = direct("gemm");
    for got in &gemm_results {
        for name in &gemm_check {
            let (a, b) = (&got[name], &want_gemm[name]);
            assert_eq!(a.len(), b.len(), "gemm `{name}` length");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "gemm `{name}`[{i}]: served {x} vs direct {y}"
                );
            }
        }
    }
    let want_atax = direct("atax");
    for got in &atax_results {
        for name in &atax_check {
            let (a, b) = (&got[name], &want_atax[name]);
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "atax `{name}` diverges");
            }
        }
    }

    // Warm invokes on the shared cache produced plan-cache hits.
    let plan_hits_after = counter("sdfg_plan_cache_hits_total");
    assert!(
        plan_hits_after > plan_hits_before,
        "warm invokes must hit the shared plan cache ({plan_hits_before} -> {plan_hits_after})"
    );

    // Tenant B resubmitting tenant A's program byte-identically is a
    // registry hit: same handle, `existing: true`, HTTP 200 (not 201).
    let gemm_again = to_json(&kernel("gemm").sdfg);
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/programs",
        &[("x-api-key", "tenant-b")],
        gemm_again.as_bytes(),
    );
    assert_eq!(status, 200, "identical resubmit must be a hit: {body}");
    assert_eq!(submitted_hash(&body), gemm_handle);
    assert!(body.contains("\"existing\":true"), "{body}");

    // The listing shows both programs with their usage counters.
    let (status, _, body) = http(addr, "GET", "/v1/programs", &[], b"");
    assert_eq!(status, 200);
    assert!(body.contains(&gemm_handle), "{body}");
    assert!(body.contains("\"submit_hits\":1"), "{body}");

    // /metrics passes the exposition validator and carries serve metrics.
    let (status, _, text) = http(addr, "GET", "/metrics", &[], b"");
    assert_eq!(status, 200);
    let families = metrics::validate_exposition(&text).expect("valid exposition");
    assert!(
        families.iter().any(|f| f == "sdfg_serve_requests_total"),
        "serve families missing from exposition"
    );
    assert!(text.contains("sdfg_plan_cache_hits_total"));
}

/// Overflow and timeout behavior: with one execution slot and no queue,
/// a second invoke is shed with 429 + Retry-After while a slow program
/// holds the slot; the slow invoke itself dies at its deadline with 504;
/// and the registry keeps serving correct results afterwards.
#[test]
fn overflow_gets_429_and_timeout_gets_504_without_poisoning() {
    let server = start_server(1, 0, 4);
    let addr = server.addr();

    // Register the spinner and a real kernel.
    let spin = to_json(&spin_sdfg());
    let (status, _, body) = http(addr, "POST", "/v1/programs", &[], spin.as_bytes());
    assert_eq!(status, 201, "{body}");
    let spin_handle = submitted_hash(&body);

    let w = kernel("atax");
    let program = to_json(&w.sdfg);
    let (status, _, body) = http(addr, "POST", "/v1/programs", &[], program.as_bytes());
    assert_eq!(status, 201, "{body}");
    let atax_handle = submitted_hash(&body);
    let atax_invoke = invoke_body(&w.symbols, &w.arrays);

    // Occupy the only slot with the spinner under a 1.5 s deadline. The
    // loop bound is unreachable, so the deadline is the only way out.
    let spin_body =
        r#"{"symbols":{"t":0,"T":1099511627776},"timeout_ms":1500,"outputs":[]}"#.to_string();
    let slow = std::thread::spawn(move || {
        http(
            addr,
            "POST",
            &format!("/v1/programs/{spin_handle}/invoke"),
            &[("x-api-key", "tenant-slow")],
            spin_body.as_bytes(),
        )
    });

    // Give the slow invoke time to claim the slot, then overflow.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let (status, head, body) = http(
        addr,
        "POST",
        &format!("/v1/programs/{atax_handle}/invoke"),
        &[("x-api-key", "tenant-fast")],
        atax_invoke.as_bytes(),
    );
    assert_eq!(status, 429, "queue overflow must shed: {body}");
    assert!(
        head.to_ascii_lowercase().contains("retry-after"),
        "429 must carry Retry-After: {head}"
    );

    // The slow invoke must come back as a typed 504, not hang or 500.
    let (status, _, body) = slow.join().expect("slow thread");
    assert_eq!(status, 504, "deadline must produce 504: {body}");
    assert!(body.contains("SDFG-X004"), "{body}");

    // The shared registry is not poisoned: the same atax program still
    // executes and matches a direct session bitwise.
    let (status, _, body) = http(
        addr,
        "POST",
        &format!("/v1/programs/{atax_handle}/invoke"),
        &[("x-api-key", "tenant-fast")],
        atax_invoke.as_bytes(),
    );
    assert_eq!(status, 200, "registry poisoned after timeout: {body}");
    let got = output_arrays(&body);
    let session = Session::builder(w.sdfg.clone())
        .opt_level(OptLevel::Aggressive)
        .nthreads(NTHREADS)
        .build()
        .expect("direct session");
    let want = session.run(w.bindings()).expect("direct run").into_arrays();
    for name in &w.check {
        for (x, y) in got[name].iter().zip(&want[name]) {
            assert_eq!(x.to_bits(), y.to_bits(), "`{name}` diverges after 504");
        }
    }
}

/// Malformed and oversized submissions produce typed 4xx errors with
/// position info, and unknown handles 404.
#[test]
fn bad_requests_get_typed_errors() {
    let server = start_server(2, 4, 2);
    let addr = server.addr();

    // Malformed JSON: a 400 whose message carries the byte position.
    let (status, _, body) = http(addr, "POST", "/v1/programs", &[], b"{\"name\": nope}");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("SDFG-S002"), "{body}");
    assert!(body.contains("line 1"), "position info missing: {body}");

    // Unknown program handle.
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/programs/0123456789abcdef/invoke",
        &[],
        b"{}",
    );
    assert_eq!(status, 404, "{body}");

    // Unknown array binding on a real program: typed SDFG-X002.
    let w = kernel("atax");
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/programs",
        &[],
        to_json(&w.sdfg).as_bytes(),
    );
    assert!(status == 200 || status == 201, "{body}");
    let handle = submitted_hash(&body);
    let (status, _, body) = http(
        addr,
        "POST",
        &format!("/v1/programs/{handle}/invoke"),
        &[],
        br#"{"arrays":{"no_such_container":[1.0]}}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("SDFG-X002"), "{body}");

    // Health endpoint stays green through all of it.
    let (status, _, body) = http(addr, "GET", "/healthz", &[], b"");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
}
