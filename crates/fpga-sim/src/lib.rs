//! # sdfg-fpga-sim — the FPGA target model
//!
//! The paper's FPGA results (Xilinx VCU1525, SDAccel) hinge on *dataflow
//! architecture*: naive HLS emits sequential loops whose iterations take
//! the full operation-chain latency, while SDFG-generated designs pipeline
//! every innermost map (initiation interval 1), replicate processing
//! elements for unrolled maps, and stream data through FIFOs (Fig. 7).
//! That architectural gap — not device specifics — produces the orders-of-
//! magnitude differences in Figs. 13c/14c.
//!
//! This crate substitutes a **cycle model** on top of real execution
//! (results are computed by `sdfg-exec`, so correctness is always checked):
//!
//! * pipelined map (the SDFG default): `cycles ≈ pipeline_depth + II·iters
//!   / PEs`, with `PEs` > 1 for unrolled maps;
//! * naive-HLS mode ([`FpgaMode::NaiveHls`]): every iteration pays the full
//!   operation-chain latency (`ops × op_latency`), no overlap — the
//!   baseline the paper compares against;
//! * off-chip transfers: bytes / DDR bandwidth, counted from copy states;
//! * a toy resource model (PEs, FIFOs, pipeline registers) for the
//!   "placed-and-routed" flavor of the report.

use sdfg_core::desc::DataDesc;
use sdfg_core::scope::scope_tree;
use sdfg_core::{Node, Schedule, Sdfg, Storage};
use sdfg_exec::{Backend, ExecError, RunCtx, Runtime, RuntimeReport, ScopeStats};
use sdfg_lang::ast::{ExprAst, Stmt};
use sdfg_symbolic::Env;
use std::collections::HashMap;

/// Synthesis flavor for the cycle model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FpgaMode {
    /// SDFG dataflow design: pipelined loops (II=1), unrolled PE arrays,
    /// FIFO streams.
    Pipelined,
    /// Naive HLS baseline: sequential loops, no pipelining — each
    /// iteration takes the full operation-chain latency.
    NaiveHls,
}

/// A modeled FPGA board.
#[derive(Clone, Debug)]
pub struct BoardProfile {
    /// Name.
    pub name: &'static str,
    /// Fabric clock (Hz).
    pub clock_hz: f64,
    /// Off-chip DDR bandwidth (B/s).
    pub ddr_bandwidth: f64,
    /// Pipeline fill depth (cycles) per pipelined loop.
    pub pipeline_depth: u64,
    /// Latency per floating-point operation when unpipelined (cycles).
    pub op_latency: u64,
    /// Available "processing element" budget (toy resource bound).
    pub pe_budget: u64,
}

/// Xilinx VCU1525 (XCVU9P), the paper's board.
pub fn vcu1525() -> BoardProfile {
    BoardProfile {
        name: "VCU1525",
        clock_hz: 300e6,
        ddr_bandwidth: 4.0 * 19.2e9, // four DDR4-2400 banks
        pipeline_depth: 60,
        op_latency: 8,
        pe_budget: 1024,
    }
}

/// Report from a modeled FPGA run.
#[derive(Clone, Debug, Default)]
pub struct FpgaReport {
    /// Total modeled time (s).
    pub time_s: f64,
    /// Compute cycles.
    pub cycles: u64,
    /// Off-chip transfer time (s).
    pub transfer_time_s: f64,
    /// Off-chip bytes.
    pub transfer_bytes: f64,
    /// Processing elements instantiated (resource report).
    pub pes: u64,
    /// FIFO channels instantiated.
    pub fifos: u64,
}

/// The FPGA execution target behind the runtime's [`Backend`] trait:
/// states whose top-level scopes carry [`Schedule::FpgaDevice`] route
/// here. States execute for real on the host engine; the cycle model
/// prices each top-level map as a hardware module, and off-chip traffic
/// into `FpgaGlobal`/`FpgaLocal` storage is charged by the runtime at DDR
/// bandwidth.
pub struct FpgaSimBackend {
    board: BoardProfile,
    mode: FpgaMode,
}

impl FpgaSimBackend {
    /// A backend modeling `board` under the given synthesis flavor.
    pub fn new(board: BoardProfile, mode: FpgaMode) -> FpgaSimBackend {
        FpgaSimBackend { board, mode }
    }

    /// The modeled board.
    pub fn board(&self) -> &BoardProfile {
        &self.board
    }
}

impl Backend for FpgaSimBackend {
    fn name(&self) -> &'static str {
        "fpga-sim"
    }

    fn supports(&self, schedule: Schedule) -> bool {
        matches!(schedule, Schedule::FpgaDevice)
    }

    fn owns_storage(&self, storage: Storage) -> bool {
        matches!(storage, Storage::FpgaGlobal | Storage::FpgaLocal)
    }

    fn transfer_time(&self, bytes: f64) -> f64 {
        bytes / self.board.ddr_bandwidth
    }

    fn run_scope(
        &self,
        rcx: &RunCtx<'_, '_>,
        sid: sdfg_core::StateId,
    ) -> Result<ScopeStats, ExecError> {
        rcx.run_functional(sid)?;
        let (cycles, local_bytes, pes, modules) =
            model_state(rcx.sdfg(), sid, &self.board, self.mode, rcx.env())?;
        Ok(ScopeStats {
            scopes: modules,
            compute_s: cycles as f64 / self.board.clock_hz,
            copy_s: local_bytes / self.board.ddr_bandwidth,
            bytes: local_bytes,
            cycles,
            pes,
            ..ScopeStats::default()
        })
    }
}

impl FpgaReport {
    /// Folds a heterogeneous-runtime report into the FPGA view (`fifos`
    /// counts the SDFG's stream containers, supplied by the caller).
    pub fn from_runtime(rep: &RuntimeReport, fifos: u64) -> FpgaReport {
        let Some(f) = rep.backend("fpga-sim") else {
            return FpgaReport {
                fifos,
                ..FpgaReport::default()
            };
        };
        let transfer_bytes = f.xfer.total() as f64 + f.scope.bytes;
        let transfer_time_s = f.transfer_s + f.scope.copy_s;
        FpgaReport {
            time_s: f.scope.compute_s + transfer_time_s,
            cycles: f.scope.cycles,
            transfer_time_s,
            transfer_bytes,
            pes: f.scope.pes,
            fifos,
        }
    }
}

/// Runs an SDFG through the heterogeneous runtime with an
/// [`FpgaSimBackend`] and folds the per-backend report into an
/// [`FpgaReport`]. Results are bit-exact; only timing is modeled.
pub fn run_fpga(
    sdfg: &Sdfg,
    board: &BoardProfile,
    mode: FpgaMode,
    symbols: &[(&str, i64)],
    arrays: &mut HashMap<String, Vec<f64>>,
) -> Result<FpgaReport, ExecError> {
    let mut rt =
        Runtime::new(sdfg).with_backend(Box::new(FpgaSimBackend::new(board.clone(), mode)));
    for (s, v) in symbols {
        rt.executor().set_symbol(s, *v);
    }
    for (n, d) in arrays.iter() {
        rt.executor().set_array(n, d.clone());
    }
    let rep = rt.run()?;
    for (n, d) in rt.executor().arrays.iter() {
        arrays.insert(n.clone(), d.clone());
    }
    let fifos = sdfg
        .data
        .values()
        .filter(|d| matches!(d, DataDesc::Stream(_)))
        .count() as u64;
    Ok(FpgaReport::from_runtime(&rep, fifos))
}

/// Models one state: returns (cycles, device-local copy bytes, PE
/// high-water, module count). Host↔device transfers are accounted by the
/// runtime at schedule boundaries, not here.
fn model_state(
    sdfg: &Sdfg,
    sid: sdfg_core::StateId,
    board: &BoardProfile,
    mode: FpgaMode,
    env: &Env,
) -> Result<(u64, f64, u64, u64), ExecError> {
    let st = sdfg.state(sid);
    let tree = scope_tree(st).map_err(|e| ExecError::BadGraph(e.to_string()))?;
    let mut cycles = 0u64;
    let mut bytes = 0.0f64;
    let mut pes = 0u64;
    let mut modules = 0u64;
    for n in st.graph.node_ids() {
        if tree.scope_of(n).is_some() {
            continue;
        }
        match st.graph.node(n) {
            Node::Access { data } => {
                // Device-local copies stream through the DDR banks.
                for e in st.graph.out_edges(n) {
                    let dst = st.graph.edge_dst(e);
                    let Node::Access { data: dd } = st.graph.node(dst) else {
                        continue;
                    };
                    let m = &st.graph.edge(e).memlet;
                    if m.is_empty() {
                        continue;
                    }
                    let dev = |name: &str| {
                        sdfg.desc(name)
                            .map(|d| d.storage().is_device())
                            .unwrap_or(false)
                    };
                    if !(dev(data) && dev(dd)) {
                        continue;
                    }
                    let elems = m.subset.eval_volume(env).unwrap_or(0) as f64;
                    let eb = sdfg
                        .desc(m.data_name())
                        .map(|d| d.dtype().size_bytes() as f64)
                        .unwrap_or(8.0);
                    bytes += elems * eb;
                }
            }
            Node::MapEntry(scope)
                if matches!(
                    scope.schedule,
                    Schedule::FpgaDevice | Schedule::CpuMulticore
                ) =>
            {
                modules += 1;
                let (c, p) = model_module(sdfg, sid, n, board, mode, env)?;
                // Separate connected components run concurrently
                // (DATAFLOW); serialize conservatively within a state
                // unless streams connect them — approximate with max for
                // stream-coupled graphs, sum otherwise.
                cycles += c;
                pes = pes.max(p);
            }
            _ => {}
        }
    }
    Ok((cycles, bytes, pes, modules))
}

/// Models one top-level map as a hardware module.
fn model_module(
    sdfg: &Sdfg,
    sid: sdfg_core::StateId,
    entry: sdfg_graph::NodeId,
    board: &BoardProfile,
    mode: FpgaMode,
    env: &Env,
) -> Result<(u64, u64), ExecError> {
    let st = sdfg.state(sid);
    let Node::MapEntry(scope) = st.graph.node(entry) else {
        unreachable!()
    };
    let iters = scope.num_iterations().eval(env).unwrap_or(0).max(0) as u64;
    // PE replication: unrolled maps instantiate one PE per iteration of the
    // unrolled dimensions (bounded by the budget).
    let pes = if scope.unroll {
        iters.clamp(1, board.pe_budget)
    } else {
        1
    };
    // Vector width behaves as PE-level SIMD.
    let simd = scope.vector_len.unwrap_or(1) as u64;
    // Operation chain length of the body.
    let mut ops = 0u64;
    let mut inner_iters = 1u64;
    for c in sdfg_core::scope::scope_members(st, entry) {
        match st.graph.node(c) {
            Node::Tasklet { code, .. } => {
                if let Ok(body) = sdfg_lang::parse_tasklet(code) {
                    ops += body.iter().map(ops_of_stmt).sum::<u64>();
                }
            }
            Node::MapEntry(inner) => {
                inner_iters = inner_iters
                    .saturating_mul(inner.num_iterations().eval(env).unwrap_or(1).max(1) as u64);
            }
            _ => {}
        }
    }
    let ops = ops.max(1);
    let total_iters = iters.saturating_mul(inner_iters).max(1);
    let cycles = match mode {
        FpgaMode::Pipelined => {
            // II = 1 per PE; SIMD lanes retire multiple elements per cycle.
            board.pipeline_depth + total_iters / (pes * simd).max(1)
        }
        FpgaMode::NaiveHls => {
            // Sequential: every iteration pays the full chain latency, and
            // off-chip accesses are not burst-coalesced (extra factor folded
            // into op latency).
            total_iters.saturating_mul(ops * board.op_latency)
        }
    };
    Ok((cycles, pes))
}

fn ops_of_stmt(s: &Stmt) -> u64 {
    match s {
        Stmt::Assign { value, .. } | Stmt::Push { value, .. } => ops_of_expr(value),
        Stmt::If { cond, then, els } => {
            ops_of_expr(cond)
                + then.iter().map(ops_of_stmt).sum::<u64>()
                + els.iter().map(ops_of_stmt).sum::<u64>()
        }
    }
}

fn ops_of_expr(e: &ExprAst) -> u64 {
    match e {
        ExprAst::Num(_) | ExprAst::Name(_) => 0,
        ExprAst::Index(_, idx) => idx.iter().map(ops_of_expr).sum(),
        ExprAst::Bin(_, a, b) | ExprAst::Cmp(_, a, b) | ExprAst::And(a, b) | ExprAst::Or(a, b) => {
            1 + ops_of_expr(a) + ops_of_expr(b)
        }
        ExprAst::Neg(a) | ExprAst::Not(a) => 1 + ops_of_expr(a),
        ExprAst::Call(_, args) => 1 + args.iter().map(ops_of_expr).sum::<u64>(),
        ExprAst::Ternary { cond, then, els } => {
            ops_of_expr(cond) + 1 + ops_of_expr(then).max(ops_of_expr(els))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfg_core::DType;
    use sdfg_frontend::SdfgBuilder;
    use sdfg_transforms::{apply_first, FpgaTransform, Params};

    fn axpy_fpga(n: i64) -> (Sdfg, HashMap<String, Vec<f64>>) {
        let mut b = SdfgBuilder::new("axpy");
        b.symbol("N");
        b.array("X", &["N"], DType::F64);
        b.array("Y", &["N"], DType::F64);
        let st = b.state("main");
        b.mapped_tasklet(
            st,
            "ax",
            &[("i", "0:N")],
            &[("x", "X", "i"), ("y", "Y", "i")],
            "o = 3 * x + y",
            &[("o", "Y", "i")],
        );
        let mut sdfg = b.build().unwrap();
        apply_first(&mut sdfg, &FpgaTransform, &Params::new()).unwrap();
        let mut arrays = HashMap::new();
        arrays.insert("X".to_string(), (0..n).map(|x| x as f64).collect());
        arrays.insert("Y".to_string(), vec![1.0; n as usize]);
        (sdfg, arrays)
    }

    #[test]
    fn functional_and_timed() {
        let (sdfg, mut arrays) = axpy_fpga(1000);
        let rep = run_fpga(
            &sdfg,
            &vcu1525(),
            FpgaMode::Pipelined,
            &[("N", 1000)],
            &mut arrays,
        )
        .unwrap();
        for (i, v) in arrays["Y"].iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f64 + 1.0);
        }
        assert!(rep.cycles >= 1000, "at least one cycle per element");
        assert!(rep.transfer_bytes > 0.0);
    }

    #[test]
    fn pipelining_beats_naive_hls_by_orders_of_magnitude() {
        let n = 1 << 16;
        let (sdfg, arrays) = axpy_fpga(n);
        let rp = run_fpga(
            &sdfg,
            &vcu1525(),
            FpgaMode::Pipelined,
            &[("N", n)],
            &mut arrays.clone(),
        )
        .unwrap();
        let rn = run_fpga(
            &sdfg,
            &vcu1525(),
            FpgaMode::NaiveHls,
            &[("N", n)],
            &mut arrays.clone(),
        )
        .unwrap();
        let speedup = rn.cycles as f64 / rp.cycles as f64;
        assert!(
            speedup > 10.0,
            "pipelined must be ≫ naive; got {speedup:.1}×"
        );
    }

    #[test]
    fn unrolled_pe_array_scales() {
        // Same kernel with an unrolled (systolic-style) map.
        let (mut sdfg, arrays) = axpy_fpga(1 << 14);
        // Mark the device map unrolled.
        for sid in sdfg.state_ids() {
            let st = sdfg.state_mut(sid);
            let entries: Vec<_> = st
                .graph
                .node_ids()
                .filter(|&n| matches!(st.graph.node(n), Node::MapEntry(_)))
                .collect();
            for e in entries {
                if let Node::MapEntry(m) = st.graph.node_mut(e) {
                    m.unroll = true;
                }
            }
        }
        let runr = run_fpga(
            &sdfg,
            &vcu1525(),
            FpgaMode::Pipelined,
            &[("N", 1 << 14)],
            &mut arrays.clone(),
        )
        .unwrap();
        assert!(runr.pes > 1, "PE array instantiated");
    }
}
