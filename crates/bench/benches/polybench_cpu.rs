//! Criterion benches over the Polybench suite (paper Fig. 13a): SDFG
//! executor vs the naive sequential reference, one group per kernel.
//!
//! The full 30-kernel sweep lives in the `harness fig13a` binary; here a
//! representative cross-section keeps `cargo bench` wall time sane while
//! still tracking every dataflow class (flat maps, triangular maps,
//! WCR reductions, state-machine loops, sequential scans, DP).

use criterion::{criterion_group, criterion_main, Criterion};
use sdfg_workloads::polybench;

const KERNELS: &[(&str, usize)] = &[
    ("gemm", 40),
    ("atax", 48),
    ("bicg", 48),
    ("syrk", 32),
    ("jacobi-2d", 48),
    ("fdtd-2d", 40),
    ("lu", 28),
    ("trisolv", 48),
    ("floyd-warshall", 32),
    ("nussinov", 28),
    ("covariance", 32),
    ("deriche", 32),
];

fn bench_polybench(c: &mut Criterion) {
    for &(name, scale) in KERNELS {
        let k = polybench::by_name(name).expect("kernel exists");
        let w = (k.build)(scale);
        let mut g = c.benchmark_group(format!("fig13a/{name}"));
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(500));
        g.measurement_time(std::time::Duration::from_millis(1500));
        g.bench_function("naive", |bch| bch.iter(|| (k.reference)(&w)));
        g.bench_function("sdfg", |bch| bch.iter(|| w.run_exec().unwrap()));
        g.finish();
    }
}

criterion_group!(benches, bench_polybench);
criterion_main!(benches);
