//! Criterion benches for the accelerator models (papers Figs. 13b/13c,
//! 14b/14c, Table 3): modeled GPU and FPGA runs of representative kernels
//! — these time the *simulator* (functional execution + analytic model),
//! tracking regressions in the modeling pipeline itself.

use criterion::{criterion_group, criterion_main, Criterion};
use sdfg_fpga_sim::{run_fpga, vcu1525, FpgaMode};
use sdfg_gpu_sim::{p100, run_gpu};
use sdfg_transforms::{apply_first, FpgaTransform, GpuTransform, Params};
use sdfg_workloads::kernels;

fn bench_gpu_model(c: &mut Criterion) {
    let w = kernels::mm(64);
    let mut sdfg = w.sdfg.clone();
    apply_first(&mut sdfg, &GpuTransform, &Params::new()).unwrap();
    let syms: Vec<(&str, i64)> = w.symbols.iter().map(|(s, v)| (s.as_str(), *v)).collect();
    let mut grp = c.benchmark_group("accel/gpu_model");
    grp.sample_size(10);
    grp.warm_up_time(std::time::Duration::from_millis(500));
    grp.measurement_time(std::time::Duration::from_millis(1500));
    grp.bench_function("mm64_p100", |b| {
        b.iter(|| {
            let mut arrays = w.arrays.clone();
            run_gpu(&sdfg, &p100(), &syms, &mut arrays).unwrap()
        })
    });
    grp.finish();
}

fn bench_fpga_model(c: &mut Criterion) {
    let w = kernels::jacobi2d(64, 4);
    let mut sdfg = w.sdfg.clone();
    apply_first(&mut sdfg, &FpgaTransform, &Params::new()).unwrap();
    let syms: Vec<(&str, i64)> = w.symbols.iter().map(|(s, v)| (s.as_str(), *v)).collect();
    let mut grp = c.benchmark_group("accel/fpga_model");
    grp.sample_size(10);
    grp.warm_up_time(std::time::Duration::from_millis(500));
    grp.measurement_time(std::time::Duration::from_millis(1500));
    for mode in [FpgaMode::Pipelined, FpgaMode::NaiveHls] {
        grp.bench_function(format!("jacobi64_{mode:?}"), |b| {
            b.iter(|| {
                let mut arrays = w.arrays.clone();
                run_fpga(&sdfg, &vcu1525(), mode, &syms, &mut arrays).unwrap()
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_gpu_model, bench_fpga_model);
criterion_main!(benches);
