//! Criterion benches for the OMEN SSE case study (paper Table 2): the
//! three implementation styles on identical inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use sdfg_workloads::sse;

fn bench_sse(c: &mut Criterion) {
    let d = sse::SseDims::small(2);
    let (dh, g, dd) = sse::inputs(&d);
    let w = sse::build_sse_sdfg(&d);
    let mut grp = c.benchmark_group("tab2/sse");
    grp.sample_size(10);
    grp.warm_up_time(std::time::Duration::from_millis(500));
    grp.measurement_time(std::time::Duration::from_millis(1500));
    grp.bench_function("omen_style", |b| {
        b.iter(|| sse::omen_style(&d, &dh, &g, &dd))
    });
    grp.bench_function("numpy_style", |b| {
        b.iter(|| sse::numpy_style(&d, &dh, &g, &dd))
    });
    grp.bench_function("dace_sdfg", |b| b.iter(|| w.run_exec().unwrap()));
    grp.finish();
}

criterion_group!(benches, bench_sse);
criterion_main!(benches);
