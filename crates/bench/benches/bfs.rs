//! Criterion benches for BFS (paper Fig. 17): SDFG base, SDFG after the
//! §6.3 transformation chain, and the tuned native baseline, across the
//! five dataset regimes.

use criterion::{criterion_group, criterion_main, Criterion};
use sdfg_workloads::{bfs, graphs};

fn bench_bfs(c: &mut Criterion) {
    let base = bfs::build_bfs();
    let opt = bfs::build_bfs_optimized(64);
    for (name, g) in graphs::paper_datasets(1) {
        let mut grp = c.benchmark_group(format!("fig17/{name}"));
        grp.sample_size(10);
        grp.warm_up_time(std::time::Duration::from_millis(500));
        grp.measurement_time(std::time::Duration::from_millis(1500));
        grp.bench_function("sdfg", |b| b.iter(|| bfs::run_bfs(&base, &g, 0)));
        grp.bench_function("sdfg_opt", |b| b.iter(|| bfs::run_bfs(&opt, &g, 0)));
        grp.bench_function("native", |b| b.iter(|| bfs::bfs_baseline(&g, 0)));
        grp.finish();
    }
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
