//! Criterion benches for the Fig. 15 GEMM transformation chain: every
//! chain prefix, plus the naive/tuned baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use sdfg_workloads::{mm_chain, tuned, workload::pseudo_random};

fn bench_chain(c: &mut Criterion) {
    let n = 96usize;
    let mut g = c.benchmark_group("fig15/gemm_chain");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    for step in 0..mm_chain::num_steps() {
        let name = mm_chain::chain_steps()[step].0;
        let w = mm_chain::build_step(step, n);
        g.bench_function(name, |bch| bch.iter(|| w.run_exec().unwrap()));
    }
    let a = pseudo_random(n * n, 1);
    let b = pseudo_random(n * n, 2);
    g.bench_function("baseline_naive", |bch| {
        bch.iter(|| {
            let mut cc = vec![0.0; n * n];
            tuned::gemm_naive(&a, &b, &mut cc, n, n, n);
            cc
        })
    });
    g.bench_function("baseline_tuned", |bch| {
        bch.iter(|| {
            let mut cc = vec![0.0; n * n];
            tuned::gemm_tuned(&a, &b, &mut cc, n, n, n);
            cc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
