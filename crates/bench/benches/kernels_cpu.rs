//! Criterion benches for the fundamental kernels (paper Fig. 14a):
//! naive Rust vs SDFG executor vs tuned-library proxy.

use criterion::{criterion_group, criterion_main, Criterion};
use sdfg_workloads::{kernels, tuned};

fn bench_mm(c: &mut Criterion) {
    let n = 96usize;
    let w = kernels::mm(n);
    let (a, b) = (w.arrays["A"].clone(), w.arrays["B"].clone());
    let mut g = c.benchmark_group("fig14a/mm");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; n * n];
            tuned::gemm_naive(&a, &b, &mut out, n, n, n);
            out
        })
    });
    g.bench_function("sdfg", |bch| bch.iter(|| w.run_exec().unwrap()));
    g.bench_function("tuned", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; n * n];
            tuned::gemm_tuned(&a, &b, &mut out, n, n, n);
            out
        })
    });
    g.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let (n, t) = (128usize, 8usize);
    let w = kernels::jacobi2d(n, t);
    let init = w.arrays["A"][..n * n].to_vec();
    let mut g = c.benchmark_group("fig14a/jacobi");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            let mut a = init.clone();
            let mut b = vec![0.0; n * n];
            tuned::jacobi2d_naive(&mut a, &mut b, n, t);
            a
        })
    });
    g.bench_function("sdfg", |bch| bch.iter(|| w.run_exec().unwrap()));
    g.bench_function("tuned", |bch| {
        bch.iter(|| {
            let mut a = init.clone();
            let mut b = vec![0.0; n * n];
            tuned::jacobi2d_tuned(&mut a, &mut b, n, t);
            a
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let n = 256usize;
    let w = kernels::histogram(n);
    let img = w.arrays["img"].clone();
    let mut g = c.benchmark_group("fig14a/histogram");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            let mut h = vec![0.0; 16];
            tuned::histogram_naive(&img, &mut h, 16);
            h
        })
    });
    g.bench_function("sdfg", |bch| bch.iter(|| w.run_exec().unwrap()));
    g.bench_function("tuned", |bch| {
        bch.iter(|| {
            let mut h = vec![0.0; 16];
            tuned::histogram_tuned(&img, &mut h, 16);
            h
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let n = 1usize << 17;
    let w = kernels::query(n);
    let col = w.arrays["col"].clone();
    let mut g = c.benchmark_group("fig14a/query");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; col.len()];
            tuned::query_naive(&col, &mut out, 0.0)
        })
    });
    g.bench_function("sdfg", |bch| bch.iter(|| w.run_exec().unwrap()));
    g.bench_function("tuned", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; col.len()];
            tuned::query_tuned(&col, &mut out, 0.0)
        })
    });
    g.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let (rows, per) = (2048usize, 16usize);
    let w = kernels::spmv(rows, per);
    let (rp, ci, v, x) = (
        w.arrays["A_row"].clone(),
        w.arrays["A_col"].clone(),
        w.arrays["A_val"].clone(),
        w.arrays["x"].clone(),
    );
    let mut g = c.benchmark_group("fig14a/spmv");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.bench_function("naive", |bch| {
        bch.iter(|| {
            let mut y = vec![0.0; rows];
            tuned::spmv_naive(&rp, &ci, &v, &x, &mut y);
            y
        })
    });
    g.bench_function("sdfg", |bch| bch.iter(|| w.run_exec().unwrap()));
    g.bench_function("tuned", |bch| {
        bch.iter(|| {
            let mut y = vec![0.0; rows];
            tuned::spmv_tuned(&rp, &ci, &v, &x, &mut y);
            y
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mm,
    bench_jacobi,
    bench_histogram,
    bench_query,
    bench_spmv
);
criterion_main!(benches);
