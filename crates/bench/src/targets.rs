//! The `--target` axis: routing kernels through the heterogeneous
//! runtime.
//!
//! `harness <kernels...> --target gpu|fpga|hetero` lowers each kernel
//! with the device transform the target implies, runs it through
//! [`sdfg_exec::Runtime`] with the matching simulator backends
//! registered, and writes one `BENCH_<kernel>.json` with per-backend
//! statistics (state visits, modeled compute/copy time, host↔device
//! transfer bytes).
//!
//! Verification is two-sided: the targeted run must match the plain CPU
//! executor on the untransformed SDFG **bit-for-bit** (device dispatch,
//! transforms, and transfer staging must not change a single ulp), and
//! must match the reference interpreter within a `1e-9` relative
//! tolerance (the two engines legitimately differ in float accumulation
//! order on a few kernels, so bitwise equality across engines is not
//! required).

use sdfg_core::Sdfg;
use sdfg_exec::{Runtime, RuntimeReport};
use sdfg_fpga_sim::{vcu1525, FpgaMode, FpgaSimBackend};
use sdfg_gpu_sim::{p100, GpuSimBackend};
use sdfg_transforms::{apply_first, FpgaTransform, GpuTransform, Params};
use sdfg_workloads::polybench;
use sdfg_workloads::workload::Workload;

/// Where `--target` sends a kernel's device-scheduled scopes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// CPU only — the plain executor path (no transform, no device
    /// backends).
    Cpu,
    /// GPU model: `GpuTransform` + the roofline simulator backend.
    Gpu,
    /// FPGA model: `FpgaTransform` + the pipelined cycle-model backend.
    Fpga,
    /// All backends registered; no transform is applied, so each state
    /// runs wherever its existing schedules point.
    Hetero,
}

impl Target {
    /// Parses a `--target` value.
    pub fn parse(s: &str) -> Option<Target> {
        match s {
            "cpu" => Some(Target::Cpu),
            "gpu" => Some(Target::Gpu),
            "fpga" => Some(Target::Fpga),
            "hetero" => Some(Target::Hetero),
            _ => None,
        }
    }

    /// The `--target` spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Target::Cpu => "cpu",
            Target::Gpu => "gpu",
            Target::Fpga => "fpga",
            Target::Hetero => "hetero",
        }
    }
}

/// Lowers `sdfg` for the target: applies the device transform the target
/// implies. A kernel the transform does not match is returned unchanged
/// and will run on the CPU fallback backend.
pub fn lower_for(sdfg: &Sdfg, target: Target) -> Sdfg {
    let mut s = sdfg.clone();
    match target {
        Target::Cpu | Target::Hetero => {}
        Target::Gpu => {
            let _ = apply_first(&mut s, &GpuTransform, &Params::new());
        }
        Target::Fpga => {
            let _ = apply_first(&mut s, &FpgaTransform, &Params::new());
        }
    }
    s
}

/// Builds a runtime over `sdfg` with the backends this target needs.
/// The CPU backend is always registered (index 0) as the fallback for
/// host-scheduled states.
pub fn runtime_for(sdfg: &Sdfg, target: Target) -> Runtime<'_> {
    let rt = Runtime::new(sdfg);
    match target {
        Target::Cpu => rt,
        Target::Gpu => rt.with_backend(Box::new(GpuSimBackend::new(p100()))),
        Target::Fpga => rt.with_backend(Box::new(FpgaSimBackend::new(
            vcu1525(),
            FpgaMode::Pipelined,
        ))),
        Target::Hetero => rt
            .with_backend(Box::new(GpuSimBackend::new(p100())))
            .with_backend(Box::new(FpgaSimBackend::new(
                vcu1525(),
                FpgaMode::Pipelined,
            ))),
    }
}

/// One targeted, verified run.
pub struct TargetRun {
    /// The target that was requested.
    pub target: Target,
    /// The runtime's per-backend report.
    pub report: RuntimeReport,
    /// `check` arrays whose bits differ from the plain CPU executor on
    /// the untransformed SDFG (0 = pass).
    pub bitwise_mismatches: usize,
    /// `check` arrays outside the `1e-9` relative tolerance against the
    /// reference interpreter (0 = pass).
    pub interp_mismatches: usize,
}

impl TargetRun {
    /// Bitwise-identical to the CPU executor and within tolerance of the
    /// interpreter.
    pub fn verified(&self) -> bool {
        self.bitwise_mismatches == 0 && self.interp_mismatches == 0
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn allclose(a: &[f64], b: &[f64], rel: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= rel * (1.0 + y.abs()))
}

/// Runs one workload under `target` and verifies every `check` array
/// bit-for-bit against the plain CPU executor on the untransformed SDFG
/// and within `1e-9` relative tolerance against the interpreter.
pub fn run_workload_targeted(w: &Workload, target: Target) -> Result<TargetRun, String> {
    let interp = w.run_interp().map_err(|e| format!("interpreter: {e}"))?;
    let (cpu, _, _) = w.run_exec().map_err(|e| format!("cpu executor: {e}"))?;
    let lowered = lower_for(&w.sdfg, target);
    let mut rt = runtime_for(&lowered, target);
    for (s, v) in &w.symbols {
        rt.executor().set_symbol(s, *v);
    }
    for (n, d) in &w.arrays {
        rt.executor().set_array(n, d.clone());
    }
    let report = rt.run().map_err(|e| format!("runtime: {e}"))?;
    let mut bitwise_mismatches = 0;
    let mut interp_mismatches = 0;
    for name in &w.check {
        let got = rt
            .executor()
            .try_array(name)
            .ok_or_else(|| format!("output `{name}` missing after run"))?;
        let base = cpu
            .get(name)
            .ok_or_else(|| format!("cpu executor produced no `{name}`"))?;
        let want = interp
            .get(name)
            .ok_or_else(|| format!("interpreter produced no `{name}`"))?;
        if !bits_equal(got, base) {
            bitwise_mismatches += 1;
        }
        if !allclose(got, want, 1e-9) {
            interp_mismatches += 1;
        }
    }
    Ok(TargetRun {
        target,
        report,
        bitwise_mismatches,
        interp_mismatches,
    })
}

/// The JSON fragment (no surrounding braces) with the target fields of a
/// `BENCH_<kernel>.json`: the target, the verification verdict, and one
/// entry per backend that saw at least one state.
pub fn target_json_fields(run: &TargetRun) -> String {
    let mut out = format!(
        "\"target\": \"{}\",\n  \"target_verified\": {},\n  \"wall_ms\": {:.6},\n  \
         \"backends\": [",
        run.target.as_str(),
        run.verified(),
        run.report.wall_s * 1e3,
    );
    let active: Vec<_> = run
        .report
        .backends
        .iter()
        .filter(|b| b.state_visits > 0)
        .collect();
    for (i, b) in active.iter().enumerate() {
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"state_visits\": {}, \"scopes\": {}, \
             \"compute_ms\": {:.6}, \"copy_ms\": {:.6}, \"transfer_ms\": {:.6}, \
             \"h2d_bytes\": {}, \"d2h_bytes\": {}, \"modeled_flops\": {:.1}, \
             \"cycles\": {}, \"pes\": {}}}{}",
            b.name,
            b.state_visits,
            b.scope.scopes,
            b.scope.compute_s * 1e3,
            b.scope.copy_s * 1e3,
            b.transfer_s * 1e3,
            b.xfer.h2d_bytes,
            b.xfer.d2h_bytes,
            b.scope.flops,
            b.scope.cycles,
            b.scope.pes,
            if i + 1 < active.len() { "," } else { "" }
        ));
    }
    out.push_str("\n  ]");
    out
}

/// The `harness <kernels...> --target T` mode: run each kernel through
/// the heterogeneous runtime, print a per-backend table, write one
/// `BENCH_<kernel>.json` per kernel, and exit non-zero if any kernel's
/// outputs diverge from the interpreter.
pub fn targeted(only: &[String], scale: usize, target: Target, json: bool) {
    println!("# Targeted run (scale {scale}, target {})", target.as_str());
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>12} {:<8} backends",
        "kernel", "verified", "modeled[ms]", "h2d[B]", "d2h[B]", ""
    );
    let mut matched = false;
    let mut failed = false;
    // `bfs` is not a Polybench kernel but the scheduler smoke job wants a
    // data-driven, stream-and-WCR workload in the mix: run the Fig. 16
    // SDFG on a road graph and verify against the native level-sync
    // baseline. Exact equality is required — depths are small integers,
    // so any scheduling bug shows up bitwise.
    if only.iter().any(|n| n == "bfs") {
        matched = true;
        let g = sdfg_workloads::graphs::road(16, 12, 3);
        let sdfg = sdfg_workloads::bfs::build_bfs();
        let got = sdfg_workloads::bfs::run_bfs(&sdfg, &g, 0);
        let want = sdfg_workloads::bfs::bfs_baseline(&g, 0);
        let ok = got == want;
        if !ok {
            failed = true;
        }
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>12} {:<8} cpu(baseline-checked)",
            "bfs",
            if ok { "yes" } else { "NO" },
            "-",
            "-",
            "-",
            ""
        );
    }
    for k in polybench::all() {
        if !only.is_empty() && !only.iter().any(|n| n == k.name) {
            continue;
        }
        matched = true;
        let w = (k.build)(scale);
        match run_workload_targeted(&w, target) {
            Ok(run) => {
                if !run.verified() {
                    failed = true;
                }
                let (h2d, d2h): (u64, u64) =
                    run.report.backends.iter().fold((0, 0), |(h, d), b| {
                        (h + b.xfer.h2d_bytes, d + b.xfer.d2h_bytes)
                    });
                let names: Vec<String> = run
                    .report
                    .backends
                    .iter()
                    .filter(|b| b.state_visits > 0)
                    .map(|b| format!("{}({})", b.name, b.state_visits))
                    .collect();
                println!(
                    "{:<16} {:>9} {:>12.4} {:>12} {:>12} {:<8} {}",
                    k.name,
                    if run.verified() { "yes" } else { "NO" },
                    run.report.modeled_time_s() * 1e3,
                    h2d,
                    d2h,
                    "",
                    names.join(" ")
                );
                if json {
                    let path = format!("BENCH_{}.json", k.name);
                    let body = format!(
                        "{{\n  \"kernel\": \"{}\",\n  \"scale\": {},\n  {}\n}}\n",
                        k.name,
                        scale,
                        target_json_fields(&run)
                    );
                    std::fs::write(&path, body).expect("write bench json");
                    eprintln!("  wrote {path}");
                }
            }
            Err(e) => {
                failed = true;
                println!("{:<16} error: {e}", k.name);
            }
        }
    }
    if !matched {
        let names: Vec<&str> = polybench::all().iter().map(|k| k.name).collect();
        eprintln!("no kernel matched; known kernels: {}", names.join(", "));
        std::process::exit(2);
    }
    if failed {
        std::process::exit(1);
    }
}
