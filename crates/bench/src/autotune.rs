//! The `harness --autotune` mode: measurement-driven configuration search
//! with a persistent per-kernel tuning database.
//!
//! For each kernel the driver runs a coordinate-descent search over the
//! knob stages of [`sdfg_transforms::autotune::default_stages`] — serial
//! threshold, fusion, vectorization width, forced tile sizes, scheduler
//! grain — using the bench harness's warm-median protocol as the
//! objective (same warmup, same session-reuse discipline, same
//! batch-minimum/median estimator as `--bench --repeat`). Every candidate
//! is verified **bitwise** against the untuned session before it is
//! measured; a mismatch rejects the candidate outright.
//!
//! The incumbent starts at the `Aggressive`-equivalent default
//! configuration, whose measurement is the baseline. A candidate only
//! replaces the incumbent when its warm median is strictly faster, so the
//! persisted winner is never slower than `Aggressive`. Winners land in
//! the tuning database (`bench/tuned.json` by default) keyed by
//! `(content_hash, target, nthreads)`; `--opt=tuned` and
//! [`sdfg_exec::SessionBuilder::tuning_db`] pick them up at compile
//! time.
//!
//! Each measured trial increments `sdfg_autotune_trials_total{outcome}`
//! and, when the run ledger is enabled, appends an `autotune_trial`
//! record, so a tuning session is fully reconstructible from the
//! observability artifacts.

use crate::bench_json::{median_ms, warm_batch_mins};
use sdfg_exec::{OptLevel, SessionBuilder, TuneEntry, TuneKey, TunedConfig, TuningDb};
use sdfg_profile::{ledger, metrics};
use sdfg_transforms::autotune::default_stages;
use sdfg_workloads::polybench;
use sdfg_workloads::workload::Workload;
use std::collections::{HashMap, HashSet};

/// Configuration for one `--autotune` invocation.
pub struct TuneConfig {
    /// Kernel names to tune (Polybench registry names).
    pub kernels: Vec<String>,
    /// Problem scale passed to each kernel builder.
    pub scale: usize,
    /// Timed iterations per warm batch (best is kept).
    pub reps: usize,
    /// Untimed warm iterations before each measurement.
    pub warmup: usize,
    /// Warm batches per measurement; the objective is the median of
    /// per-batch minima.
    pub repeat: usize,
    /// Maximum measured candidate trials per kernel (`--budget`). The
    /// baseline measurement is not counted.
    pub budget: usize,
    /// Tuning database path (`--db`).
    pub db: String,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            kernels: vec!["atax".into(), "trisolv".into()],
            scale: 24,
            reps: 9,
            warmup: 3,
            repeat: 3,
            budget: 16,
            db: "bench/tuned.json".into(),
        }
    }
}

/// What tuning one kernel produced.
pub struct TuneOutcome {
    /// Kernel name.
    pub kernel: String,
    /// Warm-median milliseconds of the `Aggressive` baseline.
    pub baseline_warm_ms: f64,
    /// Warm-median milliseconds of the winner (≤ baseline by
    /// construction).
    pub tuned_warm_ms: f64,
    /// The winning configuration.
    pub best: TunedConfig,
    /// Measured candidate trials (excludes the baseline).
    pub trials: u32,
    /// Candidates rejected by the bitwise verification.
    pub rejected: u32,
}

impl TuneOutcome {
    /// Baseline-over-tuned speedup (≥ 1 by construction).
    pub fn speedup(&self) -> f64 {
        if self.tuned_warm_ms <= 0.0 {
            0.0
        } else {
            self.baseline_warm_ms / self.tuned_warm_ms
        }
    }
}

/// Runs the workload once on a fresh session (configured by `setup`) and
/// returns the checked output containers.
fn outputs_once(
    w: &Workload,
    setup: impl FnOnce(SessionBuilder) -> SessionBuilder,
) -> Result<HashMap<String, Vec<f64>>, String> {
    let session = setup(w.session()).build().map_err(|e| e.to_string())?;
    let out = session.run(w.bindings()).map_err(|e| e.to_string())?;
    w.check
        .iter()
        .map(|c| Ok((c.clone(), out.array(c).map_err(|e| e.to_string())?.to_vec())))
        .collect()
}

/// Bitwise comparison of checked outputs: every element must match in its
/// bit pattern (`f64::to_bits`), so even rounding-level divergence from a
/// reordered reduction is caught.
fn bits_equal(a: &HashMap<String, Vec<f64>>, b: &HashMap<String, Vec<f64>>) -> bool {
    a.len() == b.len()
        && a.iter().all(|(k, xs)| {
            b.get(k).is_some_and(|ys| {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.to_bits() == y.to_bits())
            })
        })
}

/// Warm-median measurement of a fresh session configured by `setup` —
/// the bench protocol (`--repeat` batches of best-of-`reps`) reused as a
/// library.
fn measure(
    w: &Workload,
    cfg: &TuneConfig,
    setup: impl FnOnce(SessionBuilder) -> SessionBuilder,
) -> f64 {
    let session = setup(w.session()).build().expect("session");
    median_ms(warm_batch_mins(
        &session,
        w.bindings(),
        cfg.warmup,
        cfg.reps,
        cfg.repeat,
    ))
}

/// Bumps the outcome counter and appends the ledger trial record.
fn record_trial(mut rec: ledger::TrialRecord) {
    let m = metrics::core();
    match rec.outcome.as_str() {
        "improved" => m.autotune_improved.inc(),
        "no_gain" => m.autotune_no_gain.inc(),
        _ => m.autotune_rejected.inc(),
    }
    ledger::append_trial(&mut rec);
}

/// Tunes one kernel: measures the `Aggressive` baseline, walks the knob
/// stages under the trial budget, persists the winner into the database
/// at [`TuneConfig::db`], and round-trips it (reload → `--opt=tuned`
/// executor → bitwise compare against the untuned executor).
pub fn tune_kernel(name: &str, cfg: &TuneConfig) -> Result<TuneOutcome, String> {
    let kernel = polybench::all()
        .into_iter()
        .find(|k| k.name == name)
        .ok_or_else(|| format!("unknown kernel `{name}`"))?;
    let w = (kernel.build)(cfg.scale);
    let chash = sdfg_core::serialize::content_hash(&w.sdfg);
    let nthreads = w
        .session()
        .build()
        .map_err(|e| e.to_string())?
        .nthreads()
        .max(1);

    // The correctness oracle: the untuned (OptLevel::None) session.
    let reference = outputs_once(&w, |b| b)?;

    // The incumbent: the Aggressive-equivalent default configuration,
    // measured through the real Aggressive pipeline path.
    let mut best = TunedConfig::default();
    let baseline_ms = measure(&w, cfg, |b| b.opt_level(OptLevel::Aggressive));
    let mut best_ms = baseline_ms;
    println!(
        "autotune {name}: scale {} | {} reps x {} batches | budget {} | baseline {:.3} ms",
        cfg.scale, cfg.reps, cfg.repeat, cfg.budget, baseline_ms
    );

    let trial_rec = |stage: &str, label: &str, c: &TunedConfig, warm: f64, best: f64, out: &str| {
        ledger::TrialRecord {
            seq: 0,
            kernel: name.to_string(),
            content_hash: format!("{chash:016x}"),
            target: "cpu".into(),
            nthreads,
            stage: stage.into(),
            candidate: label.into(),
            config_json: c.to_json(),
            warm_ms: warm,
            best_ms: best,
            outcome: out.into(),
        }
    };
    let mut tried: HashSet<String> = HashSet::new();
    tried.insert(best.to_json());
    let mut trials = 0u32;
    let mut rejected = 0u32;
    'search: for (stage, knobs) in default_stages() {
        for knob in knobs {
            if trials as usize >= cfg.budget {
                println!("  budget exhausted ({trials} trials)");
                break 'search;
            }
            let mut candidate = best.clone();
            knob.apply(&mut candidate);
            if !tried.insert(candidate.to_json()) {
                continue; // revisits the incumbent or a measured point
            }
            trials += 1;
            let label = knob.label();
            // Verify before measuring: a candidate that changes results
            // is discarded no matter how fast it is.
            let got = outputs_once(&w, |b| b.tuned_config(candidate.clone()))?;
            if !bits_equal(&got, &reference) {
                rejected += 1;
                record_trial(trial_rec(
                    stage, &label, &candidate, 0.0, best_ms, "rejected",
                ));
                println!("  [{stage}] {label}: REJECTED (outputs differ from untuned)");
                continue;
            }
            let warm = measure(&w, cfg, |b| b.tuned_config(candidate.clone()));
            let outcome = if warm < best_ms {
                "improved"
            } else {
                "no_gain"
            };
            record_trial(trial_rec(stage, &label, &candidate, warm, best_ms, outcome));
            println!("  [{stage}] {label}: {warm:.3} ms  {outcome}");
            if warm < best_ms {
                best_ms = warm;
                best = candidate;
            }
        }
    }

    // Persist the winner. The incumbent is never slower than the
    // baseline, so the database invariant tuned_warm_ms <= baseline
    // holds by construction (equality = the Aggressive default won).
    let db_path = std::path::Path::new(&cfg.db);
    let mut db = TuningDb::load(db_path)?.unwrap_or_default();
    db.insert(TuneEntry {
        key: TuneKey {
            content_hash: chash,
            target: "cpu".into(),
            nthreads: nthreads as u32,
        },
        kernel: name.to_string(),
        config: best.clone(),
        tuned_warm_ms: best_ms,
        baseline_warm_ms: baseline_ms,
        trials,
    });
    db.save(db_path)
        .map_err(|e| format!("cannot write tuning db `{}`: {e}", cfg.db))?;
    println!(
        "  winner: {best} | {best_ms:.3} ms ({:.2}x vs aggressive) -> {}",
        baseline_ms / best_ms.max(1e-12),
        cfg.db
    );

    // Round-trip: a fresh session must find the entry in the saved
    // database and reproduce the untuned outputs bitwise.
    let tuned = w
        .session()
        .tuning_db(db_path)
        .build()
        .map_err(|e| e.to_string())?;
    let out = tuned.run(w.bindings()).map_err(|e| e.to_string())?;
    if tuned.tuned_config().as_ref() != Some(&best) {
        return Err(format!(
            "round-trip failed for `{name}`: saved entry not found by lookup"
        ));
    }
    let got: HashMap<String, Vec<f64>> = w
        .check
        .iter()
        .map(|c| Ok::<_, String>((c.clone(), out.array(c).map_err(|e| e.to_string())?.to_vec())))
        .collect::<Result<_, _>>()?;
    if !bits_equal(&got, &reference) {
        return Err(format!(
            "round-trip failed for `{name}`: tuned outputs differ from untuned"
        ));
    }
    println!("  round-trip: PASS (db lookup + bitwise-equal outputs)");

    Ok(TuneOutcome {
        kernel: name.to_string(),
        baseline_warm_ms: baseline_ms,
        tuned_warm_ms: best_ms,
        best,
        trials,
        rejected,
    })
}

/// Runs `--autotune` end to end; returns `false` on any failure.
pub fn run_autotune(cfg: &TuneConfig) -> bool {
    let mut ok = true;
    let mut outcomes = Vec::new();
    for name in &cfg.kernels {
        match tune_kernel(name, cfg) {
            Ok(o) => outcomes.push(o),
            Err(e) => {
                eprintln!("autotune {name}: FAIL — {e}");
                ok = false;
            }
        }
        println!();
    }
    if !outcomes.is_empty() {
        println!(
            "{:<16} {:>12} {:>12} {:>9} {:>7} {:>9}",
            "kernel", "baseline ms", "tuned ms", "speedup", "trials", "rejected"
        );
        for o in &outcomes {
            println!(
                "{:<16} {:>12.3} {:>12.3} {:>8.2}x {:>7} {:>9}",
                o.kernel,
                o.baseline_warm_ms,
                o.tuned_warm_ms,
                o.speedup(),
                o.trials,
                o.rejected
            );
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_equal_is_exact() {
        let a: HashMap<String, Vec<f64>> = [("y".to_string(), vec![1.0, 2.0])].into();
        let mut b = a.clone();
        assert!(bits_equal(&a, &b));
        // One ULP apart fails.
        b.get_mut("y").unwrap()[1] = f64::from_bits(2.0f64.to_bits() + 1);
        assert!(!bits_equal(&a, &b));
        // Different keys or lengths fail.
        assert!(!bits_equal(&a, &HashMap::new()));
        // Negative zero differs from zero bitwise, NaN equals itself.
        let z: HashMap<String, Vec<f64>> = [("y".to_string(), vec![0.0])].into();
        let nz: HashMap<String, Vec<f64>> = [("y".to_string(), vec![-0.0])].into();
        assert!(!bits_equal(&z, &nz));
        let n: HashMap<String, Vec<f64>> = [("y".to_string(), vec![f64::NAN])].into();
        assert!(bits_equal(&n, &n.clone()));
    }

    #[test]
    fn stage_walk_respects_budget_without_measuring() {
        // Pure bookkeeping check: the number of candidates in the default
        // stages bounds the trial count the driver can spend.
        let total: usize = default_stages().iter().map(|(_, ks)| ks.len()).sum();
        assert!(total >= 8, "search space too small: {total}");
    }
}
