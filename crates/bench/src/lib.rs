//! # sdfg-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5–§6)
//! against this repository's substitutes (see DESIGN.md):
//!
//! | Experiment | Paper | Harness subcommand |
//! |---|---|---|
//! | Polybench CPU | Fig. 13a | `harness fig13a` |
//! | Polybench GPU | Fig. 13b | `harness fig13b` |
//! | Polybench FPGA | Fig. 13c | `harness fig13c` |
//! | Fundamental kernels CPU | Fig. 14a | `harness fig14a` |
//! | Fundamental kernels GPU | Fig. 14b | `harness fig14b` |
//! | Fundamental kernels FPGA | Fig. 14c | `harness fig14c` |
//! | GEMM transformation chain | Fig. 15 | `harness fig15` |
//! | BFS on five graphs | Fig. 17 | `harness fig17` |
//! | SSE runtimes | Table 2 | `harness tab2` |
//! | SBSMM vs padded batched GEMM | Table 3 | `harness tab3` |
//! | Graph dataset properties | Table 5 | `harness tab5` |
//!
//! `harness all` runs everything; results are recorded in EXPERIMENTS.md.
//! The Criterion benches under `benches/` cover the same workloads with
//! statistical rigor for regression tracking.
//!
//! `harness --bench` runs the warm/cold plan-cache protocol instead (see
//! [`bench_json`]): JSON results per kernel plus a perf-regression gate
//! against `bench/baseline.json` — the mode CI's `bench-smoke` job runs.
//!
//! Any mode accepts the observability flags (see [`obs`]):
//! `--metrics-out` (Prometheus exposition), `--ledger` (JSONL run
//! records), `--trace-out` (flight-recorder Chrome trace); `harness
//! obs-check` validates the artifacts — CI's smoke job.
//!
//! `harness <kernels> --autotune` runs the measurement-driven autotuner
//! (see [`autotune`]): a knob search scored by the warm-median protocol,
//! persisting winners into `bench/tuned.json` for `--opt=tuned` runs.
//! `harness baseline-check` validates the committed baseline and
//! `BENCH_*.json` artifacts against the current schema.

pub mod autotune;
pub mod bench_json;
pub mod emit;
pub mod experiments;
pub mod obs;
pub mod targets;

pub use experiments::*;
pub use targets::{targeted, Target};
